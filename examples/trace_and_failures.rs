//! Replay a recorded workload trace through an unreliable grid.
//!
//! Demonstrates two §5.4/§3 capabilities together: driving the simulation
//! with an SWF-format "pattern of job submissions" instead of a synthetic
//! generator, and transient machine failures from which running jobs
//! restart at their last periodic checkpoint.
//!
//! Run with: `cargo run -p faucets-examples --bin trace_and_failures`

use faucets_core::market::SelectionPolicy;
use faucets_grid::prelude::*;
use faucets_sim::time::SimDuration;

/// A small SWF log, inline: job# submit wait runtime procs … (field 8 is
/// the requested-processors fallback, field 12 the user).
const TRACE: &str = "\
; demo trace: six jobs over two hours
1 0     5 1800  32 -1 -1  32 3600 -1 1 1 1 1 1 1 -1 -1
2 300  10 3600  64 -1 -1  64 7200 -1 1 2 1 1 1 1 -1 -1
3 900   0  900  16 -1 -1  16 1800 -1 1 3 1 1 1 1 -1 -1
4 1800  0 2700 128 -1 -1 128 5400 -1 1 1 1 1 1 1 -1 -1
5 3600  0 1200  32 -1 -1  32 2400 -1 1 2 1 1 1 1 -1 -1
6 5400  0  600   8 -1 -1   8 1200 -1 1 3 1 1 1 1 -1 -1
";

fn main() {
    let records = parse_swf(TRACE).expect("valid SWF");
    println!("Loaded {} trace records:", records.len());
    for r in &records {
        println!(
            "  job {:>2}: submit t={:>5}s, {:>4} s on {:>3} PEs (user {})",
            r.job, r.submit_secs, r.runtime_secs, r.procs, r.user
        );
    }

    let cfg = TraceConfig::default();
    let horizon = faucets_sim::time::SimTime::from_hours(6);
    let workload = workload_from_swf(TRACE, &cfg, horizon).expect("lifted");

    let sim = ScenarioBuilder::new(5)
        .cluster(128, "equipartition", "util-interp")
        .cluster(128, "equipartition", "baseline")
        .users(3)
        .mode(MarketMode::Bidding(SelectionPolicy::LeastCost))
        .mix(JobMix {
            apps: vec!["trace-app".into()],
            ..JobMix::default()
        })
        .workload(workload)
        .horizon(SimDuration::from_hours(6))
        // A flaky grid: each machine fails about every 20 minutes; jobs
        // checkpoint every 5 minutes.
        .failures(SimDuration::from_mins(20), SimDuration::from_mins(5))
        .build();

    println!("\nReplaying through a 2x128-PE grid with frequent machine failures...\n");
    let world = run_scenario(sim);
    let s = &world.stats;

    let mut t = Table::new("Trace replay under failures", &["metric", "value"]);
    t.row(vec!["jobs replayed".into(), s.submitted.to_string()]);
    t.row(vec!["jobs completed".into(), s.completed.to_string()]);
    t.row(vec!["machine failures".into(), s.failures.to_string()]);
    t.row(vec![
        "jobs recovered from checkpoints".into(),
        s.jobs_recovered.to_string(),
    ]);
    t.row(vec!["mean response (s)".into(), f2(s.response.mean())]);
    t.row(vec!["user fairness (Jain)".into(), f3(s.user_fairness())]);
    println!("{t}");
    println!(
        "Every trace job completed despite the failures — running jobs lost\n\
         at most one checkpoint interval of progress and restarted\n\
         automatically (§3's recovery promise)."
    );
}
