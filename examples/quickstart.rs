//! Quickstart: submit jobs to a small Faucets grid and watch the market
//! place them.
//!
//! Builds a two-cluster grid (one adaptive and market-aware, one a
//! traditional queuing system), generates a working day of Poisson job
//! submissions, runs the §5.4 discrete-event simulation of the full §2
//! protocol, and prints what happened.
//!
//! Run with: `cargo run -p faucets-examples --bin quickstart`

use faucets_core::market::SelectionPolicy;
use faucets_grid::prelude::*;
use faucets_sim::time::SimDuration;

fn main() {
    // A grid of two Compute Servers. Each gets a scheduling policy for its
    // Cluster Manager and a bid-generation strategy for its Faucets Daemon.
    let sim = ScenarioBuilder::new(42)
        .cluster(512, "equipartition", "util-interp") // adaptive + market-aware
        .cluster(256, "fcfs", "baseline") // a traditional queuing system
        .users(8)
        .mode(MarketMode::Bidding(SelectionPolicy::LeastCost))
        .arrivals(ArrivalProcess::Poisson {
            mean_interarrival: SimDuration::from_secs(180),
        })
        .horizon(SimDuration::from_hours(8))
        .build();

    println!("Running 8 simulated hours of the Faucets grid...\n");
    let world = run_scenario(sim);

    let s = &world.stats;
    let mut t = Table::new("Quickstart: grid summary", &["metric", "value"]);
    t.row(vec!["jobs submitted".into(), s.submitted.to_string()]);
    t.row(vec!["jobs completed".into(), s.completed.to_string()]);
    t.row(vec!["jobs rejected".into(), s.rejected.to_string()]);
    t.row(vec![
        "deadline misses".into(),
        s.deadline_misses.to_string(),
    ]);
    t.row(vec!["mean response (s)".into(), f2(s.response.mean())]);
    t.row(vec!["mean bounded slowdown".into(), f2(s.slowdown.mean())]);
    t.row(vec!["protocol messages".into(), s.messages.to_string()]);
    t.row(vec![
        "total paid by clients".into(),
        s.paid_total.to_string(),
    ]);
    println!("{t}");

    let mut t = Table::new(
        "Per-cluster results",
        &["cluster", "policy", "strategy", "completed", "revenue"],
    );
    for (id, node) in &world.nodes {
        t.row(vec![
            id.to_string(),
            node.cluster.policy_name().into(),
            node.daemon.strategy_name().into(),
            node.cluster.metrics.completed.to_string(),
            node.cluster.metrics.revenue_price.to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "Price index after the run: {:?}",
        world.server.history.price_index()
    );
}
