//! The paper's §1 internal-fragmentation scenario, played out on one
//! machine with a rigid scheduler and again with the adaptive equipartition
//! scheduler.
//!
//! *"Consider a single parallel machine with 1000 processors. A user wants
//! to run an urgent and important job A which needs 600 processors.
//! However, the machine happens to be running a relatively unimportant but
//! long job B on 500 processors. So the important job languishes while 500
//! processors remain idle."*
//!
//! Run with: `cargo run -p faucets-examples --bin adaptive_cluster`

use faucets_core::ids::{ClusterId, ContractId, JobId, UserId};
use faucets_core::job::JobSpec;
use faucets_core::money::Money;
use faucets_core::qos::{PayoffFn, QosBuilder, SpeedupModel};
use faucets_sched::adaptive::ResizeCostModel;
use faucets_sched::cluster::Cluster;
use faucets_sched::equipartition::Equipartition;
use faucets_sched::fcfs::Fcfs;
use faucets_sched::machine::MachineSpec;
use faucets_sched::policy::SchedPolicy;
use faucets_sim::time::SimTime;

/// Job B: long, adaptive (min 400, running on 500), unimportant.
fn job_b() -> JobSpec {
    let qos = QosBuilder::new("background-cfd", 400, 500, 4_000_000.0)
        .speedup(SpeedupModel::Perfect)
        .adaptive()
        .payoff(PayoffFn::flat(Money::from_units(50)))
        .build()
        .unwrap();
    JobSpec::new(JobId(1), UserId(1), qos, SimTime::ZERO).unwrap()
}

/// Job A: urgent, important, needs exactly 600 processors.
fn job_a(at: SimTime) -> JobSpec {
    let qos = QosBuilder::new("urgent-namd", 600, 600, 600_000.0)
        .speedup(SpeedupModel::Perfect)
        .payoff(PayoffFn::hard_only(
            at + faucets_sim::time::SimDuration::from_hours(1),
            Money::from_units(5_000),
            Money::from_units(1_000),
        ))
        .build()
        .unwrap();
    JobSpec::new(JobId(2), UserId(2), qos, at).unwrap()
}

fn play(policy_name: &str, policy: Box<dyn SchedPolicy>) {
    println!("=== {policy_name} scheduler on the 1000-processor machine ===");
    let mut cluster = Cluster::new(
        MachineSpec::commodity(ClusterId(1), "bigiron", 1000),
        policy,
        ResizeCostModel::default(),
    );

    // t=0: job B starts on its 500 processors.
    cluster.submit_job(job_b(), ContractId(1), Money::from_units(50), SimTime::ZERO);
    println!(
        "t=0      job B running on {:?} PEs, {} free",
        cluster.pes_of(JobId(1)),
        cluster.free_pes()
    );

    // t=60s: urgent job A arrives needing 600.
    let arrival = SimTime::from_secs(60);
    cluster.submit_job(
        job_a(arrival),
        ContractId(2),
        Money::from_units(5_000),
        arrival,
    );
    println!(
        "t=60s    job A (600 PEs, urgent) submitted: A on {:?}, B on {:?}, {} free, queue {}",
        cluster.pes_of(JobId(2)),
        cluster.pes_of(JobId(1)),
        cluster.free_pes(),
        cluster.queue_len(),
    );

    let (completions, _) = cluster.run_to_idle(arrival);
    for c in &completions {
        println!(
            "         {} finished at {} ({}, payoff {})",
            c.outcome.job,
            c.outcome.completed_at,
            if c.outcome.met_deadline {
                "met deadline"
            } else {
                "MISSED deadline"
            },
            c.payoff,
        );
    }
    let util = cluster.metrics.utilization(
        completions
            .iter()
            .map(|c| c.outcome.completed_at)
            .max()
            .unwrap(),
    );
    println!(
        "         machine utilization over the run: {:.1}%\n",
        util * 100.0
    );
}

fn main() {
    println!("Reproducing the paper's internal-fragmentation scenario (§1).\n");
    play("FCFS (rigid)", Box::new(Fcfs));
    play("Adaptive equipartition", Box::new(Equipartition));
    println!(
        "With the rigid scheduler, job A waits for B while 500 processors idle.\n\
         With adaptive jobs, B shrinks to 400 and A starts immediately — the\n\
         paper's resolution of the scenario."
    );
}
