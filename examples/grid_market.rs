//! A market tour: competing bid strategies, then the bartering economy.
//!
//! Part 1 pits the paper's two implemented bid strategies against each
//! other on identical machines (§5.2): the baseline "always 1.0" and the
//! utilization-interpolated `k(1-α)..k(1+β)` strategy with the paper's
//! parameters k=1, α=0.5, β=2.0.
//!
//! Part 2 runs the §5.5.3 bartering mode: users prefer their Home Cluster
//! and overflow to collaborating clusters while their organization's
//! credits last.
//!
//! Run with: `cargo run -p faucets-examples --bin grid_market`

use faucets_core::market::SelectionPolicy;
use faucets_core::money::ServiceUnits;
use faucets_grid::prelude::*;
use faucets_sim::time::SimDuration;

fn market_part() {
    let sim = ScenarioBuilder::new(7)
        .cluster(256, "equipartition", "baseline")
        .cluster(256, "equipartition", "util-interp")
        .cluster(256, "equipartition", "baseline")
        .cluster(256, "equipartition", "util-interp")
        .users(12)
        .mode(MarketMode::Bidding(SelectionPolicy::LeastCost))
        .arrivals(ArrivalProcess::Poisson {
            mean_interarrival: SimDuration::from_secs(70),
        })
        .horizon(SimDuration::from_hours(24))
        .build();
    let world = run_scenario(sim);

    let mut t = Table::new(
        "Bid strategies competing for one day of jobs (§5.2)",
        &["cluster", "strategy", "jobs won", "revenue", "utilization"],
    );
    for (id, node) in &world.nodes {
        let mut m = node.cluster.metrics.clone();
        t.row(vec![
            id.to_string(),
            node.daemon.strategy_name().into(),
            m.completed.to_string(),
            m.revenue_price.to_string(),
            pct(m.utilization(faucets_sim::time::SimTime::from_hours(24))),
        ]);
    }
    println!("{t}");
    println!(
        "The interpolated strategy discounts an idle machine to k(1-α)=0.5 and\n\
         premiums a busy one to k(1+β)=3.0; under least-cost selection it wins\n\
         work when idle and cashes premiums when loaded.\n"
    );
}

fn barter_part() {
    let sim = ScenarioBuilder::new(11)
        .cluster(128, "equipartition", "baseline")
        .cluster(128, "equipartition", "baseline")
        .cluster(128, "equipartition", "baseline")
        .users(9)
        .mode(MarketMode::Barter)
        .credits(ServiceUnits::from_units(50_000))
        .arrivals(ArrivalProcess::Poisson {
            mean_interarrival: SimDuration::from_secs(120),
        })
        .horizon(SimDuration::from_hours(12))
        .build();
    let world = run_scenario(sim);
    let bank = world.bank.as_ref().expect("barter mode has a bank");

    let mut t = Table::new(
        "Bartering economy after 12 hours (§5.5.3)",
        &["org", "credits left", "cluster jobs run"],
    );
    for (id, node) in &world.nodes {
        let org = bank.org_of(*id).unwrap();
        t.row(vec![
            org.to_string(),
            bank.credits(org).to_string(),
            node.cluster.metrics.completed.to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "Orgs whose users overflowed to collaborators paid credits; hosts\n\
         earned them. Total credits are conserved: {} µSU across the pool.\n\
         Submissions blocked by exhausted credits: {}.",
        bank.total_micros(),
        world.stats.blocked_credits,
    );
}

fn main() {
    market_part();
    barter_part();
}
