//! The complete Figure-1 architecture, live on localhost.
//!
//! Spins up the Central Faucets Server, two Faucets Daemons with their
//! Cluster Managers, and the AppSpector server as real TCP services, then
//! walks a client through the whole §2 story: register → login → match →
//! solicit bids → award → stage input files → monitor via AppSpector →
//! download outputs. The services run on a 600× accelerated clock so the
//! "supercomputer minutes" pass in wall seconds.
//!
//! Run with: `cargo run -p faucets-examples --bin live_services`

use faucets_core::daemon::FaucetsDaemon;
use faucets_core::ids::ClusterId;
use faucets_core::market::{Baseline, UtilizationInterpolated};
use faucets_core::money::Money;
use faucets_core::qos::{PayoffFn, QosBuilder};
use faucets_net::prelude::*;
use faucets_sched::adaptive::ResizeCostModel;
use faucets_sched::cluster::Cluster;
use faucets_sched::equipartition::Equipartition;
use faucets_sched::machine::MachineSpec;
use faucets_sim::time::SimTime;
use std::time::Duration;

fn spawn_cluster(
    id: u64,
    name: &str,
    pes: u32,
    strategy_is_baseline: bool,
    fs: std::net::SocketAddr,
    aspect: std::net::SocketAddr,
    clock: Clock,
) -> FdHandle {
    let machine = MachineSpec::commodity(ClusterId(id), name, pes);
    let strategy: Box<dyn faucets_core::market::BidStrategy> = if strategy_is_baseline {
        Box::new(Baseline)
    } else {
        Box::new(UtilizationInterpolated::default())
    };
    let daemon = FaucetsDaemon::new(
        machine.server_info("127.0.0.1", 0),
        ["namd".to_string(), "cfd".to_string()],
        strategy,
        Money::from_units_f64(0.01),
    );
    let cluster = Cluster::new(machine, Box::new(Equipartition), ResizeCostModel::default());
    spawn_fd("127.0.0.1:0", daemon, cluster, fs, aspect, clock).expect("spawn FD")
}

fn main() {
    // 1 wall second = 10 simulated minutes.
    let clock = Clock::new(600.0);

    println!("Starting the Faucets services on localhost...");
    let fs = spawn_fs("127.0.0.1:0", clock.clone(), 2026).expect("spawn FS");
    let aspect = spawn_appspector("127.0.0.1:0", fs.service.addr, 64).expect("spawn AppSpector");
    let fd1 = spawn_cluster(
        1,
        "turing",
        128,
        true,
        fs.service.addr,
        aspect.service.addr,
        clock.clone(),
    );
    let fd2 = spawn_cluster(
        2,
        "lemieux",
        256,
        false,
        fs.service.addr,
        aspect.service.addr,
        clock.clone(),
    );
    println!("  FS         at {}", fs.service.addr);
    println!("  AppSpector at {}", aspect.service.addr);
    println!("  FD turing  at {} (baseline bids)", fd1.service.addr);
    println!(
        "  FD lemieux at {} (util-interpolated bids)",
        fd2.service.addr
    );

    println!("\nRegistering user 'alice' and logging in...");
    let mut client = FaucetsClient::register(
        fs.service.addr,
        aspect.service.addr,
        clock.clone(),
        "alice",
        "molecular-dynamics",
    )
    .expect("register");

    // A 30-minute NAMD run on 16–64 processors, due within 2 sim-hours.
    let now = clock.now();
    let qos = QosBuilder::new("namd", 16, 64, 16.0 * 1800.0)
        .efficiency(0.95, 0.8)
        .adaptive()
        .payoff(PayoffFn::hard_only(
            now.saturating_add(faucets_sim::time::SimDuration::from_hours(2)),
            Money::from_units(200),
            Money::from_units(40),
        ))
        .build()
        .expect("valid QoS");

    println!("Submitting a NAMD job (16-64 PEs, ~30 simulated minutes)...");
    let sub = client
        .submit(qos, &[("input.psf".into(), b"molecule topology".to_vec())])
        .expect("submission succeeds");
    println!(
        "  {} awarded to {} for {} ({} bids received, promised by {})",
        sub.job, sub.cluster, sub.price, sub.bids_received, sub.promised_completion
    );

    println!("Monitoring via AppSpector until completion...");
    let mut last_len = 0;
    let snap = loop {
        let snap = client.watch(sub.job).expect("watch");
        if snap.samples.len() > last_len {
            let s = snap.samples.last().unwrap();
            println!(
                "  [{}] {} PEs, utilization {:.0}%, throughput {:.1}",
                s.at,
                s.pes,
                s.utilization * 100.0,
                s.throughput
            );
            last_len = snap.samples.len();
        }
        if snap.completed {
            break snap;
        }
        std::thread::sleep(Duration::from_millis(50));
        if clock.now() > SimTime::from_hours(6) {
            panic!("job did not finish within 6 simulated hours");
        }
    };

    println!(
        "Job completed. Output files: {:?}",
        snap.output_files
            .iter()
            .map(|f| &f.name)
            .collect::<Vec<_>>()
    );
    let out = client.download(sub.job, "output.dat").expect("download");
    println!("Downloaded output.dat: {}", String::from_utf8_lossy(&out));

    println!("\nShutting down services.");
    fd1.shutdown();
    fd2.shutdown();
}
