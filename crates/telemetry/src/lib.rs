//! Grid-wide telemetry for the Faucets services: metrics, traces, and a
//! clock abstraction that spans both deployment modes.
//!
//! The paper's AppSpector is the monitoring plane of the Faucets grid; this
//! crate is the substrate it reads from. It provides three pieces, each
//! usable on its own:
//!
//! * [`metrics`] — a sharded, lock-cheap registry of named, labelled
//!   collectors: monotone [`Counter`]s, last-value [`Gauge`]s, and
//!   log-binned [`Histogram`]s (the same powers-of-two binning idiom as
//!   `faucets_sim::stats::LogHistogram`, here over atomics so the hot path
//!   is a single relaxed `fetch_add`). A process-global default registry
//!   ([`global`]) serves code that has no natural place to thread a handle
//!   through; services expose their registry over the wire via the
//!   `Metrics` endpoint in `faucets-net`. Snapshots render as both
//!   Prometheus-style text and JSON.
//!
//! * [`trace`] — cheap distributed tracing. A [`TraceContext`] (trace id,
//!   span id, parent span) rides in every `proto` frame; each service opens
//!   a server span per request, parented under the caller's span, and the
//!   thread-local current context means a handler's *outbound* calls (FD →
//!   FS token verification, FD → AppSpector completion push) propagate the
//!   same trace automatically. One job's whole path — client → FS match →
//!   RFB fan-out → FD award → CM schedule → AppSpector — reassembles from
//!   the in-process span log by [`TraceId`], including retried and
//!   re-solicited legs.
//!
//! * [`clock`] — **the wall-clock vs sim-time abstraction.** Faucets runs
//!   the same scheduling logic in two worlds: live TCP services, where
//!   latencies are real wall-time durations, and the discrete-event
//!   simulator, where "now" is a [`u64`] of simulated microseconds that
//!   advances only when the event loop dispatches. Instrumentation must not
//!   care which world it is in, so [`TelemetryClock`] is a tiny enum over
//!   both: `Wall` reads a monotonic process epoch (`std::time::Instant`),
//!   while `Sim` reads a shared atomic cell of simulated microseconds that
//!   the event loop stores into before dispatching each event. Both answer
//!   [`TelemetryClock::now_secs`] in (wall or simulated) seconds, and a
//!   [`Stopwatch`] started from either clock observes elapsed time into the
//!   same histograms — so `sim` runs record latency distributions in
//!   `SimTime` and TCP services record them in wall time, behind one API.
//!   Span timestamps always use the wall clock: spans describe live
//!   request handling, which has no simulated counterpart.
//!
//! Every record path first checks a process-global enable flag
//! ([`set_enabled`]); disabling it turns all collectors into near-no-ops,
//! which is how `exp_observability` (E20) measures instrumentation
//! overhead as an A/B on the same binary.

#![warn(missing_docs)]

pub mod clock;
pub mod metrics;
pub mod trace;

pub use clock::{Stopwatch, TelemetryClock};
pub use metrics::{
    enabled, global, set_enabled, Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot,
    Registry,
};
pub use trace::{Span, SpanId, SpanRecord, TraceContext, TraceId};
