//! Trace-context propagation and the in-process span log.
//!
//! A [`TraceContext`] rides in every wire frame (see `faucets_net::proto`).
//! Each thread keeps a *current* context in thread-local storage: a service
//! handler runs under the span its serve loop opened for the request, so
//! any outbound `call` the handler makes (FD → FS `VerifyToken`, FD →
//! AppSpector `CompleteJob`) stamps the same trace onto its own frames
//! without the handler touching trace plumbing at all. Closed spans append
//! to a bounded global log; [`spans_for`] reassembles one trace and
//! [`render_trace`] prints it as an indented tree.
//!
//! Span timestamps are wall-clock seconds from a process epoch — spans
//! describe live request handling (the discrete-event simulator records
//! metrics, not spans; see the crate docs on the clock abstraction).

use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::metrics::ShardedLog;

/// Identifier shared by every span on one request's path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceId(pub u64);

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Identifier of one span within a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SpanId(pub u64);

impl std::fmt::Display for SpanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// The propagated triple: which trace, which span is active, and who its
/// parent was. Serialized into every frame's envelope.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceContext {
    /// The trace this frame belongs to.
    pub trace: TraceId,
    /// The span active on the sending side.
    pub span: SpanId,
    /// The sender's parent span, if any.
    pub parent: Option<SpanId>,
}

/// SplitMix64 — the same mixer the fault plans use; id generation must be
/// cheap and collision-free within a process, nothing more.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fresh_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    // Mix the process id in so ids from separately launched services don't
    // collide when their logs are compared side by side.
    splitmix64(n ^ ((std::process::id() as u64) << 32))
}

thread_local! {
    static CURRENT: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

/// The context active on this thread, if any.
pub fn current() -> Option<TraceContext> {
    CURRENT.with(|c| c.get())
}

/// Run `f` with `ctx` installed as this thread's current context, restoring
/// whatever was active before. This is how fan-out helpers carry a caller's
/// trace onto worker threads: capture [`current`] on the calling thread,
/// then wrap each worker's body in `propagate` so every frame the worker
/// sends joins the caller's trace.
pub fn propagate<T>(ctx: Option<TraceContext>, f: impl FnOnce() -> T) -> T {
    let prev = current();
    CURRENT.with(|c| c.set(ctx));
    let out = f();
    CURRENT.with(|c| c.set(prev));
    out
}

/// Seconds since the process-wide epoch (first use of the telemetry
/// crate's wall clock).
pub fn wall_secs() -> f64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_secs_f64()
}

/// One closed span, as retained in the log.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// This span's id.
    pub span: SpanId,
    /// The parent span, if any.
    pub parent: Option<SpanId>,
    /// Which service emitted it (`"fs"`, `"fd"`, `"appspector"`,
    /// `"client"`).
    pub service: String,
    /// Operation name, usually the endpoint.
    pub name: String,
    /// Start, wall seconds since process epoch.
    pub start_secs: f64,
    /// End, wall seconds since process epoch.
    pub end_secs: f64,
    /// Whether the operation succeeded.
    pub ok: bool,
}

fn span_log() -> &'static ShardedLog<SpanRecord> {
    static LOG: OnceLock<ShardedLog<SpanRecord>> = OnceLock::new();
    LOG.get_or_init(|| ShardedLog::new(8, 65_536))
}

/// An open span. Dropping it closes it: the record is appended to the
/// global log and the thread's current context is restored to whatever was
/// active before.
#[derive(Debug)]
pub struct Span {
    ctx: TraceContext,
    prev: Option<TraceContext>,
    service: &'static str,
    name: String,
    start: f64,
    ok: bool,
}

impl Span {
    fn open(parent: Option<TraceContext>, service: &'static str, name: String) -> Span {
        let ctx = match parent {
            Some(p) => TraceContext {
                trace: p.trace,
                span: SpanId(fresh_id()),
                parent: Some(p.span),
            },
            None => TraceContext {
                trace: TraceId(fresh_id()),
                span: SpanId(fresh_id()),
                parent: None,
            },
        };
        let prev = current();
        CURRENT.with(|c| c.set(Some(ctx)));
        Span {
            ctx,
            prev,
            service,
            name,
            start: wall_secs(),
            ok: true,
        }
    }

    /// The context this span put in thread-local storage.
    pub fn ctx(&self) -> TraceContext {
        self.ctx
    }

    /// The trace this span belongs to.
    pub fn trace(&self) -> TraceId {
        self.ctx.trace
    }

    /// Mark the operation as failed; the record keeps `ok = false`.
    pub fn fail(&mut self) {
        self.ok = false;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
        span_log().push(SpanRecord {
            trace: self.ctx.trace,
            span: self.ctx.span,
            parent: self.ctx.parent,
            service: self.service.to_string(),
            name: std::mem::take(&mut self.name),
            start_secs: self.start,
            end_secs: wall_secs(),
            ok: self.ok,
        });
    }
}

/// Open a span as a child of this thread's current context (a new root if
/// there is none). The span becomes the current context until dropped.
pub fn span(service: &'static str, name: impl Into<String>) -> Span {
    Span::open(current(), service, name.into())
}

/// Open a server-side span for a request that arrived carrying `remote`
/// (the caller's context, from the frame envelope). With `None` the span
/// starts a fresh trace — an unattributed caller still gets logged.
pub fn server_span(
    remote: Option<TraceContext>,
    service: &'static str,
    name: impl Into<String>,
) -> Span {
    Span::open(remote, service, name.into())
}

/// Every retained span of one trace, sorted by start time.
pub fn spans_for(trace: TraceId) -> Vec<SpanRecord> {
    let mut out: Vec<SpanRecord> = span_log()
        .collect()
        .into_iter()
        .filter(|r| r.trace == trace)
        .collect();
    out.sort_by(|a, b| a.start_secs.total_cmp(&b.start_secs));
    out
}

/// Number of spans currently retained across all traces.
pub fn span_count() -> usize {
    span_log().collect().len()
}

/// Discard every retained span (tests and experiment phases).
pub fn clear() {
    span_log().clear();
}

/// Render one trace as an indented tree: children under parents, siblings
/// by start time, each line showing service, name, duration, and outcome.
pub fn render_trace(trace: TraceId) -> String {
    let records = spans_for(trace);
    if records.is_empty() {
        return format!("trace {trace}: no spans retained\n");
    }
    let ids: std::collections::HashSet<u64> = records.iter().map(|r| r.span.0).collect();
    let mut children: HashMap<Option<u64>, Vec<&SpanRecord>> = HashMap::new();
    for r in &records {
        // A span whose parent never closed locally (e.g. the parent lives in
        // another process's log) renders as a root.
        let key = match r.parent {
            Some(p) if ids.contains(&p.0) => Some(p.0),
            _ => None,
        };
        children.entry(key).or_default().push(r);
    }
    fn walk(
        out: &mut String,
        children: &HashMap<Option<u64>, Vec<&SpanRecord>>,
        key: Option<u64>,
        depth: usize,
    ) {
        if let Some(kids) = children.get(&key) {
            for r in kids {
                let ms = (r.end_secs - r.start_secs) * 1e3;
                let mark = if r.ok { "" } else { "  [FAILED]" };
                out.push_str(&format!(
                    "{:indent$}{} {}  {:.3} ms{}\n",
                    "",
                    r.service,
                    r.name,
                    ms,
                    mark,
                    indent = depth * 2
                ));
                walk(out, children, Some(r.span.0), depth + 1);
            }
        }
    }
    let mut out = format!("trace {trace} ({} spans)\n", records.len());
    walk(&mut out, &children, None, 1);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_restore_current() {
        let trace;
        {
            let root = span("client", "submit");
            trace = root.trace();
            assert_eq!(current().unwrap().span, root.ctx().span);
            {
                let child = span("fs", "ListServers");
                assert_eq!(child.ctx().trace, trace, "child inherits the trace");
                assert_eq!(child.ctx().parent, Some(root.ctx().span));
            }
            assert_eq!(
                current().unwrap().span,
                root.ctx().span,
                "child restored parent"
            );
        }
        assert!(current().is_none(), "root restored None");
        let spans = spans_for(trace);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "submit", "root started first");
    }

    #[test]
    fn server_span_parents_under_remote_context() {
        let remote = TraceContext {
            trace: TraceId(7),
            span: SpanId(9),
            parent: None,
        };
        let s = server_span(Some(remote), "fd", "RequestBid");
        assert_eq!(s.trace(), TraceId(7));
        assert_eq!(s.ctx().parent, Some(SpanId(9)));
        drop(s);
        let spans = spans_for(TraceId(7));
        assert!(spans
            .iter()
            .any(|r| r.service == "fd" && r.name == "RequestBid"));
    }

    #[test]
    fn propagate_installs_and_restores_context() {
        let ctx = TraceContext {
            trace: TraceId(42),
            span: SpanId(43),
            parent: None,
        };
        assert!(current().is_none());
        let seen = propagate(Some(ctx), || {
            // A span opened under the propagated context joins its trace —
            // exactly what a fan-out worker thread needs.
            let child = span("client", "RequestBid");
            assert_eq!(child.trace(), TraceId(42));
            assert_eq!(child.ctx().parent, Some(SpanId(43)));
            current().unwrap().trace
        });
        assert_eq!(seen, TraceId(42));
        assert!(current().is_none(), "previous context restored");
    }

    #[test]
    fn failed_spans_keep_the_flag() {
        let t;
        {
            let mut s = span("client", "award");
            t = s.trace();
            s.fail();
        }
        assert!(spans_for(t).iter().all(|r| !r.ok));
    }

    #[test]
    fn render_shows_a_tree() {
        let t;
        {
            let root = span("client", "submit");
            t = root.trace();
            let _a = span("fs", "Match");
        }
        let text = render_trace(t);
        assert!(text.contains("client submit"));
        assert!(text.contains("fs Match"));
    }

    #[test]
    fn ids_are_unique() {
        let a = fresh_id();
        let b = fresh_id();
        assert_ne!(a, b);
    }
}
