//! Sharded, lock-cheap metric registry.
//!
//! Collectors are `Arc`-shared handles over atomics: once looked up (or
//! cached in a struct field), recording is one relaxed atomic op — no lock
//! is held on the hot path. The registry itself is a fixed array of
//! `RwLock<HashMap>` shards keyed by the full metric key (name plus sorted
//! labels), so concurrent lookups from different services rarely contend.
//!
//! Keys render as `name{label=value,label2=value2}` (labels sorted by
//! name), or bare `name` when unlabelled. [`MetricsSnapshot`] is the
//! serializable point-in-time copy that travels over the wire for the
//! `Metrics` endpoint and feeds the AppSpector dashboard.

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Number of registry shards; a power of two so the hash masks cheaply.
const SHARDS: usize = 16;

/// Histogram bin count: bin 0 holds non-positive underflow, bins `1..=64`
/// cover `[2^-32, 2^32)` in powers of two (values beyond saturate into the
/// edge bins).
const BINS: usize = 65;

/// Process-global instrumentation switch. Defaults to on; see
/// [`set_enabled`].
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turn all collectors on or off process-wide.
///
/// When off, every record path returns after a single relaxed load — the
/// basis for the E20 overhead A/B measurement.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether instrumentation is currently recording.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Lock-free compare-and-swap add for an `f64` stored as bits in an
/// [`AtomicU64`].
fn add_f64(cell: &AtomicU64, delta: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + delta).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// A monotone event counter. Cloning shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value gauge over `f64` (stored as bits). Cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: f64) {
        if enabled() {
            self.0.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Add a (possibly negative) delta.
    pub fn add(&self, delta: f64) {
        if enabled() {
            add_f64(&self.0, delta);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Shared storage behind a [`Histogram`].
#[derive(Debug)]
struct HistogramCore {
    bins: [AtomicU64; BINS],
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            bins: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
        }
    }
}

/// Which bin a sample lands in: 0 for non-positive values, else the power
/// of two of its magnitude, shifted so bin 1 is `[2^-32, 2^-31)` and bin
/// 64 absorbs everything at or above `2^31`.
fn bin_of(v: f64) -> usize {
    if !(v > 0.0) {
        return 0;
    }
    let exp = v.log2().floor() as i64;
    (exp + 33).clamp(1, 64) as usize
}

/// Lower bound of a bin's value range (geometric representative used when
/// estimating quantiles from bins).
fn bin_floor(bin: usize) -> f64 {
    if bin == 0 {
        0.0
    } else {
        (2.0f64).powi(bin as i32 - 33)
    }
}

/// A log-binned histogram over positive `f64` samples — the same
/// powers-of-two idiom as `faucets_sim::stats::LogHistogram`, but over
/// atomics so concurrent services can record without locking.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Record one sample (seconds, rounds, bytes — any positive quantity).
    #[inline]
    pub fn record(&self, v: f64) {
        if !enabled() {
            return;
        }
        self.0.bins[bin_of(v)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        add_f64(&self.0.sum_bits, v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// Point-in-time copy of the bins.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut bins = Vec::new();
        for (i, b) in self.0.bins.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                bins.push((i as u8, n));
            }
        }
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            bins,
        }
    }
}

/// Serializable point-in-time copy of a [`Histogram`]: only non-empty
/// `(bin index, count)` pairs travel.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Sparse `(bin index, count)` pairs, ascending by bin.
    pub bins: Vec<(u8, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate `q`-quantile (`0 < q <= 1`): the geometric midpoint of
    /// the bin holding the ranked sample. Bin-resolution only — good to a
    /// factor of two, which is what capacity planning needs.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(bin, n) in &self.bins {
            seen += n;
            if seen >= rank {
                let lo = bin_floor(bin as usize);
                return if bin == 0 {
                    0.0
                } else {
                    lo * std::f64::consts::SQRT_2
                };
            }
        }
        bin_floor(64) // unreachable unless bins/count disagree
    }

    /// Approximate `q`-quantile with *within-bin linear interpolation*:
    /// the ranked sample's position inside its bin interpolates between
    /// the bin's edges instead of snapping to the geometric midpoint. On
    /// log-binned data this is what makes p999 extraction usable —
    /// adjacent high quantiles (p99 vs p999) land at distinct points
    /// inside the same power-of-two bin instead of collapsing onto one
    /// midpoint. Still bin-bounded: the returned value always lies
    /// inside the bin holding the ranked sample, so the error is at most
    /// one bin width. [`HistogramSnapshot::quantile`] is left unchanged
    /// for callers that want the coarser, midpoint-stable estimate.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0);
        let mut seen = 0u64;
        for &(bin, n) in &self.bins {
            let below = seen as f64;
            seen += n;
            if seen as f64 >= rank {
                if bin == 0 {
                    return 0.0;
                }
                let lo = bin_floor(bin as usize);
                let frac = ((rank - below) / n as f64).clamp(0.0, 1.0);
                return lo + frac * lo; // bin spans [lo, 2·lo)
            }
        }
        bin_floor(64) // unreachable unless bins/count disagree
    }

    /// [`HistogramSnapshot::percentile`] over a battery of quantiles —
    /// the usual call is `&[0.5, 0.99, 0.999]`.
    pub fn percentiles(&self, qs: &[f64]) -> Vec<f64> {
        qs.iter().map(|&q| self.percentile(q)).collect()
    }
}

/// One registered collector.
#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A sharded registry of named, labelled collectors.
///
/// Lookups take a shard read lock; first registration takes the write
/// lock. Returned handles are clones of the registered `Arc`s — cache them
/// in struct fields for hot paths. Asking for an existing key as a
/// *different* kind returns a detached handle (recorded values go nowhere)
/// rather than panicking; keys are namespaced well enough that this only
/// happens in misuse.
#[derive(Debug)]
pub struct Registry {
    shards: Vec<RwLock<HashMap<String, Metric>>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

/// Render a full metric key: `name{k=v,k2=v2}` with labels sorted by name.
fn key_of(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut sorted: Vec<_> = labels.to_vec();
    sorted.sort();
    let mut key = String::with_capacity(name.len() + 16 * sorted.len());
    key.push_str(name);
    key.push('{');
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        key.push_str(k);
        key.push('=');
        key.push_str(v);
    }
    key.push('}');
    key
}

/// Does `key` have base name `name` and carry every label pair in
/// `labels`? Used to aggregate snapshot rows without parsing keys apart.
fn key_matches(key: &str, name: &str, labels: &[(&str, &str)]) -> bool {
    let (base, rest) = match key.find('{') {
        Some(i) => (&key[..i], &key[i..]),
        None => (key, ""),
    };
    if base != name {
        return false;
    }
    labels.iter().all(|(k, v)| {
        let pair = format!("{k}={v}");
        rest.contains(&format!("{{{pair},"))
            || rest.contains(&format!(",{pair},"))
            || rest.contains(&format!("{{{pair}}}"))
            || rest.contains(&format!(",{pair}}}"))
    })
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, key: &str) -> &RwLock<HashMap<String, Metric>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) & (SHARDS - 1)]
    }

    fn get_or_insert(&self, key: String, make: impl FnOnce() -> Metric) -> Metric {
        let shard = self.shard(&key);
        if let Some(m) = shard.read().get(&key) {
            return m.clone();
        }
        shard.write().entry(key).or_insert_with(make).clone()
    }

    /// Look up (registering on first use) a counter.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.get_or_insert(key_of(name, labels), || Metric::Counter(Counter::default())) {
            Metric::Counter(c) => c,
            _ => Counter::default(),
        }
    }

    /// Look up (registering on first use) a gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.get_or_insert(key_of(name, labels), || Metric::Gauge(Gauge::default())) {
            Metric::Gauge(g) => g,
            _ => Gauge::default(),
        }
    }

    /// Look up (registering on first use) a histogram.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.get_or_insert(key_of(name, labels), || {
            Metric::Histogram(Histogram::default())
        }) {
            Metric::Histogram(h) => h,
            _ => Histogram::default(),
        }
    }

    /// Point-in-time copy of every collector, rows sorted by key.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for shard in &self.shards {
            for (key, metric) in shard.read().iter() {
                match metric {
                    Metric::Counter(c) => snap.counters.push((key.clone(), c.get())),
                    Metric::Gauge(g) => snap.gauges.push((key.clone(), g.get())),
                    Metric::Histogram(h) => snap.histograms.push((key.clone(), h.snapshot())),
                }
            }
        }
        snap.counters.sort();
        snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        snap
    }
}

/// The process-global default registry.
///
/// Services default to it unless handed an explicit registry; the sim and
/// core layers, which have no natural injection point, always use it.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Serializable point-in-time copy of a whole [`Registry`]; what the
/// `Metrics` endpoint returns and the dashboard aggregates.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// `(key, value)` rows for counters, sorted by key.
    pub counters: Vec<(String, u64)>,
    /// `(key, value)` rows for gauges, sorted by key.
    pub gauges: Vec<(String, f64)>,
    /// `(key, snapshot)` rows for histograms, sorted by key.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Value of the counter with this exact key, or 0.
    pub fn counter(&self, key: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Sum of all counters with base name `name` carrying every pair in
    /// `labels` (other labels may also be present).
    pub fn counter_sum(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| key_matches(k, name, labels))
            .map(|(_, v)| *v)
            .sum()
    }

    /// Sum of all gauges with base name `name` carrying every pair in
    /// `labels` (other labels may also be present). Summing gauges is the
    /// right aggregation for additive instantaneous quantities like
    /// per-endpoint inflight counts and queue depths.
    pub fn gauge_sum(&self, name: &str, labels: &[(&str, &str)]) -> f64 {
        self.gauges
            .iter()
            .filter(|(k, _)| key_matches(k, name, labels))
            .map(|(_, v)| *v)
            .sum()
    }

    /// Maximum over all gauges with base name `name` carrying every pair
    /// in `labels`, or 0 when none match. The right aggregation for
    /// peak/high-water gauges (e.g. `fd_bid_queue_peak`).
    pub fn gauge_max(&self, name: &str, labels: &[(&str, &str)]) -> f64 {
        self.gauges
            .iter()
            .filter(|(k, _)| key_matches(k, name, labels))
            .map(|(_, v)| *v)
            .fold(0.0_f64, f64::max)
    }

    /// The histogram rows whose key matches `name` + `labels`.
    pub fn histogram_sum(&self, name: &str, labels: &[(&str, &str)]) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        let mut bins: HashMap<u8, u64> = HashMap::new();
        for (k, h) in &self.histograms {
            if key_matches(k, name, labels) {
                out.count += h.count;
                out.sum += h.sum;
                for &(b, n) in &h.bins {
                    *bins.entry(b).or_insert(0) += n;
                }
            }
        }
        out.bins = bins.into_iter().collect();
        out.bins.sort();
        out
    }

    /// Prometheus-style plain-text exposition.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("{k} {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("{k} {v}\n"));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!(
                "{k} count={} mean={:.6} p50={:.6} p95={:.6} p99={:.6}\n",
                h.count,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
            ));
        }
        out
    }

    /// JSON exposition of the whole snapshot.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }
}

/// A bounded, sharded, append-only log — shared by the span log but kept
/// here so metrics-only users can also journal events if they need to.
#[derive(Debug)]
pub(crate) struct ShardedLog<T> {
    shards: Vec<Mutex<Vec<T>>>,
    cap_per_shard: usize,
    dropped: AtomicU64,
}

impl<T: Clone> ShardedLog<T> {
    pub(crate) fn new(shards: usize, cap_per_shard: usize) -> Self {
        ShardedLog {
            shards: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
            cap_per_shard,
            dropped: AtomicU64::new(0),
        }
    }

    /// Append, dropping (and counting) once the shard is full.
    pub(crate) fn push(&self, item: T) {
        let mut h = DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        let shard = &self.shards[(h.finish() as usize) % self.shards.len()];
        let mut v = shard.lock();
        if v.len() >= self.cap_per_shard {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            v.push(item);
        }
    }

    /// Copy out every retained item.
    pub(crate) fn collect(&self) -> Vec<T> {
        let mut out = Vec::new();
        for s in &self.shards {
            out.extend(s.lock().iter().cloned());
        }
        out
    }

    /// Remove all retained items.
    pub(crate) fn clear(&self) {
        for s in &self.shards {
            s.lock().clear();
        }
        self.dropped.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_and_share() {
        let r = Registry::new();
        let a = r.counter("reqs", &[("service", "fs")]);
        let b = r.counter("reqs", &[("service", "fs")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "handles to one key share a cell");
        assert_eq!(r.snapshot().counter("reqs{service=fs}"), 3);
    }

    #[test]
    fn labels_sort_into_one_key() {
        let r = Registry::new();
        let a = r.counter("x", &[("b", "2"), ("a", "1")]);
        let b = r.counter("x", &[("a", "1"), ("b", "2")]);
        a.inc();
        assert_eq!(b.get(), 1);
        assert_eq!(r.snapshot().counter("x{a=1,b=2}"), 1);
    }

    #[test]
    fn histogram_bins_and_quantiles() {
        let h = Histogram::default();
        for _ in 0..90 {
            h.record(0.001); // ~1ms
        }
        for _ in 0..10 {
            h.record(1.5); // slow tail
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        let p50 = s.quantile(0.5);
        assert!(p50 > 0.0005 && p50 < 0.002, "p50 ~1ms, got {p50}");
        let p99 = s.quantile(0.99);
        assert!(p99 > 0.9 && p99 < 3.0, "p99 in the slow bin, got {p99}");
        assert!((s.mean() - (90.0 * 0.001 + 10.0 * 1.5) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_interpolates_within_a_bin() {
        // 1000 samples spread across one power-of-two bin [1, 2): the
        // midpoint quantile() collapses every q onto sqrt(2), while
        // percentile() must separate p50 < p99 < p999 inside the bin.
        let h = Histogram::default();
        for i in 0..1000 {
            h.record(1.0 + i as f64 / 1000.0);
        }
        let s = h.snapshot();
        let ps = s.percentiles(&[0.5, 0.99, 0.999]);
        assert!(
            ps[0] < ps[1] && ps[1] < ps[2],
            "monotone within bin: {ps:?}"
        );
        for (&p, &q) in ps.iter().zip([0.5, 0.99, 0.999].iter()) {
            let exact = 1.0 + q;
            assert!(
                p >= 1.0 && p < 2.0 && (p - exact).abs() < 0.01,
                "q={q}: got {p}, exact {exact}"
            );
        }
        // Empty snapshot and bin-zero samples stay at 0.
        assert_eq!(HistogramSnapshot::default().percentile(0.999), 0.0);
    }

    #[test]
    fn nonpositive_samples_land_in_bin_zero() {
        let h = Histogram::default();
        h.record(0.0);
        h.record(-4.0);
        h.record(f64::NAN);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.bins, vec![(0, 3)]);
        assert_eq!(s.quantile(0.5), 0.0);
    }

    #[test]
    fn counter_sum_matches_by_label() {
        let r = Registry::new();
        r.counter(
            "net_requests_total",
            &[("service", "fs"), ("endpoint", "Login")],
        )
        .add(2);
        r.counter(
            "net_requests_total",
            &[("service", "fs"), ("endpoint", "ListServers")],
        )
        .add(3);
        r.counter(
            "net_requests_total",
            &[("service", "fsx"), ("endpoint", "Login")],
        )
        .add(7);
        let s = r.snapshot();
        assert_eq!(s.counter_sum("net_requests_total", &[("service", "fs")]), 5);
        assert_eq!(
            s.counter_sum("net_requests_total", &[("service", "fsx")]),
            7
        );
        assert_eq!(s.counter_sum("net_requests_total", &[]), 12);
        assert_eq!(s.counter_sum("other", &[]), 0);
    }

    #[test]
    fn gauge_sum_and_max_aggregate_by_label() {
        let r = Registry::new();
        r.gauge(
            "net_inflight",
            &[("service", "fd"), ("endpoint", "RequestBid")],
        )
        .set(3.0);
        r.gauge("net_inflight", &[("service", "fd"), ("endpoint", "Award")])
            .set(1.0);
        r.gauge("net_inflight", &[("service", "fs"), ("endpoint", "Login")])
            .set(9.0);
        let s = r.snapshot();
        assert_eq!(s.gauge_sum("net_inflight", &[("service", "fd")]), 4.0);
        assert_eq!(s.gauge_sum("net_inflight", &[]), 13.0);
        assert_eq!(s.gauge_max("net_inflight", &[("service", "fd")]), 3.0);
        assert_eq!(s.gauge_max("net_inflight", &[]), 9.0);
        assert_eq!(s.gauge_sum("absent", &[]), 0.0);
        assert_eq!(s.gauge_max("absent", &[]), 0.0);
    }

    #[test]
    fn snapshot_round_trips_json() {
        let r = Registry::new();
        r.counter("a", &[]).inc();
        r.gauge("b", &[("x", "y")]).set(2.5);
        r.histogram("c", &[]).record(0.25);
        let s = r.snapshot();
        let back: MetricsSnapshot = serde_json::from_str(&s.to_json()).unwrap();
        assert_eq!(back, s);
        assert!(s.render_text().contains("a 1"));
    }

    #[test]
    fn mismatched_kind_returns_detached_handle() {
        let r = Registry::new();
        r.counter("k", &[]).inc();
        let g = r.gauge("k", &[]);
        g.set(9.0); // goes nowhere
        assert_eq!(r.snapshot().counter("k"), 1);
    }
}
