//! The wall-clock vs sim-time abstraction.
//!
//! Live TCP services measure latency in real time; discrete-event runs
//! measure it in simulated time that only advances when the event loop
//! dispatches. [`TelemetryClock`] hides the difference: both variants
//! answer [`now_secs`](TelemetryClock::now_secs), and a [`Stopwatch`]
//! started from either observes elapsed seconds into the same
//! [`Histogram`]s. The sim variant is a shared atomic cell of simulated
//! microseconds; the event loop calls
//! [`set_micros`](TelemetryClock::set_micros) with the scheduler's `now`
//! before dispatching each event, so any instrument reading the clock mid-
//! event sees the event's timestamp.

use crate::metrics::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A clock that is either the process wall clock or a shared cell of
/// simulated microseconds. Cloning a `Sim` clock shares the cell.
#[derive(Clone, Debug)]
pub enum TelemetryClock {
    /// Monotonic wall time from the process epoch (see
    /// [`crate::trace::wall_secs`]).
    Wall,
    /// Simulated time: microseconds stored by the discrete-event loop.
    Sim(Arc<AtomicU64>),
}

impl Default for TelemetryClock {
    fn default() -> Self {
        TelemetryClock::Wall
    }
}

impl TelemetryClock {
    /// The wall-time clock.
    pub fn wall() -> Self {
        TelemetryClock::Wall
    }

    /// A fresh simulated clock starting at zero microseconds.
    pub fn sim() -> Self {
        TelemetryClock::Sim(Arc::new(AtomicU64::new(0)))
    }

    /// Advance a simulated clock to `micros`. No-op on the wall variant
    /// (real time advances itself).
    #[inline]
    pub fn set_micros(&self, micros: u64) {
        if let TelemetryClock::Sim(cell) = self {
            cell.store(micros, Ordering::Relaxed);
        }
    }

    /// Current time in (wall or simulated) seconds.
    #[inline]
    pub fn now_secs(&self) -> f64 {
        match self {
            TelemetryClock::Wall => crate::trace::wall_secs(),
            TelemetryClock::Sim(cell) => cell.load(Ordering::Relaxed) as f64 / 1e6,
        }
    }

    /// Start timing from now.
    pub fn stopwatch(&self) -> Stopwatch {
        Stopwatch {
            clock: self.clone(),
            start: self.now_secs(),
        }
    }
}

/// An elapsed-time measurement against either clock variant.
#[derive(Clone, Debug)]
pub struct Stopwatch {
    clock: TelemetryClock,
    start: f64,
}

impl Stopwatch {
    /// Seconds elapsed since the stopwatch started (clamped at zero).
    pub fn elapsed_secs(&self) -> f64 {
        (self.clock.now_secs() - self.start).max(0.0)
    }

    /// Record the elapsed time into `hist` and return it.
    pub fn observe(&self, hist: &Histogram) -> f64 {
        let dt = self.elapsed_secs();
        hist.record(dt);
        dt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_reads_what_the_loop_stores() {
        let clock = TelemetryClock::sim();
        assert_eq!(clock.now_secs(), 0.0);
        clock.set_micros(2_500_000);
        assert!((clock.now_secs() - 2.5).abs() < 1e-12);
        let shared = clock.clone();
        shared.set_micros(5_000_000);
        assert!(
            (clock.now_secs() - 5.0).abs() < 1e-12,
            "clones share the cell"
        );
    }

    #[test]
    fn sim_stopwatch_measures_simulated_spans() {
        let clock = TelemetryClock::sim();
        clock.set_micros(1_000_000);
        let sw = clock.stopwatch();
        clock.set_micros(4_000_000);
        let h = Histogram::default();
        let dt = sw.observe(&h);
        assert!((dt - 3.0).abs() < 1e-12);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn wall_clock_advances_on_its_own() {
        let clock = TelemetryClock::wall();
        let sw = clock.stopwatch();
        clock.set_micros(99); // no-op
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(sw.elapsed_secs() > 0.0);
    }
}
