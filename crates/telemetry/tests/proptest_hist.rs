//! Property test: the log₂-binned histogram quantile stays within one bin
//! (a factor of two) of the exact sorted-sample quantile, for any data and
//! any quantile — the resolution contract `HistogramSnapshot::quantile`
//! documents.

use faucets_telemetry::Registry;
use proptest::prelude::*;

proptest! {
    #[test]
    fn histogram_quantile_within_a_factor_of_two_of_exact(
        data in proptest::collection::vec(1e-3f64..1e6, 1..400),
        q in 0.05f64..0.95,
    ) {
        let reg = Registry::new();
        let h = reg.histogram("latency", &[]);
        for &v in &data {
            h.record(v);
        }
        let snap = h.snapshot();

        let mut sorted = data.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Same rank convention as HistogramSnapshot::quantile.
        let rank = (q * sorted.len() as f64).ceil().max(1.0) as usize;
        let exact = sorted[rank - 1];

        // The ranked sample sits in [lo, 2·lo); the estimate is lo·√2, so
        // it is within (√2/2, √2] of the exact value — a factor of two
        // with margin.
        let est = snap.quantile(q);
        prop_assert!(
            est >= exact / 2.0 - 1e-12 && est <= exact * 2.0 + 1e-12,
            "estimate {est} not within 2x of exact {exact}"
        );
    }

    /// Quantiles from a snapshot are monotone in q.
    #[test]
    fn histogram_quantile_is_monotone(
        data in proptest::collection::vec(1e-3f64..1e6, 1..200),
        a in 0.01f64..0.99,
        b in 0.01f64..0.99,
    ) {
        let reg = Registry::new();
        let h = reg.histogram("latency", &[]);
        for &v in &data {
            h.record(v);
        }
        let snap = h.snapshot();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(snap.quantile(lo) <= snap.quantile(hi) + 1e-12);
    }
}
