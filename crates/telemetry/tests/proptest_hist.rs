//! Property test: the log₂-binned histogram quantile stays within one bin
//! (a factor of two) of the exact sorted-sample quantile, for any data and
//! any quantile — the resolution contract `HistogramSnapshot::quantile`
//! documents.

use faucets_telemetry::Registry;
use proptest::prelude::*;

proptest! {
    #[test]
    fn histogram_quantile_within_a_factor_of_two_of_exact(
        data in proptest::collection::vec(1e-3f64..1e6, 1..400),
        q in 0.05f64..0.95,
    ) {
        let reg = Registry::new();
        let h = reg.histogram("latency", &[]);
        for &v in &data {
            h.record(v);
        }
        let snap = h.snapshot();

        let mut sorted = data.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Same rank convention as HistogramSnapshot::quantile.
        let rank = (q * sorted.len() as f64).ceil().max(1.0) as usize;
        let exact = sorted[rank - 1];

        // The ranked sample sits in [lo, 2·lo); the estimate is lo·√2, so
        // it is within (√2/2, √2] of the exact value — a factor of two
        // with margin.
        let est = snap.quantile(q);
        prop_assert!(
            est >= exact / 2.0 - 1e-12 && est <= exact * 2.0 + 1e-12,
            "estimate {est} not within 2x of exact {exact}"
        );
    }

    /// The interpolated percentile path (the p999-capable extraction)
    /// shares the ranked sample's bin: for any data — including
    /// heavy-tailed streams where adjacent ranks differ by orders of
    /// magnitude — the estimate stays within a factor of two of the
    /// exact sorted-sample quantile, all the way out to p999.
    #[test]
    fn histogram_percentile_shares_the_exact_samples_bin(
        u in proptest::collection::vec(0.0f64..0.999_999, 1..500),
        q in 0.05f64..0.999,
    ) {
        // Pareto-flavoured heavy tail via inverse transform.
        let data: Vec<f64> = u.iter().map(|&v| (1.0 - v).powf(-1.5)).collect();
        let reg = Registry::new();
        let h = reg.histogram("latency", &[]);
        for &v in &data {
            h.record(v);
        }
        let snap = h.snapshot();

        let mut sorted = data.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Same rank convention as HistogramSnapshot::percentile.
        let rank = (q * sorted.len() as f64).ceil().max(1.0) as usize;
        let exact = sorted[rank - 1];

        // The estimate lies inside the power-of-two bin [lo, 2·lo)
        // holding the ranked sample, so it is within a factor of two of
        // the exact value in both directions.
        let est = snap.percentile(q);
        prop_assert!(
            est > exact / 2.0 - 1e-12 && est < exact * 2.0 + 1e-12,
            "estimate {est} not within 2x of exact {exact}"
        );
    }

    /// Interpolated percentiles are monotone in q (within-bin linear
    /// interpolation cannot reorder across or inside bins), and the
    /// battery helper agrees with the scalar path.
    #[test]
    fn histogram_percentile_is_monotone(
        data in proptest::collection::vec(1e-3f64..1e6, 1..200),
        a in 0.01f64..0.999,
        b in 0.01f64..0.999,
    ) {
        let reg = Registry::new();
        let h = reg.histogram("latency", &[]);
        for &v in &data {
            h.record(v);
        }
        let snap = h.snapshot();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(snap.percentile(lo) <= snap.percentile(hi) + 1e-12);
        let battery = snap.percentiles(&[lo, hi]);
        prop_assert_eq!(battery, vec![snap.percentile(lo), snap.percentile(hi)]);
    }

    /// Quantiles from a snapshot are monotone in q.
    #[test]
    fn histogram_quantile_is_monotone(
        data in proptest::collection::vec(1e-3f64..1e6, 1..200),
        a in 0.01f64..0.99,
        b in 0.01f64..0.99,
    ) {
        let reg = Registry::new();
        let h = reg.histogram("latency", &[]);
        for &v in &data {
            h.record(v);
        }
        let snap = h.snapshot();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(snap.quantile(lo) <= snap.quantile(hi) + 1e-12);
    }
}
