//! The process-global enable flag, exercised in its own test binary: the
//! flag is deliberately global (it is the E20 overhead A/B switch), so
//! toggling it must not run in the same process as tests that count.

use faucets_telemetry::{set_enabled, Counter, Histogram};

#[test]
fn disabled_collectors_record_nothing() {
    let c = Counter::default();
    let h = Histogram::default();
    set_enabled(false);
    c.inc();
    c.add(10);
    h.record(1.0);
    set_enabled(true);
    assert_eq!(c.get(), 0, "counter ignored while disabled");
    assert_eq!(h.count(), 0, "histogram ignored while disabled");
    c.inc();
    h.record(2.0);
    assert_eq!(c.get(), 1, "re-enabling restores recording");
    assert_eq!(h.count(), 1);
    assert_eq!(h.sum(), 2.0);
}
