//! Shared TCP-service plumbing: a polling accept loop with clean shutdown,
//! and the wall-clock → simulation-clock mapping live services run on.

use crate::proto::{read_frame, write_frame, Request, Response};
use faucets_sim::time::SimTime;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Maps wall-clock time to `SimTime` for live services, with an optional
/// speedup so demonstrations can run "supercomputer hours" in test seconds.
#[derive(Debug, Clone)]
pub struct Clock {
    start: Instant,
    speedup: f64,
}

impl Clock {
    /// A clock where one wall second is `speedup` simulated seconds.
    pub fn new(speedup: f64) -> Self {
        assert!(speedup > 0.0, "speedup must be positive");
        Clock { start: Instant::now(), speedup }
    }

    /// Real time (speedup 1).
    pub fn realtime() -> Self {
        Clock::new(1.0)
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        SimTime::from_secs_f64(self.start.elapsed().as_secs_f64() * self.speedup)
    }
}

/// A running TCP service; dropping the handle stops it.
pub struct ServiceHandle {
    /// The bound address (useful with port 0).
    pub addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl ServiceHandle {
    /// Request shutdown and wait for the accept loop to exit.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Serve `handler` on `addr` ("host:0" picks a free port). Each connection
/// is handled frame-by-frame on its own thread; the handler maps requests
/// to responses.
pub fn serve<F>(addr: &str, name: &'static str, handler: F) -> io::Result<ServiceHandle>
where
    F: Fn(Request) -> Response + Send + Sync + 'static,
{
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let handler = Arc::new(handler);

    let join = std::thread::Builder::new().name(format!("faucets-{name}")).spawn(move || {
        let mut conns: Vec<JoinHandle<()>> = vec![];
        while !stop2.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let h = Arc::clone(&handler);
                    conns.push(std::thread::spawn(move || handle_conn(stream, h)));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => break,
            }
            conns.retain(|c| !c.is_finished());
        }
        for c in conns {
            let _ = c.join();
        }
    })?;

    Ok(ServiceHandle { addr: local, stop, join: Some(join) })
}

fn handle_conn<F>(mut stream: TcpStream, handler: Arc<F>)
where
    F: Fn(Request) -> Response + Send + Sync + 'static,
{
    let _ = stream.set_nodelay(true);
    while let Ok(Some(req)) = read_frame::<_, Request>(&mut stream) {
        let resp = handler(req);
        if write_frame(&mut stream, &resp).is_err() {
            break;
        }
    }
}

/// One round-trip request against a Faucets service.
pub fn call(addr: SocketAddr, req: &Request) -> io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    write_frame(&mut stream, req)?;
    read_frame(&mut stream)?.ok_or_else(|| io::Error::other("connection closed before reply"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_speedup() {
        let c = Clock::new(1000.0);
        std::thread::sleep(Duration::from_millis(20));
        let t = c.now();
        assert!(t >= SimTime::from_secs_f64(10.0), "got {t}");
        assert!(t <= SimTime::from_secs_f64(2_000.0), "got {t}");
    }

    #[test]
    fn echo_service_round_trip() {
        let h = serve("127.0.0.1:0", "echo", |req| match req {
            Request::Login { user, .. } => Response::Error(format!("hello {user}")),
            _ => Response::Ok,
        })
        .unwrap();
        let resp = call(h.addr, &Request::Login { user: "bob".into(), password: "x".into() }).unwrap();
        assert_eq!(resp, Response::Error("hello bob".into()));
        // Multiple sequential calls work.
        let resp = call(h.addr, &Request::VerifyToken { token: faucets_core::auth::SessionToken("t".into()) }).unwrap();
        assert_eq!(resp, Response::Ok);
        h.shutdown();
    }

    #[test]
    fn shutdown_stops_accepting() {
        let h = serve("127.0.0.1:0", "stop", |_| Response::Ok).unwrap();
        let addr = h.addr;
        h.shutdown();
        // Give the OS a beat, then the port should refuse or time out.
        std::thread::sleep(Duration::from_millis(20));
        let r = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
        // Either refused outright or accepted by a lingering backlog that
        // never answers; both count as "not serving".
        if let Ok(mut s) = r {
            let _ = write_frame(&mut s, &Request::VerifyToken { token: faucets_core::auth::SessionToken("x".into()) });
            s.set_read_timeout(Some(Duration::from_millis(200))).unwrap();
            assert!(read_frame::<_, Response>(&mut s).map(|o| o.is_none()).unwrap_or(true));
        }
    }
}
