//! Shared TCP-service plumbing: a readiness-driven epoll reactor feeding a
//! bounded executor pool (nonblocking accept, per-connection frame state
//! machines, vectored writes, prompt eventfd shutdown), configurable
//! read/write timeouts, bounded retry with exponential backoff, pooled and
//! multiplexed client connections, batched fan-out, optional fault
//! injection, and the wall-clock → simulation-clock mapping live services
//! run on.

use crate::fault::FaultPlan;
use crate::overload::{BreakerSet, ServiceLimits};
use crate::pool::{ConnPool, MuxPool};
use crate::proto::{
    apply_receive_faults, is_disconnect_error, parse_payload, read_frame_with, write_frame_with,
    Envelope, ProtoError, Request, Response, MAX_FRAME,
};
use crate::reactor::{Epoll, Event, FrameBuf, Interest, Waker};
use faucets_sim::time::SimTime;
use faucets_telemetry::metrics::{global, Registry};
use faucets_telemetry::trace::{self, TraceContext};
use faucets_telemetry::TelemetryClock;
use parking_lot::{Condvar, Mutex};
use serde::Serialize;
use std::cell::Cell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The `retry_after_ms` hint attached to serve-side overload rejections.
const OVERLOAD_RETRY_HINT_MS: u64 = 25;

thread_local! {
    static REQUEST_DEADLINE: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// The propagated deadline of the request the current thread is serving,
/// if the caller stamped one into its [`Envelope`]. Handlers (and anything
/// they call, like the FD's payoff gate) use this to drop work the moment
/// it becomes doomed, without any change to the handler signature.
pub fn request_deadline() -> Option<Instant> {
    REQUEST_DEADLINE.with(|d| d.get())
}

/// Clears the thread's request deadline on drop, so executor threads never
/// leak one request's deadline into the next.
struct DeadlineGuard;

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        REQUEST_DEADLINE.with(|d| d.set(None));
    }
}

fn set_request_deadline(deadline: Option<Instant>) -> DeadlineGuard {
    REQUEST_DEADLINE.with(|d| d.set(deadline));
    DeadlineGuard
}

/// A stop flag background loops can *wait on*, so "sleep an interval, then
/// check the flag" becomes "wait at most an interval, but wake the moment
/// someone stops (or nudges) us". This is the fix for the fixed-tick sleep
/// family of bugs: the FD pump, the sentinel probe loop, and the federation
/// gossip loop all used bare `thread::sleep`, which made every `shutdown()`
/// eat up to a full interval and (for the 5 ms pump tick) burned 200
/// wakeups a second per daemon while idle.
#[derive(Default)]
pub struct StopSignal {
    stopped: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

impl StopSignal {
    /// A fresh, un-stopped signal.
    pub fn new() -> StopSignal {
        StopSignal::default()
    }

    /// Has [`StopSignal::stop`] been called?
    pub fn is_stopped(&self) -> bool {
        self.stopped.load(Ordering::SeqCst)
    }

    /// Raise the flag and wake every waiter immediately.
    pub fn stop(&self) {
        // Flip the flag under the lock so a waiter can't check it, miss
        // the notify, and then park for its full timeout.
        let _g = self.lock.lock();
        self.stopped.store(true, Ordering::SeqCst);
        self.cv.notify_all();
    }

    /// Wake waiters *without* stopping — "new work arrived, re-evaluate
    /// your deadline now" (the FD pump uses this when an award lands).
    pub fn notify(&self) {
        let _g = self.lock.lock();
        self.cv.notify_all();
    }

    /// Wait up to `timeout` (waking early on [`StopSignal::stop`] or
    /// [`StopSignal::notify`]); returns whether the signal is stopped.
    pub fn wait_for(&self, timeout: Duration) -> bool {
        if self.is_stopped() {
            return true;
        }
        let deadline = Instant::now() + timeout;
        let mut g = self.lock.lock();
        if !self.is_stopped() {
            self.cv.wait_until(&mut g, deadline);
        }
        self.is_stopped()
    }
}

/// Maps wall-clock time to `SimTime` for live services, with an optional
/// speedup so demonstrations can run "supercomputer hours" in test seconds.
#[derive(Debug, Clone)]
pub struct Clock {
    start: Instant,
    speedup: f64,
}

impl Clock {
    /// A clock where one wall second is `speedup` simulated seconds.
    pub fn new(speedup: f64) -> Self {
        assert!(speedup > 0.0, "speedup must be positive");
        Clock {
            start: Instant::now(),
            speedup,
        }
    }

    /// Real time (speedup 1).
    pub fn realtime() -> Self {
        Clock::new(1.0)
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        SimTime::from_secs_f64(self.start.elapsed().as_secs_f64() * self.speedup)
    }

    /// How many simulated seconds pass per wall second.
    pub fn speedup(&self) -> f64 {
        self.speedup
    }

    /// Wall-clock duration until the simulated instant `at` (zero if `at`
    /// is already past). This is the open-loop load harness's conversion:
    /// arrival schedules are generated in sim time so QoS deadlines
    /// anchor correctly, then fired at `start + at / speedup` on the wall.
    pub fn wall_until(&self, at: SimTime) -> Duration {
        let target = at.as_secs_f64() / self.speedup;
        let elapsed = self.start.elapsed().as_secs_f64();
        Duration::from_secs_f64((target - elapsed).max(0.0))
    }
}

/// Socket deadlines for client-side calls, in both directions. The seed
/// system hard-coded a 10 s read timeout and no write timeout at all; a
/// stalled peer could wedge a writer forever. (The reactor serve path does
/// not block on sockets, so server-side these no longer map to socket
/// options; a slow *consumer* is bounded by the per-connection write
/// buffer cap instead.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timeouts {
    /// How long a read may block before the connection is abandoned.
    pub read: Duration,
    /// How long a write may block before the connection is abandoned.
    pub write: Duration,
}

impl Timeouts {
    /// Uniform deadline in both directions.
    pub fn both(d: Duration) -> Self {
        Timeouts { read: d, write: d }
    }

    fn apply(&self, stream: &TcpStream) -> io::Result<()> {
        stream.set_read_timeout(Some(self.read))?;
        stream.set_write_timeout(Some(self.write))
    }
}

impl Default for Timeouts {
    fn default() -> Self {
        Timeouts::both(Duration::from_secs(10))
    }
}

/// Bounded retry with exponential backoff and deterministic jitter.
///
/// The delay before attempt *n* (1-based over retries) is
/// `base · 2^(n-1)`, capped at `cap`, then scaled by a seeded jitter
/// factor in `[1 − jitter, 1]` — deterministic per (seed, attempt) so
/// fault-injection runs reproduce exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (≥ 1).
    pub attempts: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Ceiling on any single backoff.
    pub cap: Duration,
    /// Jitter fraction in `[0, 1]`: how much of the backoff may be shaved.
    pub jitter: f64,
    /// Seed for the jitter sequence.
    pub seed: u64,
}

impl RetryPolicy {
    /// A single attempt — no retries (the seed system's behaviour).
    pub fn none() -> Self {
        RetryPolicy {
            attempts: 1,
            base: Duration::ZERO,
            cap: Duration::ZERO,
            jitter: 0.0,
            seed: 0,
        }
    }

    /// Four attempts, 25 ms → 200 ms exponential backoff, half jitter.
    pub fn standard(seed: u64) -> Self {
        RetryPolicy {
            attempts: 4,
            base: Duration::from_millis(25),
            cap: Duration::from_millis(200),
            jitter: 0.5,
            seed,
        }
    }

    /// The backoff to sleep before retry number `retry` (1-based).
    pub fn backoff(&self, retry: u32) -> Duration {
        let exp = self.base.saturating_mul(1u32 << (retry - 1).min(16));
        let exp = exp.min(self.cap.max(self.base));
        // SplitMix64-style mix for a deterministic jitter draw.
        let mut z = self.seed ^ (retry as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let u = ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64;
        let scale = 1.0 - self.jitter.clamp(0.0, 1.0) * u;
        Duration::from_secs_f64(exp.as_secs_f64() * scale)
    }
}

/// Options for [`serve_with`].
#[derive(Clone)]
pub struct ServeOptions {
    /// Socket deadlines. On the serve side these are kept for
    /// compatibility: the reactor never blocks on a socket, so they no
    /// longer bound individual reads/writes (slow consumers are paused
    /// by [`ServeOptions::write_buf`], slow producers cost nothing).
    pub timeouts: Timeouts,
    /// Fault injection applied to this service's traffic.
    pub faults: Option<Arc<FaultPlan>>,
    /// Metric registry for per-endpoint counters/latency and the `Metrics`
    /// endpoint. `None` uses the process-global registry.
    pub registry: Option<Arc<Registry>>,
    /// Per-endpoint inflight bounds: a request over the bound is answered
    /// [`Response::Overloaded`] immediately instead of queueing without
    /// limit. The default bound is generous (see
    /// [`ServiceLimits::default`]); retune at runtime through the shared
    /// handle, or use [`ServiceLimits::unlimited`] for the seed behaviour.
    pub limits: ServiceLimits,
    /// Executor threads per service (default 32). Connections no longer
    /// pin a thread each — the reactor multiplexes every socket on one
    /// event loop — so this bounds concurrent *handler* executions, not
    /// concurrent connections. Decoded frames hand off to the executor
    /// over a bounded queue ([`ServeOptions::queue`]); when it is full
    /// the reactor parks frames per-connection and stops reading that
    /// socket, which is TCP back-pressure all the way to the client.
    pub workers: usize,
    /// Depth of the reactor → executor hand-off queue (default 1024).
    pub queue: usize,
    /// Outbound reply bytes buffered per connection before the reactor
    /// pauses that connection — no new frames dispatched, read interest
    /// dropped — until the peer drains its backlog (default 4 ×
    /// `MAX_FRAME`). This is back-pressure, not a kill: a client
    /// pipelining a burst whose replies transiently exceed the cap is
    /// paused and resumed, never closed, and total buffering stays
    /// bounded by the cap plus the replies already in flight on the
    /// executor.
    pub write_buf: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            timeouts: Timeouts::default(),
            faults: None,
            registry: None,
            limits: ServiceLimits::default(),
            workers: 32,
            queue: 1024,
            write_buf: WRITE_BUF_CAP,
        }
    }
}

/// Options for [`call_with`].
#[derive(Clone)]
pub struct CallOptions {
    /// Socket deadlines for the round-trip.
    pub timeouts: Timeouts,
    /// Connection-establishment deadline.
    pub connect: Duration,
    /// Transport-failure retry policy (server `Response::Error`s are
    /// answers, not failures, and are never retried here).
    pub retry: RetryPolicy,
    /// Fault injection applied to this caller's traffic.
    pub faults: Option<Arc<FaultPlan>>,
    /// Metric registry for the caller-side attempt/retry/failure counters.
    /// `None` uses the process-global registry.
    pub registry: Option<Arc<Registry>>,
    /// Total wall-clock budget for the call, retries and backoff included.
    /// The remaining budget is stamped into the request's [`Envelope`]
    /// (`deadline_ms`) so the server can shed the work once it is doomed,
    /// and no retry backoff is allowed to sleep past it. `None` (the
    /// default) keeps the pre-deadline behaviour.
    pub deadline: Option<Duration>,
    /// Per-peer circuit breakers shared across calls: after enough
    /// consecutive transport failures the peer's breaker opens and calls
    /// fast-fail locally (typed [`ProtoError::Overloaded`]) until a
    /// cooldown probe succeeds. `None` (the default) disables breaking.
    pub breakers: Option<Arc<BreakerSet>>,
    /// Persistent connection pool shared across calls: each round-trip
    /// checks a health-checked warm socket out of the pool instead of
    /// opening a fresh TCP connection, and returns it afterwards. Any
    /// failure poisons the socket (closed, never reused), so retries,
    /// deadlines, breakers, and fault injection behave exactly as on
    /// per-call connections. `None` (the default) keeps the seed's
    /// connection-per-call behaviour.
    pub pool: Option<Arc<ConnPool>>,
    /// Multiplexed connections shared across calls: requests are stamped
    /// with a `request_id`, many can be in flight on one warm socket at
    /// once, and responses match back by id in any order (a dedicated
    /// reader thread demultiplexes). Takes precedence over
    /// [`CallOptions::pool`]. Retries, deadlines, breakers, and fault
    /// injection behave exactly as on pooled connections; a transport
    /// failure kills the shared socket and fails every call in flight on
    /// it with a typed disconnect, never a crossed wire. `None` (the
    /// default) keeps one-request-per-checkout semantics.
    pub mux: Option<Arc<MuxPool>>,
}

impl Default for CallOptions {
    fn default() -> Self {
        CallOptions {
            timeouts: Timeouts::default(),
            connect: Duration::from_secs(5),
            retry: RetryPolicy::none(),
            faults: None,
            registry: None,
            deadline: None,
            breakers: None,
            pool: None,
            mux: None,
        }
    }
}

/// Resolve an optional registry override to a usable reference.
fn effective(registry: &Option<Arc<Registry>>) -> &Registry {
    registry.as_deref().unwrap_or_else(|| global())
}

/// A running TCP service; dropping the handle stops it.
pub struct ServiceHandle {
    /// The bound address (useful with port 0).
    pub addr: SocketAddr,
    stop: Arc<AtomicBool>,
    shared: Arc<ReactorShared>,
    join: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServiceHandle {
    /// Request shutdown and wait for the reactor and every executor
    /// thread to exit.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    /// Simulate a crash: stop serving immediately. No deregistration, no
    /// goodbye to peers — in-flight callers see connection errors or
    /// timeouts, exactly as if the process died. (Mechanically identical
    /// to [`ServiceHandle::shutdown`]; the crash semantics come from the
    /// owner discarding state that a graceful path would have persisted.)
    pub fn kill(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The reactor parks in epoll_wait; its wakeup eventfd pops it
        // immediately. (The old accept loop needed a throwaway self-
        // connect here — the reactor does not.) The reactor observes the
        // flag, shuts every connection down, closes the listener, and
        // drops the job sender so the executor drains and exits.
        self.shared.waker.wake();
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Serve `handler` on `addr` ("host:0" picks a free port) with default
/// options. Connections are multiplexed on one reactor; the handler maps
/// requests to responses on the executor pool.
pub fn serve<F>(addr: &str, name: &'static str, handler: F) -> io::Result<ServiceHandle>
where
    F: Fn(Request) -> Response + Send + Sync + 'static,
{
    serve_with(addr, name, ServeOptions::default(), handler)
}

// ---------------------------------------------------------------------------
// Reactor serve path
// ---------------------------------------------------------------------------

const TOK_LISTENER: u64 = 0;
const TOK_WAKER: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// Default for [`ServeOptions::write_buf`]: outbound reply bytes buffered
/// per connection before the reactor pauses dispatching that connection's
/// frames. Saturation is back-pressure, never a kill: dispatch (and reads)
/// resume as the peer drains, so a fast-reading client pipelining a burst
/// whose replies transiently outrun the socket is paused, not cut off.
const WRITE_BUF_CAP: usize = 4 * MAX_FRAME as usize;

/// Decoded-but-undispatched frames a connection may hold while the
/// executor queue is full before the reactor stops reading its socket.
const PARKED_FRAMES_CAP: usize = 256;

/// One decoded request frame, handed to the executor.
struct Job {
    conn: u64,
    payload: Vec<u8>,
}

/// What the executor hands back to the reactor.
enum Completion {
    /// Append these bytes (a serialized reply frame; possibly empty when a
    /// fault plan "lost" it) to the connection's write queue.
    Reply {
        conn: u64,
        bytes: Vec<u8>,
        /// The request carried a `request_id`: the peer can match replies
        /// out of order, so its connection may dispatch concurrently.
        had_id: bool,
    },
    /// The frame was unparseable — the stream can't be trusted; close it.
    Close { conn: u64 },
}

/// State shared between the reactor, the executor, and the handle.
struct ReactorShared {
    completions: Mutex<Vec<Completion>>,
    waker: Waker,
}

impl ReactorShared {
    fn push(&self, c: Completion) {
        self.completions.lock().push(c);
        self.waker.wake();
    }
}

/// Per-connection frame state machine.
struct Conn {
    stream: TcpStream,
    frames: FrameBuf,
    /// Decoded frames waiting for an executor slot.
    parked: VecDeque<Vec<u8>>,
    /// Outbound reply frames; the first may be partially written.
    wbufs: VecDeque<Vec<u8>>,
    woff: usize,
    wbytes: usize,
    /// Frames dispatched to the executor and not yet completed.
    inflight: usize,
    /// Read side saw EOF or an error; no more requests will arrive.
    peer_gone: bool,
    /// Unrecoverable (protocol violation, write failure): close now.
    dead: bool,
    /// Dispatch one frame at a time. A peer that never stamps a
    /// `request_id` (the pre-multiplexing wire contract) is owed replies
    /// in request order, which concurrent executor dispatch would
    /// scramble; the first id seen proves the peer matches by id and
    /// lifts the restriction for the connection's lifetime.
    serial: bool,
    interest: Interest,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            frames: FrameBuf::new(MAX_FRAME as usize),
            parked: VecDeque::new(),
            wbufs: VecDeque::new(),
            woff: 0,
            wbytes: 0,
            inflight: 0,
            peer_gone: false,
            dead: false,
            serial: true,
            interest: Interest::READ,
        }
    }

    /// Drain the socket into the frame buffer (never blocks).
    fn on_readable(&mut self) {
        let mut buf = [0u8; 64 * 1024];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    self.peer_gone = true;
                    break;
                }
                Ok(n) => {
                    self.frames.extend(&buf[..n]);
                    if n < buf.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.peer_gone = true;
                    break;
                }
            }
        }
    }

    /// Flush queued reply frames with vectored writes (never blocks).
    fn flush(&mut self) {
        while !self.wbufs.is_empty() {
            let mut slices: Vec<io::IoSlice<'_>> = Vec::with_capacity(self.wbufs.len().min(64));
            slices.push(io::IoSlice::new(&self.wbufs[0][self.woff..]));
            for b in self.wbufs.iter().skip(1).take(63) {
                slices.push(io::IoSlice::new(b));
            }
            match self.stream.write_vectored(&slices) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(mut n) => {
                    self.wbytes -= n;
                    while n > 0 {
                        let first_rem = self.wbufs[0].len() - self.woff;
                        if n >= first_rem {
                            n -= first_rem;
                            self.wbufs.pop_front();
                            self.woff = 0;
                        } else {
                            self.woff += n;
                            n = 0;
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }
}

/// [`serve`], with explicit options.
///
/// The serve path is a readiness-driven reactor: one thread owns a
/// nonblocking listener, a wakeup eventfd, and every accepted socket
/// through a level-triggered epoll set — concurrent connections cost a few
/// hundred bytes each instead of a thread each. Complete frames hand off
/// to a bounded executor pool (`workers` threads) where fault injection,
/// admission control, deadline shedding, tracing, and the handler run
/// exactly as they did on the blocking path; serialized replies return to
/// the reactor over a completion queue and go out with vectored writes.
/// Responses carry the request's `request_id`, so pipelined clients may
/// have many frames in flight and receive replies out of order; a peer
/// that never stamps ids keeps the pre-multiplexing contract — its frames
/// dispatch one at a time, so its replies come back in request order.
/// When the executor queue is full (or a peer's reply backlog exceeds
/// [`ServeOptions::write_buf`]) the reactor parks frames and stops
/// reading that connection — back-pressure reaches the client as TCP flow
/// control, not as unbounded memory — and every parked connection is
/// re-serviced as completions drain the queue, never left waiting on its
/// own (already consumed) fd. Shutdown is prompt and needs no
/// self-connect: the eventfd pops `epoll_wait`.
pub fn serve_with<F>(
    addr: &str,
    name: &'static str,
    opts: ServeOptions,
    handler: F,
) -> io::Result<ServiceHandle>
where
    F: Fn(Request) -> Response + Send + Sync + 'static,
{
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let handler = Arc::new(handler);
    let shared = Arc::new(ReactorShared {
        completions: Mutex::new(Vec::new()),
        waker: Waker::new()?,
    });
    let epoll = Epoll::new()?;
    epoll.add(listener.as_raw_fd(), TOK_LISTENER, Interest::READ)?;
    epoll.add(shared.waker.fd(), TOK_WAKER, Interest::READ)?;

    let worker_count = opts.workers.max(1);
    let (tx, rx) = crossbeam::channel::bounded::<Job>(opts.queue.max(worker_count));
    let mut workers = Vec::with_capacity(worker_count);
    for i in 0..worker_count {
        let rx = rx.clone();
        let handler = Arc::clone(&handler);
        let opts = opts.clone();
        let stop = Arc::clone(&stop);
        let shared = Arc::clone(&shared);
        workers.push(
            std::thread::Builder::new()
                .name(format!("faucets-{name}-x{i}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        // Frames queued behind a shutdown are dropped, not
                        // served one last time.
                        if stop.load(Ordering::SeqCst) {
                            continue;
                        }
                        let done = process_frame(job, &*handler, &opts, name);
                        shared.push(done);
                    }
                })?,
        );
    }
    drop(rx);

    let stop2 = Arc::clone(&stop);
    let shared2 = Arc::clone(&shared);
    let registry = opts.registry.clone();
    let write_buf = opts.write_buf.max(1);
    let join = std::thread::Builder::new()
        .name(format!("faucets-{name}"))
        .spawn(move || {
            reactor_loop(
                epoll, listener, stop2, shared2, tx, registry, write_buf, name,
            )
        })?;

    Ok(ServiceHandle {
        addr: local,
        stop,
        shared,
        join: Some(join),
        workers,
    })
}

#[allow(clippy::too_many_arguments)]
fn reactor_loop(
    epoll: Epoll,
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    shared: Arc<ReactorShared>,
    jobs: crossbeam::channel::Sender<Job>,
    registry: Option<Arc<Registry>>,
    write_buf: usize,
    name: &'static str,
) {
    let reg = effective(&registry);
    let labels = [("service", name)];
    let g_fds = reg.gauge("net_reactor_registered_fds", &labels);
    let g_open = reg.gauge("net_open_conns", &labels);
    let c_accepted = reg.counter("net_conns_accepted_total", &labels);
    let h_ready = reg.histogram("net_reactor_ready_events", &labels);
    let g_queue = reg.gauge("net_reactor_executor_queue", &labels);
    let c_wakeups = reg.counter("net_reactor_wakeups_total", &labels);

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = FIRST_CONN_TOKEN;
    let mut events: Vec<Event> = Vec::new();
    let mut touched: Vec<u64> = Vec::new();
    // Connections holding parked frames (executor queue was full, write
    // queue saturated, or serial dispatch). Their sockets may never fire
    // again — a parked frame is already read — so they are re-serviced on
    // every pass, not just on their own events.
    let mut parked_conns: HashSet<u64> = HashSet::new();

    loop {
        // Harvest executor completions first: replies join their
        // connection's write queue, inflight counts drop, protocol
        // violations mark their connection dead.
        {
            let mut pending = shared.completions.lock();
            for c in pending.drain(..) {
                let (token, bytes, had_id) = match c {
                    Completion::Reply {
                        conn,
                        bytes,
                        had_id,
                    } => (conn, Some(bytes), had_id),
                    Completion::Close { conn } => (conn, None, false),
                };
                // The connection may already be gone (closed for its own
                // reasons while the job ran); its reply is simply dropped.
                if let Some(conn) = conns.get_mut(&token) {
                    conn.inflight -= 1;
                    if had_id {
                        conn.serial = false;
                    }
                    match bytes {
                        Some(b) if !b.is_empty() => {
                            conn.wbytes += b.len();
                            conn.wbufs.push_back(b);
                        }
                        Some(_) => {} // fault plan dropped the reply
                        None => conn.dead = true,
                    }
                    touched.push(token);
                }
            }
        }
        if stop.load(Ordering::SeqCst) {
            break;
        }

        // Every completion harvested above freed an executor-queue slot,
        // so every connection still holding parked frames gets another
        // dispatch attempt — not just the one whose completion arrived.
        // Without this, a queue-full park on a connection with nothing in
        // flight starves forever: its fd never fires again, and queue
        // drain driven by *other* connections never touches it.
        touched.extend(parked_conns.iter().copied());

        // Service every connection something happened to: decode newly
        // buffered frames, dispatch to the executor, flush writes, adjust
        // epoll interest, and reap finished connections.
        touched.sort_unstable();
        touched.dedup();
        for token in touched.drain(..) {
            service_conn(
                &epoll,
                &mut conns,
                token,
                &jobs,
                write_buf,
                &mut parked_conns,
                &g_open,
                &g_fds,
            );
        }
        g_queue.set(jobs.len() as f64);

        // Block until something is ready. No timeout: every state change
        // arrives as an fd event (socket readiness, accept, eventfd).
        if epoll.wait(&mut events, None).is_err() {
            break;
        }
        h_ready.record(events.len() as f64);
        for i in 0..events.len() {
            let ev = events[i];
            match ev.token {
                TOK_LISTENER => {
                    let accepted =
                        accept_ready(&listener, &epoll, &mut conns, &mut next_token, &mut touched);
                    c_accepted.add(accepted as u64);
                    g_open.add(accepted as f64);
                    g_fds.set(conns.len() as f64);
                }
                TOK_WAKER => {
                    shared.waker.drain();
                    c_wakeups.inc();
                }
                token => {
                    if let Some(conn) = conns.get_mut(&token) {
                        if ev.readable {
                            conn.on_readable();
                        }
                        if ev.writable {
                            conn.flush();
                        }
                        touched.push(token);
                    }
                }
            }
        }
    }

    // Teardown: kick every connection loose (pops clients blocked in
    // reads) and drop the job sender so the executor pool drains and
    // exits.
    for conn in conns.values() {
        let _ = conn.stream.shutdown(Shutdown::Both);
    }
    g_open.set(0.0);
    g_fds.set(0.0);
    drop(conns);
    drop(jobs);
}

fn accept_ready(
    listener: &TcpListener,
    epoll: &Epoll,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    touched: &mut Vec<u64>,
) -> usize {
    let mut accepted = 0;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let token = *next_token;
                *next_token += 1;
                if epoll
                    .add(stream.as_raw_fd(), token, Interest::READ)
                    .is_err()
                {
                    continue;
                }
                conns.insert(token, Conn::new(stream));
                touched.push(token);
                accepted += 1;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    accepted
}

/// Decode, dispatch, flush, re-arm interest, and reap one connection.
#[allow(clippy::too_many_arguments)]
fn service_conn(
    epoll: &Epoll,
    conns: &mut HashMap<u64, Conn>,
    token: u64,
    jobs: &crossbeam::channel::Sender<Job>,
    write_buf: usize,
    parked_conns: &mut HashSet<u64>,
    g_open: &faucets_telemetry::metrics::Gauge,
    g_fds: &faucets_telemetry::metrics::Gauge,
) {
    let Some(conn) = conns.get_mut(&token) else {
        parked_conns.remove(&token);
        return;
    };
    if !conn.dead {
        // Decode buffered bytes into frames, bounded by the parking cap.
        while conn.parked.len() < PARKED_FRAMES_CAP {
            match conn.frames.next_frame() {
                Ok(Some(payload)) => conn.parked.push_back(payload),
                Ok(None) => break,
                Err(_) => {
                    // Oversized length prefix: the stream cannot be
                    // re-synchronized.
                    conn.dead = true;
                    break;
                }
            }
        }
        // Hand frames to the executor. Dispatch pauses — frames stay
        // parked — when the executor queue is full, when the peer has not
        // drained its reply backlog (piling more replies onto a saturated
        // write queue is how buffering becomes unbounded), or while an
        // id-less peer's previous frame is still in flight (its replies
        // must keep request order).
        while !conn.parked.is_empty() {
            if conn.wbytes > write_buf {
                break;
            }
            if conn.serial && conn.inflight > 0 {
                break;
            }
            let payload = conn.parked.pop_front().expect("checked non-empty");
            match jobs.try_send(Job {
                conn: token,
                payload,
            }) {
                Ok(()) => conn.inflight += 1,
                Err(crossbeam::channel::TrySendError::Full(job)) => {
                    conn.parked.push_front(job.payload);
                    break;
                }
                Err(crossbeam::channel::TrySendError::Disconnected(_)) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        if !conn.wbufs.is_empty() {
            conn.flush();
        }
    }
    let finished =
        conn.peer_gone && conn.inflight == 0 && conn.parked.is_empty() && conn.wbufs.is_empty();
    if conn.dead || finished {
        let _ = epoll.remove(conn.stream.as_raw_fd());
        let _ = conn.stream.shutdown(Shutdown::Both);
        conns.remove(&token);
        parked_conns.remove(&token);
        g_open.add(-1.0);
        g_fds.set(conns.len() as f64);
        return;
    }
    // A connection still holding parked frames must be revisited on the
    // next pass even if its fd never fires again.
    if conn.parked.is_empty() {
        parked_conns.remove(&token);
    } else {
        parked_conns.insert(token);
    }
    // Read while the peer may still send, there is parking room, and the
    // peer is draining its replies; write while replies are queued.
    let want = Interest {
        readable: !conn.peer_gone
            && conn.parked.len() < PARKED_FRAMES_CAP
            && conn.wbytes <= write_buf,
        writable: !conn.wbufs.is_empty(),
    };
    if want != conn.interest {
        if epoll.modify(conn.stream.as_raw_fd(), token, want).is_err() {
            conn.dead = true;
        } else {
            conn.interest = want;
        }
    }
    g_fds.set(conns.len() as f64);
}

/// Everything that happens to one request frame once it leaves the
/// reactor: receive-side fault injection, parsing, the metrics exemption,
/// admission control, deadline shedding, tracing, the handler itself, and
/// reply serialization (with send-side faults). This is the same pipeline
/// the blocking serve path ran inline, now on an executor thread.
fn process_frame<F>(job: Job, handler: &F, opts: &ServeOptions, name: &'static str) -> Completion
where
    F: Fn(Request) -> Response + Send + Sync + 'static,
{
    let token = job.conn;
    let mut payload = job.payload;
    let faults = opts.faults.as_deref();
    apply_receive_faults(&mut payload, faults);
    let env: Envelope<Request> = match parse_payload(&payload) {
        Ok(env) => env,
        // A frame that parses to garbage means the stream is garbled or
        // desynchronized; the connection is closed, as the blocking path
        // did by breaking its read loop.
        Err(_) => return Completion::Close { conn: token },
    };
    let Envelope {
        ctx,
        deadline_ms,
        request_id,
        msg: req,
    } = env;
    let reg = effective(&opts.registry);
    let reply = |ctx: Option<TraceContext>, msg: Response| Envelope {
        ctx,
        deadline_ms: None,
        // Echo the request's id so pipelined clients can match this reply
        // out of order.
        request_id,
        msg,
    };
    // The serve layer answers metrics queries itself, so every service
    // exposes the endpoint without touching its handler. Metrics are
    // exempt from admission control: observability must keep working
    // precisely when the service is drowning.
    if matches!(req, Request::Metrics) {
        return encode_reply(
            token,
            &reply(ctx, Response::Metrics(reg.snapshot())),
            faults,
        );
    }
    let endpoint = req.endpoint();
    let labels = [("service", name), ("endpoint", endpoint)];
    reg.counter("net_requests_total", &labels).inc();
    // Admission control: fault-injected rejections share the real shed
    // path, then the per-endpoint inflight bound applies. Over the bound
    // we fast-fail with a typed Overloaded answer instead of queueing
    // without limit.
    let injected = faults.is_some_and(|p| p.inject_overload(endpoint.as_bytes()));
    let permit = if injected {
        None
    } else {
        opts.limits.try_enter(endpoint)
    };
    let Some(_permit) = permit else {
        reg.counter("net_overload_rejections_total", &labels).inc();
        let env = reply(
            ctx,
            Response::Overloaded {
                retry_after_ms: OVERLOAD_RETRY_HINT_MS,
            },
        );
        return encode_reply(token, &env, faults);
    };
    reg.gauge("net_inflight", &labels)
        .set(opts.limits.inflight(endpoint) as f64);
    // Doomed-work elimination: a request whose propagated deadline
    // already expired in flight is shed before the handler spends
    // anything on it — the caller has abandoned the answer.
    if deadline_ms == Some(0) {
        reg.counter("net_deadline_sheds_total", &labels).inc();
        let env = reply(ctx, Response::Overloaded { retry_after_ms: 0 });
        return encode_reply(token, &env, faults);
    }
    let _deadline_guard =
        set_request_deadline(deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms)));
    // The server span becomes this thread's current context, so any
    // outbound call the handler makes rides the same trace.
    let mut span = trace::server_span(ctx, name, endpoint);
    let sw = TelemetryClock::wall().stopwatch();
    let resp = handler(req);
    sw.observe(&reg.histogram("net_request_seconds", &labels));
    if matches!(resp, Response::Error(_)) {
        reg.counter("net_errors_total", &labels).inc();
        span.fail();
    }
    let reply_ctx = Some(span.ctx());
    drop(span);
    encode_reply(token, &reply(reply_ctx, resp), faults)
}

/// Serialize a reply envelope (send-side faults included: a dropped frame
/// yields empty bytes — "lost on the wire" — and a truncated one a partial
/// frame, exactly as on a real socket).
fn encode_reply(token: u64, env: &Envelope<Response>, faults: Option<&FaultPlan>) -> Completion {
    let mut bytes = Vec::new();
    match write_frame_with(&mut bytes, env, faults) {
        Ok(()) => Completion::Reply {
            conn: token,
            bytes,
            // The reply echoes the request's id; its presence tells the
            // reactor the peer matches replies by id, so the connection
            // may dispatch frames concurrently from here on.
            had_id: env.request_id.is_some(),
        },
        Err(_) => Completion::Close { conn: token },
    }
}

// ---------------------------------------------------------------------------
// Client call path
// ---------------------------------------------------------------------------

/// One round-trip request against a Faucets service, default options.
pub fn call(addr: SocketAddr, req: &Request) -> io::Result<Response> {
    call_with(addr, req, &CallOptions::default())
}

/// [`call`], with explicit timeouts, bounded retry, and optional fault
/// injection. Transport failures (connect, send, receive) are retried up
/// to the policy's budget with exponential backoff + jitter; a received
/// [`Response`] — including `Response::Error` — always returns.
pub fn call_with(addr: SocketAddr, req: &Request, opts: &CallOptions) -> io::Result<Response> {
    let reg = effective(&opts.registry);
    let labels = [("endpoint", req.endpoint())];
    let deadline = opts.deadline.map(|d| Instant::now() + d);
    let attempts = opts.retry.attempts.max(1);
    let mut last_err: Option<io::Error> = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            // Retry wall-clock is capped by the caller's deadline: a
            // backoff that would sleep into (or past) it can only produce
            // an answer the caller has already abandoned.
            let backoff = opts.retry.backoff(attempt);
            if deadline.is_some_and(|d| Instant::now() + backoff >= d) {
                reg.counter("net_call_deadline_exhausted_total", &labels)
                    .inc();
                break;
            }
            // Every backoff decision is counted, so chaos tests can assert
            // "the caller retried N times" instead of sleeping and hoping.
            reg.counter("net_call_retries_total", &labels).inc();
            std::thread::sleep(backoff);
        }
        // An open breaker fast-fails locally — no connect, no retry storm
        // against a peer that is dead or drowning.
        if let Some(breakers) = &opts.breakers {
            if !breakers.allow(addr, reg) {
                reg.counter("net_breaker_fastfails_total", &labels).inc();
                return Err(ProtoError::Overloaded {
                    retry_after_ms: breakers.config().cooldown.as_millis() as u64,
                }
                .into());
            }
        }
        reg.counter("net_call_attempts_total", &labels).inc();
        match call_once(addr, req, opts, deadline) {
            Ok(Response::Overloaded { retry_after_ms }) => {
                // The peer answered — it is alive, just shedding — so the
                // breaker records a success while the caller gets a typed
                // overload error. Retrying here would feed the storm.
                if let Some(breakers) = &opts.breakers {
                    breakers.on_success(addr, reg);
                }
                reg.counter("net_call_overloaded_total", &labels).inc();
                return Err(ProtoError::Overloaded { retry_after_ms }.into());
            }
            Ok(resp) => {
                if let Some(breakers) = &opts.breakers {
                    breakers.on_success(addr, reg);
                }
                return Ok(resp);
            }
            Err(e) => {
                if let Some(breakers) = &opts.breakers {
                    breakers.on_failure(addr, reg);
                }
                last_err = Some(e);
            }
        }
    }
    reg.counter("net_call_failures_total", &labels).inc();
    Err(last_err.unwrap_or_else(|| io::Error::other("no attempts made")))
}

/// Borrowing twin of [`Envelope`] so the send path never clones the
/// request just to attach a context (field names must match `Envelope`).
#[derive(Serialize)]
pub(crate) struct EnvelopeRef<'a, T> {
    pub(crate) ctx: Option<TraceContext>,
    #[serde(skip_serializing_if = "Option::is_none")]
    pub(crate) deadline_ms: Option<u64>,
    #[serde(skip_serializing_if = "Option::is_none")]
    pub(crate) request_id: Option<u64>,
    pub(crate) msg: &'a T,
}

/// Milliseconds of budget left until `deadline`, for envelope stamping.
pub(crate) fn remaining_ms(deadline: Option<Instant>) -> Option<u64> {
    deadline.map(|d| d.saturating_duration_since(Instant::now()).as_millis() as u64)
}

/// One request/response exchange on an established stream.
fn round_trip(
    stream: &mut TcpStream,
    req: &Request,
    opts: &CallOptions,
    deadline: Option<Instant>,
) -> io::Result<Response> {
    let faults = opts.faults.as_deref();
    let env = EnvelopeRef {
        ctx: trace::current(),
        deadline_ms: remaining_ms(deadline),
        request_id: None,
        msg: req,
    };
    write_frame_with(stream, &env, faults).map_err(io::Error::from)?;
    read_frame_with::<_, Envelope<Response>>(stream, None)
        .map_err(io::Error::from)?
        .map(|e| e.msg)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before reply",
            )
        })
}

fn call_once(
    addr: SocketAddr,
    req: &Request,
    opts: &CallOptions,
    deadline: Option<Instant>,
) -> io::Result<Response> {
    if opts.mux.is_some() {
        return mux_call(addr, req, opts, deadline);
    }
    let Some(pool) = &opts.pool else {
        // Seed behaviour: one connection per call.
        let mut stream = TcpStream::connect_timeout(&addr, opts.connect)?;
        stream.set_nodelay(true)?;
        opts.timeouts.apply(&stream)?;
        return round_trip(&mut stream, req, opts, deadline);
    };
    let reg = effective(&opts.registry);
    let mut conn = pool.checkout(addr, opts.connect, reg)?;
    conn.stream().set_nodelay(true)?;
    opts.timeouts.apply(conn.stream())?;
    let reused = conn.reused();
    match round_trip(conn.stream(), req, opts, deadline) {
        Ok(resp) => {
            conn.give_back(reg);
            Ok(resp)
        }
        Err(e) => {
            // Any failure poisons the socket: after a fault or timeout the
            // stream may hold half a frame, and returning it would pay the
            // next caller this caller's bytes.
            conn.poison(reg);
            // A *reused* socket that died on first use usually went stale
            // between the health check and the write (peer restarted or
            // reaped it while idle). One immediate retry on a fresh
            // connection keeps that invisible, without consuming the
            // caller's retry budget — and only for disconnects, never for
            // timeouts, where the request may still be running remotely.
            if !(reused && is_disconnect_error(&e)) {
                return Err(e);
            }
            reg.counter("net_pool_stale_retries_total", &[("pool", pool.name())])
                .inc();
            let mut conn = pool.checkout_fresh(addr, opts.connect, reg)?;
            conn.stream().set_nodelay(true)?;
            opts.timeouts.apply(conn.stream())?;
            match round_trip(conn.stream(), req, opts, deadline) {
                Ok(resp) => {
                    conn.give_back(reg);
                    Ok(resp)
                }
                Err(e) => {
                    conn.poison(reg);
                    Err(e)
                }
            }
        }
    }
}

/// One round-trip over a multiplexed connection, with the pooled path's
/// stale-retry semantics: a *reused* shared socket that turns out dead
/// gets one immediate replacement attempt, invisible to the caller's
/// retry budget.
fn mux_call(
    addr: SocketAddr,
    req: &Request,
    opts: &CallOptions,
    deadline: Option<Instant>,
) -> io::Result<Response> {
    let mux = opts
        .mux
        .as_ref()
        .expect("mux_call requires CallOptions::mux");
    let reg = effective(&opts.registry);
    let (conn, reused) = mux.checkout(addr, opts, reg)?;
    match conn.round_trip(req, opts, deadline) {
        Ok(resp) => Ok(resp),
        Err(e) => {
            if !(reused && is_disconnect_error(&e)) {
                return Err(e);
            }
            reg.counter("net_mux_stale_retries_total", &[("pool", mux.name())])
                .inc();
            let (conn, _) = mux.checkout(addr, opts, reg)?;
            conn.round_trip(req, opts, deadline)
        }
    }
}

/// Pipeline a batch of requests over one multiplexed connection: every
/// request frame is written in a single vectored burst (one syscall for
/// the whole batch on the happy path), all of them are then in flight at
/// once, and replies are collected as they come back — in any order,
/// matched by `request_id`. The result vector is index-aligned with
/// `reqs`.
///
/// Without [`CallOptions::mux`] this degrades to sequential [`call_with`]
/// calls. With it, per-request results map exactly as `call_with` maps
/// them (`Response::Overloaded` becomes a typed error, breaker bookkeeping
/// per result) — but there is **no retry loop** inside the batch; callers
/// that want retries issue them per failed slot.
pub fn call_batch(
    addr: SocketAddr,
    reqs: &[Request],
    opts: &CallOptions,
) -> Vec<io::Result<Response>> {
    if reqs.is_empty() {
        return vec![];
    }
    let Some(mux) = &opts.mux else {
        return reqs.iter().map(|r| call_with(addr, r, opts)).collect();
    };
    let reg = effective(&opts.registry);
    let deadline = opts.deadline.map(|d| Instant::now() + d);
    // One breaker decision gates the whole burst: a peer that is dead or
    // drowning fast-fails the batch without touching the network.
    if let Some(breakers) = &opts.breakers {
        if !breakers.allow(addr, reg) {
            let hint = breakers.config().cooldown.as_millis() as u64;
            return reqs
                .iter()
                .map(|r| {
                    reg.counter("net_breaker_fastfails_total", &[("endpoint", r.endpoint())])
                        .inc();
                    Err(ProtoError::Overloaded {
                        retry_after_ms: hint,
                    }
                    .into())
                })
                .collect();
        }
    }
    for r in reqs {
        reg.counter("net_call_attempts_total", &[("endpoint", r.endpoint())])
            .inc();
    }
    let conn = match mux.checkout(addr, opts, reg) {
        Ok((conn, _)) => conn,
        Err(e) => {
            if let Some(breakers) = &opts.breakers {
                breakers.on_failure(addr, reg);
            }
            return reqs.iter().map(|_| Err(clone_io_error(&e))).collect();
        }
    };
    let tickets = match conn.begin_batch(reqs, opts, deadline) {
        Ok(tickets) => tickets,
        Err(e) => {
            if let Some(breakers) = &opts.breakers {
                breakers.on_failure(addr, reg);
            }
            return reqs.iter().map(|_| Err(clone_io_error(&e))).collect();
        }
    };
    tickets
        .into_iter()
        .zip(reqs)
        .map(|(ticket, req)| {
            let labels = [("endpoint", req.endpoint())];
            match conn.wait(ticket, opts) {
                Ok(Response::Overloaded { retry_after_ms }) => {
                    if let Some(breakers) = &opts.breakers {
                        breakers.on_success(addr, reg);
                    }
                    reg.counter("net_call_overloaded_total", &labels).inc();
                    Err(ProtoError::Overloaded { retry_after_ms }.into())
                }
                Ok(resp) => {
                    if let Some(breakers) = &opts.breakers {
                        breakers.on_success(addr, reg);
                    }
                    Ok(resp)
                }
                Err(e) => {
                    if let Some(breakers) = &opts.breakers {
                        breakers.on_failure(addr, reg);
                    }
                    reg.counter("net_call_failures_total", &labels).inc();
                    Err(e)
                }
            }
        })
        .collect()
}

/// `io::Error` is not `Clone`; preserve kind and message for fan-out.
fn clone_io_error(e: &io::Error) -> io::Error {
    io::Error::new(e.kind(), e.to_string())
}

/// Fan one request out to many peers concurrently over at most
/// `max_concurrency` threads, each call going through [`call_with`] with
/// the full retry/breaker/deadline/pool machinery. The result vector is
/// index-aligned with `addrs`, and every worker runs under the calling
/// thread's trace context, so the fan-out's frames all join the caller's
/// trace — this is the client's one-round bid solicitation (§2.2) over
/// warm pooled connections. With [`CallOptions::mux`] set, concurrent
/// workers targeting the same peer share warm sockets and their frames
/// pipeline on them, instead of each worker holding a socket exclusively
/// for its round-trip.
pub fn call_many(
    addrs: &[SocketAddr],
    req: &Request,
    opts: &CallOptions,
    max_concurrency: usize,
) -> Vec<io::Result<Response>> {
    let n = addrs.len();
    if n == 0 {
        return vec![];
    }
    let ctx = trace::current();
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<io::Result<Response>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..max_concurrency.clamp(1, n) {
            scope.spawn(|| {
                trace::propagate(ctx, || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    *slots[i].lock() = Some(call_with(addrs[i], req, opts));
                })
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|| Err(io::Error::other("fan-out worker vanished")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultConfig, FaultPlan};

    #[test]
    fn clock_advances_with_speedup() {
        // 40 ms of wall sleep at 1000x is ≥ 40 sim seconds; the wide upper
        // bound gives a heavily loaded CI machine plenty of headroom.
        let c = Clock::new(1000.0);
        std::thread::sleep(Duration::from_millis(40));
        let t = c.now();
        assert!(t >= SimTime::from_secs_f64(20.0), "got {t}");
        assert!(t <= SimTime::from_secs_f64(10_000.0), "got {t}");
    }

    #[test]
    fn stop_signal_wakes_waiters_immediately() {
        let sig = Arc::new(StopSignal::new());
        let s2 = Arc::clone(&sig);
        let waiter = std::thread::spawn(move || {
            let start = Instant::now();
            let stopped = s2.wait_for(Duration::from_secs(30));
            (stopped, start.elapsed())
        });
        std::thread::sleep(Duration::from_millis(30));
        sig.stop();
        let (stopped, waited) = waiter.join().unwrap();
        assert!(stopped, "wait_for reports the stop");
        assert!(
            waited < Duration::from_secs(5),
            "stop() must interrupt the wait, not let it run the interval: {waited:?}"
        );
        // Once stopped, waits return immediately.
        let t = Instant::now();
        assert!(sig.wait_for(Duration::from_secs(30)));
        assert!(t.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn stop_signal_notify_wakes_without_stopping() {
        let sig = Arc::new(StopSignal::new());
        let s2 = Arc::clone(&sig);
        let waiter = std::thread::spawn(move || s2.wait_for(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(30));
        sig.notify();
        assert!(
            !waiter.join().unwrap(),
            "notify wakes the waiter but the signal is not stopped"
        );
        // And a plain timeout also reports "not stopped".
        assert!(!sig.wait_for(Duration::from_millis(5)));
    }

    #[test]
    fn echo_service_round_trip() {
        let h = serve("127.0.0.1:0", "echo", |req| match req {
            Request::Login { user, .. } => Response::Error(format!("hello {user}")),
            _ => Response::Ok,
        })
        .unwrap();
        let resp = call(
            h.addr,
            &Request::Login {
                user: "bob".into(),
                password: "x".into(),
            },
        )
        .unwrap();
        assert_eq!(resp, Response::Error("hello bob".into()));
        // Multiple sequential calls work.
        let resp = call(
            h.addr,
            &Request::VerifyToken {
                token: faucets_core::auth::SessionToken("t".into()),
            },
        )
        .unwrap();
        assert_eq!(resp, Response::Ok);
        h.shutdown();
    }

    #[test]
    fn shutdown_stops_accepting() {
        let h = serve("127.0.0.1:0", "stop", |_| Response::Ok).unwrap();
        let addr = h.addr;
        h.shutdown();
        // Give the OS a beat, then the port should refuse or time out.
        std::thread::sleep(Duration::from_millis(20));
        let r = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
        // Either refused outright or accepted by a lingering backlog that
        // never answers; both count as "not serving".
        if let Ok(mut s) = r {
            let _ = crate::proto::write_frame(
                &mut s,
                &Envelope::wrap(Request::VerifyToken {
                    token: faucets_core::auth::SessionToken("x".into()),
                }),
            );
            s.set_read_timeout(Some(Duration::from_millis(400)))
                .unwrap();
            assert!(crate::proto::read_frame::<_, Envelope<Response>>(&mut s)
                .map(|o| o.is_none())
                .unwrap_or(true));
        }
    }

    /// Satellite regression: `kill()` (and drop) must stay prompt with no
    /// throwaway self-connect, even while clients are actively churning
    /// connections — the eventfd wakeup pops the reactor out of
    /// `epoll_wait` regardless of socket traffic.
    #[test]
    fn kill_is_prompt_under_connection_churn() {
        let h = serve("127.0.0.1:0", "churnkill", |_| Response::Ok).unwrap();
        let addr = h.addr;
        let done = Arc::new(AtomicBool::new(false));
        let churners: Vec<_> = (0..4)
            .map(|_| {
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let req = Request::VerifyToken {
                        token: faucets_core::auth::SessionToken("t".into()),
                    };
                    let opts = CallOptions {
                        timeouts: Timeouts::both(Duration::from_millis(300)),
                        connect: Duration::from_millis(300),
                        ..CallOptions::default()
                    };
                    while !done.load(Ordering::Relaxed) {
                        let _ = call_with(addr, &req, &opts);
                    }
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(50));
        let t = Instant::now();
        h.kill();
        let elapsed = t.elapsed();
        done.store(true, Ordering::Relaxed);
        for c in churners {
            c.join().unwrap();
        }
        assert!(
            elapsed < Duration::from_secs(2),
            "kill() under churn took {elapsed:?}"
        );
    }

    /// The reactor's pipelining contract: many request frames written in
    /// one burst on a single connection, replies matched by `request_id`
    /// even when handler latencies force them out of order.
    #[test]
    fn pipelined_frames_match_replies_by_request_id() {
        let h = serve("127.0.0.1:0", "pipeline", |req| match req {
            Request::Login { user, .. } => {
                // Earlier requests sleep longer, so replies tend to come
                // back in reverse order of submission.
                let n: u64 = user.parse().unwrap_or(0);
                std::thread::sleep(Duration::from_millis((16 - n) * 3));
                Response::Error(user)
            }
            _ => Response::Ok,
        })
        .unwrap();
        let mut s = TcpStream::connect(h.addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        const N: u64 = 16;
        let mut burst = Vec::new();
        for i in 0..N {
            let env = Envelope {
                ctx: None,
                deadline_ms: None,
                request_id: Some(1000 + i),
                msg: Request::Login {
                    user: format!("{i}"),
                    password: "p".into(),
                },
            };
            crate::proto::write_frame(&mut burst, &env).unwrap();
        }
        s.write_all(&burst).unwrap();
        let mut seen = std::collections::HashMap::new();
        for _ in 0..N {
            let reply: Envelope<Response> = crate::proto::read_frame(&mut s)
                .unwrap()
                .expect("a reply per request");
            let id = reply.request_id.expect("server echoes the request id");
            let Response::Error(user) = reply.msg else {
                panic!("echo handler answers Error(user)")
            };
            seen.insert(id, user);
        }
        for i in 0..N {
            assert_eq!(
                seen.get(&(1000 + i)).map(String::as_str),
                Some(format!("{i}").as_str()),
                "reply for id {} carries its own request's payload",
                1000 + i
            );
        }
        h.shutdown();
    }

    #[test]
    fn backoff_grows_is_capped_and_deterministic() {
        let p = RetryPolicy::standard(9);
        let b1 = p.backoff(1);
        let b2 = p.backoff(2);
        let b3 = p.backoff(3);
        assert!(b1 <= Duration::from_millis(25));
        assert!(b2 <= Duration::from_millis(50));
        assert!(b3 <= Duration::from_millis(100));
        // Jitter shaves at most half.
        assert!(b1 >= Duration::from_millis(12));
        // Cap holds no matter how deep the retry.
        assert!(p.backoff(30) <= Duration::from_millis(200));
        // Deterministic per (seed, attempt).
        assert_eq!(p.backoff(2), RetryPolicy::standard(9).backoff(2));
        assert_ne!(
            RetryPolicy::standard(1).backoff(2),
            RetryPolicy::standard(2).backoff(2),
            "different seeds jitter differently"
        );
    }

    #[test]
    fn retry_rides_out_dropped_frames() {
        // A server whose replies are dropped 60% of the time: a single
        // attempt fails often; four attempts with backoff all but never.
        // Timeouts are generous multiples of what a loopback round-trip
        // needs — the retry *count* below is the assertion, not wall time.
        let plan = Arc::new(FaultPlan::new(
            77,
            FaultConfig {
                drop: 0.6,
                ..FaultConfig::none()
            },
        ));
        let h = serve_with(
            "127.0.0.1:0",
            "lossy",
            ServeOptions {
                timeouts: Timeouts::both(Duration::from_millis(1_000)),
                faults: Some(Arc::clone(&plan)),
                ..ServeOptions::default()
            },
            |_| Response::Ok,
        )
        .unwrap();
        let reg = Arc::new(Registry::new());
        let opts = CallOptions {
            timeouts: Timeouts::both(Duration::from_millis(400)),
            retry: RetryPolicy {
                attempts: 8,
                ..RetryPolicy::standard(5)
            },
            registry: Some(Arc::clone(&reg)),
            ..CallOptions::default()
        };
        for i in 0..5 {
            let r = call_with(
                h.addr,
                &Request::Login {
                    user: format!("u{i}"),
                    password: "p".into(),
                },
                &opts,
            );
            assert!(r.is_ok(), "attempt {i} failed: {r:?}");
        }
        assert!(plan.stats().dropped > 0, "the plan did inject loss");
        // The backoff decisions went through the caller's registry: every
        // dropped reply shows up as a counted retry, none as a failure.
        let snap = reg.snapshot();
        assert!(
            snap.counter_sum("net_call_retries_total", &[("endpoint", "Login")]) > 0,
            "drops at 60% must force at least one counted retry"
        );
        assert!(snap.counter_sum("net_call_attempts_total", &[]) >= 5);
        assert_eq!(snap.counter_sum("net_call_failures_total", &[]), 0);
        h.shutdown();
    }

    #[test]
    fn killed_service_fails_fast_then_caller_times_out() {
        let h = serve("127.0.0.1:0", "victim", |_| Response::Ok).unwrap();
        let addr = h.addr;
        h.kill();
        std::thread::sleep(Duration::from_millis(20));
        let reg = Arc::new(Registry::new());
        let opts = CallOptions {
            timeouts: Timeouts::both(Duration::from_millis(250)),
            connect: Duration::from_millis(250),
            retry: RetryPolicy {
                attempts: 2,
                ..RetryPolicy::standard(1)
            },
            registry: Some(Arc::clone(&reg)),
            ..CallOptions::default()
        };
        let r = call_with(
            addr,
            &Request::VerifyToken {
                token: faucets_core::auth::SessionToken("x".into()),
            },
            &opts,
        );
        assert!(r.is_err(), "a killed service must not answer");
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter_sum("net_call_attempts_total", &[]),
            2,
            "both attempts counted"
        );
        assert_eq!(
            snap.counter_sum("net_call_failures_total", &[]),
            1,
            "exhaustion counted once"
        );
    }

    #[test]
    fn every_service_answers_the_metrics_endpoint() {
        let reg = Arc::new(Registry::new());
        let h = serve_with(
            "127.0.0.1:0",
            "probe",
            ServeOptions {
                registry: Some(Arc::clone(&reg)),
                ..ServeOptions::default()
            },
            |_| Response::Ok,
        )
        .unwrap();
        for _ in 0..3 {
            call(
                h.addr,
                &Request::VerifyToken {
                    token: faucets_core::auth::SessionToken("t".into()),
                },
            )
            .unwrap();
        }
        let Response::Metrics(snap) = call(h.addr, &Request::Metrics).unwrap() else {
            panic!("expected a metrics snapshot")
        };
        assert_eq!(
            snap.counter_sum(
                "net_requests_total",
                &[("service", "probe"), ("endpoint", "VerifyToken")]
            ),
            3,
            "per-endpoint request counter travels over the wire"
        );
        let lat = snap.histogram_sum("net_request_seconds", &[("service", "probe")]);
        assert_eq!(lat.count, 3, "latency histogram recorded every request");
        h.shutdown();
    }

    #[test]
    fn pooled_calls_reuse_one_connection() {
        use crate::pool::{ConnPool, PoolConfig};
        let server_reg = Arc::new(Registry::new());
        let h = serve_with(
            "127.0.0.1:0",
            "pooled",
            ServeOptions {
                registry: Some(Arc::clone(&server_reg)),
                ..ServeOptions::default()
            },
            |_| Response::Ok,
        )
        .unwrap();
        let pool = Arc::new(ConnPool::new("test", PoolConfig::default()));
        let call_reg = Arc::new(Registry::new());
        let opts = CallOptions {
            pool: Some(Arc::clone(&pool)),
            registry: Some(Arc::clone(&call_reg)),
            ..CallOptions::default()
        };
        for _ in 0..10 {
            let r = call_with(
                h.addr,
                &Request::VerifyToken {
                    token: faucets_core::auth::SessionToken("t".into()),
                },
                &opts,
            )
            .unwrap();
            assert_eq!(r, Response::Ok);
        }
        assert_eq!(pool.open_connections(), 1, "one warm socket did all ten");
        let snap = call_reg.snapshot();
        assert_eq!(snap.counter_sum("net_pool_misses_total", &[]), 1);
        assert_eq!(
            snap.counter_sum("net_pool_hits_total", &[("pool", "test")]),
            9
        );
        assert_eq!(
            server_reg
                .snapshot()
                .counter_sum("net_conns_accepted_total", &[("service", "pooled")]),
            1,
            "the server accepted exactly one connection"
        );
        h.shutdown();
    }

    #[test]
    fn mux_calls_share_one_connection_and_batch_pipelines() {
        use crate::pool::{MuxConfig, MuxPool};
        let server_reg = Arc::new(Registry::new());
        let h = serve_with(
            "127.0.0.1:0",
            "muxed",
            ServeOptions {
                registry: Some(Arc::clone(&server_reg)),
                ..ServeOptions::default()
            },
            |req| match req {
                Request::Login { user, .. } => Response::Error(user),
                _ => Response::Ok,
            },
        )
        .unwrap();
        let mux = Arc::new(MuxPool::new(
            "test-mux",
            MuxConfig {
                conns_per_peer: 1,
                ..MuxConfig::default()
            },
        ));
        let opts = CallOptions {
            mux: Some(Arc::clone(&mux)),
            ..CallOptions::default()
        };
        // Sequential calls ride the same shared socket.
        for _ in 0..5 {
            let r = call_with(
                h.addr,
                &Request::VerifyToken {
                    token: faucets_core::auth::SessionToken("t".into()),
                },
                &opts,
            )
            .unwrap();
            assert_eq!(r, Response::Ok);
        }
        // A batch pipelines on it too, results index-aligned.
        let reqs: Vec<Request> = (0..8)
            .map(|i| Request::Login {
                user: format!("u{i}"),
                password: "p".into(),
            })
            .collect();
        let results = call_batch(h.addr, &reqs, &opts);
        assert_eq!(results.len(), 8);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(
                *r.as_ref().expect("batch slot succeeded"),
                Response::Error(format!("u{i}")),
                "slot {i} got its own reply"
            );
        }
        assert_eq!(
            server_reg
                .snapshot()
                .counter_sum("net_conns_accepted_total", &[("service", "muxed")]),
            1,
            "five calls and an 8-deep batch all shared one connection"
        );
        assert_eq!(mux.open_connections(), 1);
        h.shutdown();
    }

    #[test]
    fn call_many_aligns_results_and_joins_the_trace() {
        let ok = serve("127.0.0.1:0", "fan-ok", |_| Response::Ok).unwrap();
        let err = serve("127.0.0.1:0", "fan-err", |_| Response::Error("no".into())).unwrap();
        let addrs = [ok.addr, err.addr, ok.addr];
        let req = Request::VerifyToken {
            token: faucets_core::auth::SessionToken("t".into()),
        };
        let trace_id;
        let results;
        {
            let root = trace::span("client", "solicit");
            trace_id = root.trace();
            results = call_many(&addrs, &req, &CallOptions::default(), 2);
        }
        assert_eq!(results.len(), 3);
        assert_eq!(*results[0].as_ref().unwrap(), Response::Ok);
        assert_eq!(*results[1].as_ref().unwrap(), Response::Error("no".into()));
        assert_eq!(*results[2].as_ref().unwrap(), Response::Ok);
        let spans = trace::spans_for(trace_id);
        assert!(
            spans.iter().any(|s| s.service == "fan-ok"),
            "fan-out worker threads carried the caller's trace: {spans:?}"
        );
        ok.shutdown();
        err.shutdown();
    }

    #[test]
    fn server_spans_parent_under_the_caller() {
        let h = serve("127.0.0.1:0", "traced", |_| Response::Ok).unwrap();
        let trace_id;
        {
            let root = trace::span("client", "negotiate");
            trace_id = root.trace();
            call(
                h.addr,
                &Request::VerifyToken {
                    token: faucets_core::auth::SessionToken("t".into()),
                },
            )
            .unwrap();
        }
        let spans = trace::spans_for(trace_id);
        assert!(
            spans
                .iter()
                .any(|s| s.service == "traced" && s.name == "VerifyToken"),
            "server span joined the caller's trace: {spans:?}"
        );
        h.shutdown();
    }
}
