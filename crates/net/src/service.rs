//! Shared TCP-service plumbing: a blocking accept loop feeding a bounded
//! worker pool (clean, prompt shutdown), configurable read/write timeouts,
//! bounded retry with exponential backoff, pooled client connections,
//! batched fan-out, optional fault injection, and the wall-clock →
//! simulation-clock mapping live services run on.

use crate::fault::FaultPlan;
use crate::overload::{BreakerSet, ServiceLimits};
use crate::pool::ConnPool;
use crate::proto::{
    is_disconnect_error, read_frame_with, write_frame_with, Envelope, ProtoError, Request, Response,
};
use faucets_sim::time::SimTime;
use faucets_telemetry::metrics::{global, Registry};
use faucets_telemetry::trace::{self, TraceContext};
use faucets_telemetry::TelemetryClock;
use parking_lot::Mutex;
use serde::Serialize;
use std::cell::Cell;
use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The `retry_after_ms` hint attached to serve-side overload rejections.
const OVERLOAD_RETRY_HINT_MS: u64 = 25;

thread_local! {
    static REQUEST_DEADLINE: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// The propagated deadline of the request the current thread is serving,
/// if the caller stamped one into its [`Envelope`]. Handlers (and anything
/// they call, like the FD's payoff gate) use this to drop work the moment
/// it becomes doomed, without any change to the handler signature.
pub fn request_deadline() -> Option<Instant> {
    REQUEST_DEADLINE.with(|d| d.get())
}

/// Clears the thread's request deadline on drop, so connection threads
/// never leak one request's deadline into the next.
struct DeadlineGuard;

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        REQUEST_DEADLINE.with(|d| d.set(None));
    }
}

fn set_request_deadline(deadline: Option<Instant>) -> DeadlineGuard {
    REQUEST_DEADLINE.with(|d| d.set(deadline));
    DeadlineGuard
}

/// Maps wall-clock time to `SimTime` for live services, with an optional
/// speedup so demonstrations can run "supercomputer hours" in test seconds.
#[derive(Debug, Clone)]
pub struct Clock {
    start: Instant,
    speedup: f64,
}

impl Clock {
    /// A clock where one wall second is `speedup` simulated seconds.
    pub fn new(speedup: f64) -> Self {
        assert!(speedup > 0.0, "speedup must be positive");
        Clock {
            start: Instant::now(),
            speedup,
        }
    }

    /// Real time (speedup 1).
    pub fn realtime() -> Self {
        Clock::new(1.0)
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        SimTime::from_secs_f64(self.start.elapsed().as_secs_f64() * self.speedup)
    }

    /// How many simulated seconds pass per wall second.
    pub fn speedup(&self) -> f64 {
        self.speedup
    }

    /// Wall-clock duration until the simulated instant `at` (zero if `at`
    /// is already past). This is the open-loop load harness's conversion:
    /// arrival schedules are generated in sim time so QoS deadlines
    /// anchor correctly, then fired at `start + at / speedup` on the wall.
    pub fn wall_until(&self, at: SimTime) -> Duration {
        let target = at.as_secs_f64() / self.speedup;
        let elapsed = self.start.elapsed().as_secs_f64();
        Duration::from_secs_f64((target - elapsed).max(0.0))
    }
}

/// Socket deadlines applied to every connection, in both directions. The
/// seed system hard-coded a 10 s read timeout and no write timeout at all;
/// a stalled peer could wedge a writer forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timeouts {
    /// How long a read may block before the connection is abandoned.
    pub read: Duration,
    /// How long a write may block before the connection is abandoned.
    pub write: Duration,
}

impl Timeouts {
    /// Uniform deadline in both directions.
    pub fn both(d: Duration) -> Self {
        Timeouts { read: d, write: d }
    }

    fn apply(&self, stream: &TcpStream) -> io::Result<()> {
        stream.set_read_timeout(Some(self.read))?;
        stream.set_write_timeout(Some(self.write))
    }
}

impl Default for Timeouts {
    fn default() -> Self {
        Timeouts::both(Duration::from_secs(10))
    }
}

/// Bounded retry with exponential backoff and deterministic jitter.
///
/// The delay before attempt *n* (1-based over retries) is
/// `base · 2^(n-1)`, capped at `cap`, then scaled by a seeded jitter
/// factor in `[1 − jitter, 1]` — deterministic per (seed, attempt) so
/// fault-injection runs reproduce exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (≥ 1).
    pub attempts: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Ceiling on any single backoff.
    pub cap: Duration,
    /// Jitter fraction in `[0, 1]`: how much of the backoff may be shaved.
    pub jitter: f64,
    /// Seed for the jitter sequence.
    pub seed: u64,
}

impl RetryPolicy {
    /// A single attempt — no retries (the seed system's behaviour).
    pub fn none() -> Self {
        RetryPolicy {
            attempts: 1,
            base: Duration::ZERO,
            cap: Duration::ZERO,
            jitter: 0.0,
            seed: 0,
        }
    }

    /// Four attempts, 25 ms → 200 ms exponential backoff, half jitter.
    pub fn standard(seed: u64) -> Self {
        RetryPolicy {
            attempts: 4,
            base: Duration::from_millis(25),
            cap: Duration::from_millis(200),
            jitter: 0.5,
            seed,
        }
    }

    /// The backoff to sleep before retry number `retry` (1-based).
    pub fn backoff(&self, retry: u32) -> Duration {
        let exp = self.base.saturating_mul(1u32 << (retry - 1).min(16));
        let exp = exp.min(self.cap.max(self.base));
        // SplitMix64-style mix for a deterministic jitter draw.
        let mut z = self.seed ^ (retry as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let u = ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64;
        let scale = 1.0 - self.jitter.clamp(0.0, 1.0) * u;
        Duration::from_secs_f64(exp.as_secs_f64() * scale)
    }
}

/// Options for [`serve_with`].
#[derive(Clone)]
pub struct ServeOptions {
    /// Per-connection socket deadlines.
    pub timeouts: Timeouts,
    /// Fault injection applied to this service's traffic.
    pub faults: Option<Arc<FaultPlan>>,
    /// Metric registry for per-endpoint counters/latency and the `Metrics`
    /// endpoint. `None` uses the process-global registry.
    pub registry: Option<Arc<Registry>>,
    /// Per-endpoint inflight bounds: a request over the bound is answered
    /// [`Response::Overloaded`] immediately instead of queueing without
    /// limit. The default bound is generous (see
    /// [`ServiceLimits::default`]); retune at runtime through the shared
    /// handle, or use [`ServiceLimits::unlimited`] for the seed behaviour.
    pub limits: ServiceLimits,
    /// Connection-handling worker threads per service (default 32). The
    /// seed spawned one thread per accepted connection without bound; now
    /// at most `workers` connections are served concurrently and further
    /// accepts wait in a bounded hand-off queue (then the kernel backlog).
    /// With pooled clients ([`CallOptions::pool`]) each client holds one
    /// connection, so this is effectively a concurrent-peer bound, while
    /// per-request admission control stays with
    /// [`ServeOptions::limits`].
    pub workers: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            timeouts: Timeouts::default(),
            faults: None,
            registry: None,
            limits: ServiceLimits::default(),
            workers: 32,
        }
    }
}

/// Options for [`call_with`].
#[derive(Clone)]
pub struct CallOptions {
    /// Socket deadlines for the round-trip.
    pub timeouts: Timeouts,
    /// Connection-establishment deadline.
    pub connect: Duration,
    /// Transport-failure retry policy (server `Response::Error`s are
    /// answers, not failures, and are never retried here).
    pub retry: RetryPolicy,
    /// Fault injection applied to this caller's traffic.
    pub faults: Option<Arc<FaultPlan>>,
    /// Metric registry for the caller-side attempt/retry/failure counters.
    /// `None` uses the process-global registry.
    pub registry: Option<Arc<Registry>>,
    /// Total wall-clock budget for the call, retries and backoff included.
    /// The remaining budget is stamped into the request's [`Envelope`]
    /// (`deadline_ms`) so the server can shed the work once it is doomed,
    /// and no retry backoff is allowed to sleep past it. `None` (the
    /// default) keeps the pre-deadline behaviour.
    pub deadline: Option<Duration>,
    /// Per-peer circuit breakers shared across calls: after enough
    /// consecutive transport failures the peer's breaker opens and calls
    /// fast-fail locally (typed [`ProtoError::Overloaded`]) until a
    /// cooldown probe succeeds. `None` (the default) disables breaking.
    pub breakers: Option<Arc<BreakerSet>>,
    /// Persistent connection pool shared across calls: each round-trip
    /// checks a health-checked warm socket out of the pool instead of
    /// opening a fresh TCP connection, and returns it afterwards. Any
    /// failure poisons the socket (closed, never reused), so retries,
    /// deadlines, breakers, and fault injection behave exactly as on
    /// per-call connections. `None` (the default) keeps the seed's
    /// connection-per-call behaviour.
    pub pool: Option<Arc<ConnPool>>,
}

impl Default for CallOptions {
    fn default() -> Self {
        CallOptions {
            timeouts: Timeouts::default(),
            connect: Duration::from_secs(5),
            retry: RetryPolicy::none(),
            faults: None,
            registry: None,
            deadline: None,
            breakers: None,
            pool: None,
        }
    }
}

/// Resolve an optional registry override to a usable reference.
fn effective(registry: &Option<Arc<Registry>>) -> &Registry {
    registry.as_deref().unwrap_or_else(|| global())
}

/// Live connections of one service, as resettable duplicate handles. On
/// shutdown every registered socket is `shutdown(Both)`, which pops any
/// worker blocked in a read immediately — that is what makes shutdown
/// prompt now that reads block instead of polling.
#[derive(Default)]
struct ConnTable {
    next: AtomicU64,
    conns: Mutex<HashMap<u64, TcpStream>>,
}

impl ConnTable {
    fn insert(&self, stream: &TcpStream) -> u64 {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        if let Ok(dup) = stream.try_clone() {
            self.conns.lock().insert(id, dup);
        }
        id
    }

    fn remove(&self, id: u64) {
        self.conns.lock().remove(&id);
    }

    fn shutdown_all(&self) {
        for conn in self.conns.lock().values() {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }
}

/// A running TCP service; dropping the handle stops it.
pub struct ServiceHandle {
    /// The bound address (useful with port 0).
    pub addr: SocketAddr,
    stop: Arc<AtomicBool>,
    conns: Arc<ConnTable>,
    join: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServiceHandle {
    /// Request shutdown and wait for the accept loop and every connection
    /// worker to exit.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    /// Simulate a crash: stop serving immediately. No deregistration, no
    /// goodbye to peers — in-flight callers see connection errors or
    /// timeouts, exactly as if the process died. (Mechanically identical
    /// to [`ServiceHandle::shutdown`]; the crash semantics come from the
    /// owner discarding state that a graceful path would have persisted.)
    pub fn kill(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in accept(); a throwaway connect pops it
        // so it can observe the stop flag. Kicking live connections loose
        // unblocks any worker mid-read.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        self.conns.shutdown_all();
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
        // The accept thread dropped its sender; workers drain whatever was
        // queued (dropping it under the stop flag) and exit. A second
        // sweep catches connections accepted during the first.
        self.conns.shutdown_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Serve `handler` on `addr` ("host:0" picks a free port) with default
/// options. Each connection is handled frame-by-frame on its own thread;
/// the handler maps requests to responses.
pub fn serve<F>(addr: &str, name: &'static str, handler: F) -> io::Result<ServiceHandle>
where
    F: Fn(Request) -> Response + Send + Sync + 'static,
{
    serve_with(addr, name, ServeOptions::default(), handler)
}

/// [`serve`], with explicit timeouts and optional fault injection.
///
/// The accept loop *blocks* (zero idle wakeups; the seed polled a
/// nonblocking listener ~500 times a second) and hands each accepted
/// connection to one of [`ServeOptions::workers`] long-lived worker
/// threads over a bounded channel — the per-service thread count no longer
/// grows with connection churn. Shutdown is prompt: a throwaway connect
/// pops the blocking accept, and every live connection is shut down so no
/// worker stays parked in a read.
pub fn serve_with<F>(
    addr: &str,
    name: &'static str,
    opts: ServeOptions,
    handler: F,
) -> io::Result<ServiceHandle>
where
    F: Fn(Request) -> Response + Send + Sync + 'static,
{
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let handler = Arc::new(handler);
    let conns = Arc::new(ConnTable::default());
    let worker_count = opts.workers.max(1);
    let (tx, rx) = crossbeam::channel::bounded::<TcpStream>(worker_count);

    let mut workers = Vec::with_capacity(worker_count);
    for i in 0..worker_count {
        let rx = rx.clone();
        let handler = Arc::clone(&handler);
        let opts = opts.clone();
        let stop = Arc::clone(&stop);
        let conns = Arc::clone(&conns);
        workers.push(
            std::thread::Builder::new()
                .name(format!("faucets-{name}-w{i}"))
                .spawn(move || {
                    while let Ok(stream) = rx.recv() {
                        let id = conns.insert(&stream);
                        let open =
                            effective(&opts.registry).gauge("net_open_conns", &[("service", name)]);
                        open.add(1.0);
                        handle_conn(stream, &*handler, &opts, name, &stop);
                        open.add(-1.0);
                        conns.remove(id);
                    }
                })?,
        );
    }
    drop(rx);

    let stop2 = Arc::clone(&stop);
    let registry = opts.registry.clone();
    let join = std::thread::Builder::new()
        .name(format!("faucets-{name}"))
        .spawn(move || {
            loop {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let stream = match listener.accept() {
                    Ok((stream, _)) => stream,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                };
                // The stream may be the shutdown wake-up connect; checking
                // after accept keeps shutdown prompt either way.
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                effective(&registry)
                    .counter("net_conns_accepted_total", &[("service", name)])
                    .inc();
                if tx.send(stream).is_err() {
                    break;
                }
            }
            // Dropping the sender ends every worker's recv loop once the
            // queue drains.
            drop(tx);
        })?;

    Ok(ServiceHandle {
        addr: local,
        stop,
        conns,
        join: Some(join),
        workers,
    })
}

fn handle_conn<F>(
    mut stream: TcpStream,
    handler: &F,
    opts: &ServeOptions,
    name: &'static str,
    stop: &AtomicBool,
) where
    F: Fn(Request) -> Response + Send + Sync + 'static,
{
    let _ = stream.set_nodelay(true);
    if opts.timeouts.apply(&stream).is_err() {
        return;
    }
    let faults = opts.faults.as_deref();
    loop {
        // Connections queued behind a shutdown (or kicked loose by it) are
        // dropped here instead of being served one last frame.
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(Some(env)) = read_frame_with::<_, Envelope<Request>>(&mut stream, None) else {
            break;
        };
        let Envelope {
            ctx,
            deadline_ms,
            msg: req,
        } = env;
        let reg = effective(&opts.registry);
        // The serve layer answers metrics queries itself, so every service
        // exposes the endpoint without touching its handler. Metrics are
        // exempt from admission control: observability must keep working
        // precisely when the service is drowning.
        if matches!(req, Request::Metrics) {
            let resp = Response::Metrics(reg.snapshot());
            let reply = Envelope {
                ctx,
                deadline_ms: None,
                msg: resp,
            };
            if write_frame_with(&mut stream, &reply, faults).is_err() {
                break;
            }
            continue;
        }
        let endpoint = req.endpoint();
        let labels = [("service", name), ("endpoint", endpoint)];
        reg.counter("net_requests_total", &labels).inc();
        // Admission control: fault-injected rejections share the real
        // shed path, then the per-endpoint inflight bound applies. Over
        // the bound we fast-fail with a typed Overloaded answer instead
        // of queueing without limit.
        let injected = faults.is_some_and(|p| p.inject_overload(endpoint.as_bytes()));
        let permit = if injected {
            None
        } else {
            opts.limits.try_enter(endpoint)
        };
        let Some(_permit) = permit else {
            reg.counter("net_overload_rejections_total", &labels).inc();
            let reply = Envelope {
                ctx,
                deadline_ms: None,
                msg: Response::Overloaded {
                    retry_after_ms: OVERLOAD_RETRY_HINT_MS,
                },
            };
            if write_frame_with(&mut stream, &reply, faults).is_err() {
                break;
            }
            continue;
        };
        reg.gauge("net_inflight", &labels)
            .set(opts.limits.inflight(endpoint) as f64);
        // Doomed-work elimination: a request whose propagated deadline
        // already expired in flight is shed before the handler spends
        // anything on it — the caller has abandoned the answer.
        if deadline_ms == Some(0) {
            reg.counter("net_deadline_sheds_total", &labels).inc();
            let reply = Envelope {
                ctx,
                deadline_ms: None,
                msg: Response::Overloaded { retry_after_ms: 0 },
            };
            if write_frame_with(&mut stream, &reply, faults).is_err() {
                break;
            }
            continue;
        }
        let _deadline_guard =
            set_request_deadline(deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms)));
        // The server span becomes this thread's current context, so any
        // outbound call the handler makes rides the same trace.
        let mut span = trace::server_span(ctx, name, endpoint);
        let sw = TelemetryClock::wall().stopwatch();
        let resp = handler(req);
        sw.observe(&reg.histogram("net_request_seconds", &labels));
        if matches!(resp, Response::Error(_)) {
            reg.counter("net_errors_total", &labels).inc();
            span.fail();
        }
        let reply_ctx = Some(span.ctx());
        drop(span);
        if write_frame_with(
            &mut stream,
            &Envelope {
                ctx: reply_ctx,
                deadline_ms: None,
                msg: resp,
            },
            faults,
        )
        .is_err()
        {
            break;
        }
    }
}

/// One round-trip request against a Faucets service, default options.
pub fn call(addr: SocketAddr, req: &Request) -> io::Result<Response> {
    call_with(addr, req, &CallOptions::default())
}

/// [`call`], with explicit timeouts, bounded retry, and optional fault
/// injection. Transport failures (connect, send, receive) are retried up
/// to the policy's budget with exponential backoff + jitter; a received
/// [`Response`] — including `Response::Error` — always returns.
pub fn call_with(addr: SocketAddr, req: &Request, opts: &CallOptions) -> io::Result<Response> {
    let reg = effective(&opts.registry);
    let labels = [("endpoint", req.endpoint())];
    let deadline = opts.deadline.map(|d| Instant::now() + d);
    let attempts = opts.retry.attempts.max(1);
    let mut last_err: Option<io::Error> = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            // Retry wall-clock is capped by the caller's deadline: a
            // backoff that would sleep into (or past) it can only produce
            // an answer the caller has already abandoned.
            let backoff = opts.retry.backoff(attempt);
            if deadline.is_some_and(|d| Instant::now() + backoff >= d) {
                reg.counter("net_call_deadline_exhausted_total", &labels)
                    .inc();
                break;
            }
            // Every backoff decision is counted, so chaos tests can assert
            // "the caller retried N times" instead of sleeping and hoping.
            reg.counter("net_call_retries_total", &labels).inc();
            std::thread::sleep(backoff);
        }
        // An open breaker fast-fails locally — no connect, no retry storm
        // against a peer that is dead or drowning.
        if let Some(breakers) = &opts.breakers {
            if !breakers.allow(addr, reg) {
                reg.counter("net_breaker_fastfails_total", &labels).inc();
                return Err(ProtoError::Overloaded {
                    retry_after_ms: breakers.config().cooldown.as_millis() as u64,
                }
                .into());
            }
        }
        reg.counter("net_call_attempts_total", &labels).inc();
        match call_once(addr, req, opts, deadline) {
            Ok(Response::Overloaded { retry_after_ms }) => {
                // The peer answered — it is alive, just shedding — so the
                // breaker records a success while the caller gets a typed
                // overload error. Retrying here would feed the storm.
                if let Some(breakers) = &opts.breakers {
                    breakers.on_success(addr, reg);
                }
                reg.counter("net_call_overloaded_total", &labels).inc();
                return Err(ProtoError::Overloaded { retry_after_ms }.into());
            }
            Ok(resp) => {
                if let Some(breakers) = &opts.breakers {
                    breakers.on_success(addr, reg);
                }
                return Ok(resp);
            }
            Err(e) => {
                if let Some(breakers) = &opts.breakers {
                    breakers.on_failure(addr, reg);
                }
                last_err = Some(e);
            }
        }
    }
    reg.counter("net_call_failures_total", &labels).inc();
    Err(last_err.unwrap_or_else(|| io::Error::other("no attempts made")))
}

/// Borrowing twin of [`Envelope`] so the send path never clones the
/// request just to attach a context (field names must match `Envelope`).
#[derive(Serialize)]
struct EnvelopeRef<'a, T> {
    ctx: Option<TraceContext>,
    #[serde(skip_serializing_if = "Option::is_none")]
    deadline_ms: Option<u64>,
    msg: &'a T,
}

/// One request/response exchange on an established stream.
fn round_trip(
    stream: &mut TcpStream,
    req: &Request,
    opts: &CallOptions,
    deadline: Option<Instant>,
) -> io::Result<Response> {
    let faults = opts.faults.as_deref();
    let env = EnvelopeRef {
        ctx: trace::current(),
        deadline_ms: deadline
            .map(|d| d.saturating_duration_since(Instant::now()).as_millis() as u64),
        msg: req,
    };
    write_frame_with(stream, &env, faults).map_err(io::Error::from)?;
    read_frame_with::<_, Envelope<Response>>(stream, None)
        .map_err(io::Error::from)?
        .map(|e| e.msg)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before reply",
            )
        })
}

fn call_once(
    addr: SocketAddr,
    req: &Request,
    opts: &CallOptions,
    deadline: Option<Instant>,
) -> io::Result<Response> {
    let Some(pool) = &opts.pool else {
        // Seed behaviour: one connection per call.
        let mut stream = TcpStream::connect_timeout(&addr, opts.connect)?;
        stream.set_nodelay(true)?;
        opts.timeouts.apply(&stream)?;
        return round_trip(&mut stream, req, opts, deadline);
    };
    let reg = effective(&opts.registry);
    let mut conn = pool.checkout(addr, opts.connect, reg)?;
    conn.stream().set_nodelay(true)?;
    opts.timeouts.apply(conn.stream())?;
    let reused = conn.reused();
    match round_trip(conn.stream(), req, opts, deadline) {
        Ok(resp) => {
            conn.give_back(reg);
            Ok(resp)
        }
        Err(e) => {
            // Any failure poisons the socket: after a fault or timeout the
            // stream may hold half a frame, and returning it would pay the
            // next caller this caller's bytes.
            conn.poison(reg);
            // A *reused* socket that died on first use usually went stale
            // between the health check and the write (peer restarted or
            // reaped it while idle). One immediate retry on a fresh
            // connection keeps that invisible, without consuming the
            // caller's retry budget — and only for disconnects, never for
            // timeouts, where the request may still be running remotely.
            if !(reused && is_disconnect_error(&e)) {
                return Err(e);
            }
            reg.counter("net_pool_stale_retries_total", &[("pool", pool.name())])
                .inc();
            let mut conn = pool.checkout_fresh(addr, opts.connect, reg)?;
            conn.stream().set_nodelay(true)?;
            opts.timeouts.apply(conn.stream())?;
            match round_trip(conn.stream(), req, opts, deadline) {
                Ok(resp) => {
                    conn.give_back(reg);
                    Ok(resp)
                }
                Err(e) => {
                    conn.poison(reg);
                    Err(e)
                }
            }
        }
    }
}

/// Fan one request out to many peers concurrently over at most
/// `max_concurrency` threads, each call going through [`call_with`] with
/// the full retry/breaker/deadline/pool machinery. The result vector is
/// index-aligned with `addrs`, and every worker runs under the calling
/// thread's trace context, so the fan-out's frames all join the caller's
/// trace — this is the client's one-round bid solicitation (§2.2) over
/// warm pooled connections.
pub fn call_many(
    addrs: &[SocketAddr],
    req: &Request,
    opts: &CallOptions,
    max_concurrency: usize,
) -> Vec<io::Result<Response>> {
    let n = addrs.len();
    if n == 0 {
        return vec![];
    }
    let ctx = trace::current();
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<io::Result<Response>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..max_concurrency.clamp(1, n) {
            scope.spawn(|| {
                trace::propagate(ctx, || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    *slots[i].lock() = Some(call_with(addrs[i], req, opts));
                })
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|| Err(io::Error::other("fan-out worker vanished")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultConfig, FaultPlan};

    #[test]
    fn clock_advances_with_speedup() {
        // 40 ms of wall sleep at 1000x is ≥ 40 sim seconds; the wide upper
        // bound gives a heavily loaded CI machine plenty of headroom.
        let c = Clock::new(1000.0);
        std::thread::sleep(Duration::from_millis(40));
        let t = c.now();
        assert!(t >= SimTime::from_secs_f64(20.0), "got {t}");
        assert!(t <= SimTime::from_secs_f64(10_000.0), "got {t}");
    }

    #[test]
    fn echo_service_round_trip() {
        let h = serve("127.0.0.1:0", "echo", |req| match req {
            Request::Login { user, .. } => Response::Error(format!("hello {user}")),
            _ => Response::Ok,
        })
        .unwrap();
        let resp = call(
            h.addr,
            &Request::Login {
                user: "bob".into(),
                password: "x".into(),
            },
        )
        .unwrap();
        assert_eq!(resp, Response::Error("hello bob".into()));
        // Multiple sequential calls work.
        let resp = call(
            h.addr,
            &Request::VerifyToken {
                token: faucets_core::auth::SessionToken("t".into()),
            },
        )
        .unwrap();
        assert_eq!(resp, Response::Ok);
        h.shutdown();
    }

    #[test]
    fn shutdown_stops_accepting() {
        let h = serve("127.0.0.1:0", "stop", |_| Response::Ok).unwrap();
        let addr = h.addr;
        h.shutdown();
        // Give the OS a beat, then the port should refuse or time out.
        std::thread::sleep(Duration::from_millis(20));
        let r = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
        // Either refused outright or accepted by a lingering backlog that
        // never answers; both count as "not serving".
        if let Ok(mut s) = r {
            let _ = crate::proto::write_frame(
                &mut s,
                &Envelope::wrap(Request::VerifyToken {
                    token: faucets_core::auth::SessionToken("x".into()),
                }),
            );
            s.set_read_timeout(Some(Duration::from_millis(400)))
                .unwrap();
            assert!(crate::proto::read_frame::<_, Envelope<Response>>(&mut s)
                .map(|o| o.is_none())
                .unwrap_or(true));
        }
    }

    #[test]
    fn backoff_grows_is_capped_and_deterministic() {
        let p = RetryPolicy::standard(9);
        let b1 = p.backoff(1);
        let b2 = p.backoff(2);
        let b3 = p.backoff(3);
        assert!(b1 <= Duration::from_millis(25));
        assert!(b2 <= Duration::from_millis(50));
        assert!(b3 <= Duration::from_millis(100));
        // Jitter shaves at most half.
        assert!(b1 >= Duration::from_millis(12));
        // Cap holds no matter how deep the retry.
        assert!(p.backoff(30) <= Duration::from_millis(200));
        // Deterministic per (seed, attempt).
        assert_eq!(p.backoff(2), RetryPolicy::standard(9).backoff(2));
        assert_ne!(
            RetryPolicy::standard(1).backoff(2),
            RetryPolicy::standard(2).backoff(2),
            "different seeds jitter differently"
        );
    }

    #[test]
    fn retry_rides_out_dropped_frames() {
        // A server whose replies are dropped 60% of the time: a single
        // attempt fails often; four attempts with backoff all but never.
        // Timeouts are generous multiples of what a loopback round-trip
        // needs — the retry *count* below is the assertion, not wall time.
        let plan = Arc::new(FaultPlan::new(
            77,
            FaultConfig {
                drop: 0.6,
                ..FaultConfig::none()
            },
        ));
        let h = serve_with(
            "127.0.0.1:0",
            "lossy",
            ServeOptions {
                timeouts: Timeouts::both(Duration::from_millis(1_000)),
                faults: Some(Arc::clone(&plan)),
                ..ServeOptions::default()
            },
            |_| Response::Ok,
        )
        .unwrap();
        let reg = Arc::new(Registry::new());
        let opts = CallOptions {
            timeouts: Timeouts::both(Duration::from_millis(400)),
            retry: RetryPolicy {
                attempts: 8,
                ..RetryPolicy::standard(5)
            },
            registry: Some(Arc::clone(&reg)),
            ..CallOptions::default()
        };
        for i in 0..5 {
            let r = call_with(
                h.addr,
                &Request::Login {
                    user: format!("u{i}"),
                    password: "p".into(),
                },
                &opts,
            );
            assert!(r.is_ok(), "attempt {i} failed: {r:?}");
        }
        assert!(plan.stats().dropped > 0, "the plan did inject loss");
        // The backoff decisions went through the caller's registry: every
        // dropped reply shows up as a counted retry, none as a failure.
        let snap = reg.snapshot();
        assert!(
            snap.counter_sum("net_call_retries_total", &[("endpoint", "Login")]) > 0,
            "drops at 60% must force at least one counted retry"
        );
        assert!(snap.counter_sum("net_call_attempts_total", &[]) >= 5);
        assert_eq!(snap.counter_sum("net_call_failures_total", &[]), 0);
        h.shutdown();
    }

    #[test]
    fn killed_service_fails_fast_then_caller_times_out() {
        let h = serve("127.0.0.1:0", "victim", |_| Response::Ok).unwrap();
        let addr = h.addr;
        h.kill();
        std::thread::sleep(Duration::from_millis(20));
        let reg = Arc::new(Registry::new());
        let opts = CallOptions {
            timeouts: Timeouts::both(Duration::from_millis(250)),
            connect: Duration::from_millis(250),
            retry: RetryPolicy {
                attempts: 2,
                ..RetryPolicy::standard(1)
            },
            registry: Some(Arc::clone(&reg)),
            ..CallOptions::default()
        };
        let r = call_with(
            addr,
            &Request::VerifyToken {
                token: faucets_core::auth::SessionToken("x".into()),
            },
            &opts,
        );
        assert!(r.is_err(), "a killed service must not answer");
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter_sum("net_call_attempts_total", &[]),
            2,
            "both attempts counted"
        );
        assert_eq!(
            snap.counter_sum("net_call_failures_total", &[]),
            1,
            "exhaustion counted once"
        );
    }

    #[test]
    fn every_service_answers_the_metrics_endpoint() {
        let reg = Arc::new(Registry::new());
        let h = serve_with(
            "127.0.0.1:0",
            "probe",
            ServeOptions {
                registry: Some(Arc::clone(&reg)),
                ..ServeOptions::default()
            },
            |_| Response::Ok,
        )
        .unwrap();
        for _ in 0..3 {
            call(
                h.addr,
                &Request::VerifyToken {
                    token: faucets_core::auth::SessionToken("t".into()),
                },
            )
            .unwrap();
        }
        let Response::Metrics(snap) = call(h.addr, &Request::Metrics).unwrap() else {
            panic!("expected a metrics snapshot")
        };
        assert_eq!(
            snap.counter_sum(
                "net_requests_total",
                &[("service", "probe"), ("endpoint", "VerifyToken")]
            ),
            3,
            "per-endpoint request counter travels over the wire"
        );
        let lat = snap.histogram_sum("net_request_seconds", &[("service", "probe")]);
        assert_eq!(lat.count, 3, "latency histogram recorded every request");
        h.shutdown();
    }

    #[test]
    fn pooled_calls_reuse_one_connection() {
        use crate::pool::{ConnPool, PoolConfig};
        let server_reg = Arc::new(Registry::new());
        let h = serve_with(
            "127.0.0.1:0",
            "pooled",
            ServeOptions {
                registry: Some(Arc::clone(&server_reg)),
                ..ServeOptions::default()
            },
            |_| Response::Ok,
        )
        .unwrap();
        let pool = Arc::new(ConnPool::new("test", PoolConfig::default()));
        let call_reg = Arc::new(Registry::new());
        let opts = CallOptions {
            pool: Some(Arc::clone(&pool)),
            registry: Some(Arc::clone(&call_reg)),
            ..CallOptions::default()
        };
        for _ in 0..10 {
            let r = call_with(
                h.addr,
                &Request::VerifyToken {
                    token: faucets_core::auth::SessionToken("t".into()),
                },
                &opts,
            )
            .unwrap();
            assert_eq!(r, Response::Ok);
        }
        assert_eq!(pool.open_connections(), 1, "one warm socket did all ten");
        let snap = call_reg.snapshot();
        assert_eq!(snap.counter_sum("net_pool_misses_total", &[]), 1);
        assert_eq!(
            snap.counter_sum("net_pool_hits_total", &[("pool", "test")]),
            9
        );
        assert_eq!(
            server_reg
                .snapshot()
                .counter_sum("net_conns_accepted_total", &[("service", "pooled")]),
            1,
            "the server accepted exactly one connection"
        );
        h.shutdown();
    }

    #[test]
    fn call_many_aligns_results_and_joins_the_trace() {
        let ok = serve("127.0.0.1:0", "fan-ok", |_| Response::Ok).unwrap();
        let err = serve("127.0.0.1:0", "fan-err", |_| Response::Error("no".into())).unwrap();
        let addrs = [ok.addr, err.addr, ok.addr];
        let req = Request::VerifyToken {
            token: faucets_core::auth::SessionToken("t".into()),
        };
        let trace_id;
        let results;
        {
            let root = trace::span("client", "solicit");
            trace_id = root.trace();
            results = call_many(&addrs, &req, &CallOptions::default(), 2);
        }
        assert_eq!(results.len(), 3);
        assert_eq!(*results[0].as_ref().unwrap(), Response::Ok);
        assert_eq!(*results[1].as_ref().unwrap(), Response::Error("no".into()));
        assert_eq!(*results[2].as_ref().unwrap(), Response::Ok);
        let spans = trace::spans_for(trace_id);
        assert!(
            spans.iter().any(|s| s.service == "fan-ok"),
            "fan-out worker threads carried the caller's trace: {spans:?}"
        );
        ok.shutdown();
        err.shutdown();
    }

    #[test]
    fn server_spans_parent_under_the_caller() {
        let h = serve("127.0.0.1:0", "traced", |_| Response::Ok).unwrap();
        let trace_id;
        {
            let root = trace::span("client", "negotiate");
            trace_id = root.trace();
            call(
                h.addr,
                &Request::VerifyToken {
                    token: faucets_core::auth::SessionToken("t".into()),
                },
            )
            .unwrap();
        }
        let spans = trace::spans_for(trace_id);
        assert!(
            spans
                .iter()
                .any(|s| s.service == "traced" && s.name == "VerifyToken"),
            "server span joined the caller's trace: {spans:?}"
        );
        h.shutdown();
    }
}
