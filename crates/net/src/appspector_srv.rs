//! The AppSpector server (AS) as a TCP service (§2).
//!
//! Buffers display data from running jobs so any number of authenticated
//! clients can watch simultaneously, holds completed jobs' output files for
//! download, and re-verifies client tokens against the FS before serving
//! anything — the paper's authenticated-monitoring flow.

use crate::pool::{ConnPool, PoolConfig};
use crate::proto::{Request, Response};
use crate::service::{call_with, serve_with, CallOptions, ServeOptions, ServiceHandle};
use faucets_core::appspector::{AppSpector, GridView, OutputFile};
use faucets_core::ids::{JobId, UserId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;
use std::sync::Arc;

struct AsState {
    spector: AppSpector,
    outputs: HashMap<JobId, Vec<(String, Vec<u8>)>>,
}

/// A running AppSpector service.
pub struct AsHandle {
    /// The TCP service.
    pub service: ServiceHandle,
    state: Arc<Mutex<AsState>>,
}

impl AsHandle {
    /// Number of jobs currently monitored (test/tooling hook).
    pub fn job_count(&self) -> usize {
        self.state.lock().spector.job_count()
    }
}

/// Verify `token` with the FS, returning its user. Rides the AppSpector's
/// pooled outbound options: token checks happen on every Watch/Download,
/// so they reuse one warm FS socket instead of reconnecting each time.
fn verify(
    fs: SocketAddr,
    token: &faucets_core::auth::SessionToken,
    opts: &CallOptions,
) -> Result<UserId, String> {
    match call_with(
        fs,
        &Request::VerifyToken {
            token: token.clone(),
        },
        opts,
    ) {
        Ok(Response::Verified { user }) => Ok(user),
        Ok(Response::Error(e)) => Err(e),
        Ok(other) => Err(format!("unexpected FS reply {other:?}")),
        Err(e) => Err(format!("FS unreachable: {e}")),
    }
}

/// Spawn the AppSpector service; `fs` is used to re-verify client tokens.
pub fn spawn_appspector(addr: &str, fs: SocketAddr, buffer_depth: usize) -> io::Result<AsHandle> {
    spawn_appspector_with(addr, fs, buffer_depth, ServeOptions::default())
}

/// [`spawn_appspector`], with explicit timeouts and optional fault
/// injection on the service side.
pub fn spawn_appspector_with(
    addr: &str,
    fs: SocketAddr,
    buffer_depth: usize,
    opts: ServeOptions,
) -> io::Result<AsHandle> {
    let state = Arc::new(Mutex::new(AsState {
        spector: AppSpector::new(buffer_depth),
        outputs: HashMap::new(),
    }));
    let st = Arc::clone(&state);
    // Every outbound call (token re-verification, GridView aggregation)
    // shares one pool of warm sockets to the FS and the FDs.
    let call_opts = CallOptions {
        pool: Some(Arc::new(ConnPool::new("appspector", PoolConfig::default()))),
        ..CallOptions::default()
    };

    let service = serve_with(addr, "appspector", opts, move |req| {
        match req {
            Request::RegisterJob {
                job,
                owner,
                cluster,
            } => {
                st.lock().spector.register_job(job, owner, cluster);
                Response::Ok
            }
            Request::PushSample { job, sample } => match st.lock().spector.push_sample(job, sample)
            {
                Ok(()) => Response::Ok,
                Err(e) => Response::Error(e.to_string()),
            },
            Request::CompleteJob { job, outputs } => {
                let files: Vec<OutputFile> = outputs
                    .iter()
                    .map(|(name, data)| OutputFile {
                        name: name.clone(),
                        size_bytes: data.len() as u64,
                    })
                    .collect();
                let mut s = st.lock();
                match s.spector.complete_job(job, files) {
                    Ok(()) => {
                        s.outputs.insert(job, outputs);
                        Response::Ok
                    }
                    Err(e) => Response::Error(e.to_string()),
                }
            }
            Request::Watch { token, job } => {
                let user = match verify(fs, &token, &call_opts) {
                    Ok(u) => u,
                    Err(e) => return Response::Error(e),
                };
                match st.lock().spector.connect(job, user) {
                    Ok(snap) => Response::Snapshot(snap),
                    Err(e) => Response::Error(e.to_string()),
                }
            }
            Request::Download { token, job, name } => {
                let user = match verify(fs, &token, &call_opts) {
                    Ok(u) => u,
                    Err(e) => return Response::Error(e),
                };
                let s = st.lock();
                // Ownership check through the monitor.
                if let Err(e) = s.spector.connect(job, user) {
                    return Response::Error(e.to_string());
                }
                match s
                    .outputs
                    .get(&job)
                    .and_then(|v| v.iter().find(|(n, _)| n == &name))
                {
                    Some((n, data)) => Response::File {
                        name: n.clone(),
                        data: data.clone(),
                    },
                    None => Response::Error(format!("no output '{name}' for {job}")),
                }
            }
            Request::GridView { token } => {
                if let Err(e) = verify(fs, &token, &call_opts) {
                    return Response::Error(e);
                }
                // Pull the directory and every reachable service's metrics.
                // Per-source snapshots are kept separate, never summed:
                // services colocated in one process share a registry and
                // summing would double-count.
                let mut services = Vec::new();
                let mut clusters = Vec::new();
                if let Ok(Response::Metrics(snap)) = call_with(fs, &Request::Metrics, &call_opts) {
                    services.push(("fs".to_string(), snap));
                }
                if let Ok(Response::Clusters(rows)) =
                    call_with(fs, &Request::ListClusters { token }, &call_opts)
                {
                    clusters = rows;
                }
                for row in &clusters {
                    let Ok(addr) = format!("{}:{}", row.info.fd_addr, row.info.fd_port).parse()
                    else {
                        continue;
                    };
                    if let Ok(Response::Metrics(snap)) =
                        call_with(addr, &Request::Metrics, &call_opts)
                    {
                        services.push((format!("fd:{}", row.info.name), snap));
                    }
                }
                services.push((
                    "appspector".to_string(),
                    faucets_telemetry::global().snapshot(),
                ));
                let jobs_monitored = st.lock().spector.job_count() as u64;
                Response::Grid(Box::new(GridView {
                    at_secs: faucets_telemetry::trace::wall_secs(),
                    clusters,
                    services,
                    jobs_monitored,
                }))
            }
            other => Response::Error(format!("AppSpector cannot handle {other:?}")),
        }
    })?;

    Ok(AsHandle { service, state })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::spawn_fs;
    use crate::service::{call, Clock};
    use faucets_core::appspector::TelemetrySample;
    use faucets_core::ids::ClusterId;
    use faucets_sim::time::SimTime;

    fn setup() -> (
        crate::fs::FsHandle,
        AsHandle,
        faucets_core::auth::SessionToken,
        UserId,
    ) {
        let fs = spawn_fs("127.0.0.1:0", Clock::realtime(), 7).unwrap();
        let aspect = spawn_appspector("127.0.0.1:0", fs.service.addr, 16).unwrap();
        call(
            fs.service.addr,
            &Request::CreateUser {
                user: "a".into(),
                password: "p".into(),
            },
        )
        .unwrap();
        let Response::Session { user, token } = call(
            fs.service.addr,
            &Request::Login {
                user: "a".into(),
                password: "p".into(),
            },
        )
        .unwrap() else {
            panic!()
        };
        (fs, aspect, token, user)
    }

    #[test]
    fn register_push_watch_complete_download() {
        let (_fs, aspect, token, user) = setup();
        let addr = aspect.service.addr;
        call(
            addr,
            &Request::RegisterJob {
                job: JobId(1),
                owner: user,
                cluster: ClusterId(2),
            },
        )
        .unwrap();
        assert_eq!(aspect.job_count(), 1);
        call(
            addr,
            &Request::PushSample {
                job: JobId(1),
                sample: TelemetrySample {
                    at: SimTime::from_secs(1),
                    pes: 8,
                    utilization: 0.9,
                    throughput: 4.2,
                    app_data: "step 1".into(),
                },
            },
        )
        .unwrap();
        let Response::Snapshot(snap) = call(
            addr,
            &Request::Watch {
                token: token.clone(),
                job: JobId(1),
            },
        )
        .unwrap() else {
            panic!("expected snapshot")
        };
        assert_eq!(snap.samples.len(), 1);
        assert!(!snap.completed);

        call(
            addr,
            &Request::CompleteJob {
                job: JobId(1),
                outputs: vec![("out.dat".into(), vec![1, 2, 3])],
            },
        )
        .unwrap();
        let Response::File { data, .. } = call(
            addr,
            &Request::Download {
                token,
                job: JobId(1),
                name: "out.dat".into(),
            },
        )
        .unwrap() else {
            panic!("expected file")
        };
        assert_eq!(data, vec![1, 2, 3]);
    }

    #[test]
    fn grid_view_aggregates_directory_and_metrics() {
        let (fs, aspect, token, _user) = setup();
        let info = faucets_core::directory::ServerInfo {
            cluster: ClusterId(3),
            name: "lemieux".into(),
            total_pes: 128,
            mem_per_pe_mb: 2048,
            cpu_type: "power4".into(),
            flops_per_pe_sec: 2.0,
            fd_addr: "127.0.0.1".into(),
            fd_port: 1, // nothing listens here; the FD snapshot is skipped
            replicas: vec![],
        };
        call(
            fs.service.addr,
            &Request::RegisterCluster {
                info,
                apps: vec!["namd".into()],
            },
        )
        .unwrap();

        let Response::Grid(view) = call(aspect.service.addr, &Request::GridView { token }).unwrap()
        else {
            panic!("expected grid view")
        };
        assert_eq!(view.clusters.len(), 1);
        assert_eq!(view.clusters[0].info.name, "lemieux");
        let names: Vec<&str> = view.services.iter().map(|(n, _)| n.as_str()).collect();
        assert!(
            names.contains(&"fs") && names.contains(&"appspector"),
            "got {names:?}"
        );
        // The FS snapshot has seen at least its own traffic by now.
        let (_, fs_snap) = view.services.iter().find(|(n, _)| n == "fs").unwrap();
        assert!(fs_snap.counter_sum("net_requests_total", &[("service", "fs")]) > 0);
        assert!(view.render().contains("lemieux"));
    }

    #[test]
    fn forged_tokens_are_rejected() {
        let (_fs, aspect, _token, user) = setup();
        let addr = aspect.service.addr;
        call(
            addr,
            &Request::RegisterJob {
                job: JobId(1),
                owner: user,
                cluster: ClusterId(2),
            },
        )
        .unwrap();
        let bogus = faucets_core::auth::SessionToken("bogus".into());
        let r = call(
            addr,
            &Request::Watch {
                token: bogus,
                job: JobId(1),
            },
        )
        .unwrap();
        assert!(matches!(r, Response::Error(_)));
    }

    #[test]
    fn non_owner_cannot_watch() {
        let (fs, aspect, _token, user) = setup();
        call(
            fs.service.addr,
            &Request::CreateUser {
                user: "mallory".into(),
                password: "p".into(),
            },
        )
        .unwrap();
        let Response::Session { token: mallory, .. } = call(
            fs.service.addr,
            &Request::Login {
                user: "mallory".into(),
                password: "p".into(),
            },
        )
        .unwrap() else {
            panic!()
        };
        let addr = aspect.service.addr;
        call(
            addr,
            &Request::RegisterJob {
                job: JobId(1),
                owner: user,
                cluster: ClusterId(2),
            },
        )
        .unwrap();
        let r = call(
            addr,
            &Request::Watch {
                token: mallory,
                job: JobId(1),
            },
        )
        .unwrap();
        assert!(matches!(r, Response::Error(_)));
    }
}
