//! # faucets-net — the deployed Faucets services (Figure 1) over TCP
//!
//! The paper's production system ran a Central Faucets Server, one Faucets
//! Daemon per cluster, and the AppSpector monitoring server as network
//! services, with command-line/GUI clients speaking to all three. This
//! crate is that deployment on `std::net` threads:
//!
//! * [`proto`] — the length-prefixed JSON wire protocol;
//! * [`fault`] — deterministic fault injection (drop/delay/truncate/garble
//!   frames, scheduled daemon outages) for chaos tests and experiments;
//! * [`fs`] — the Central Server service (auth, directory, matching);
//! * [`fd`] — the daemon service wrapping a `faucets-sched` Cluster, with a
//!   pump thread that executes jobs on a (speed-adjustable) wall clock and
//!   feeds AppSpector;
//! * [`appspector_srv`] — buffered monitoring and output download;
//! * [`client`] — the full §2 submission/monitoring client;
//! * [`service`] — the shared serve reactor, timeout/retry, and clock
//!   plumbing;
//! * [`reactor`] — the dependency-free epoll wrapper (readiness events,
//!   eventfd wakeups, incremental frame reassembly) under the serve path;
//! * [`pool`] — persistent, health-checked client connection pooling (see
//!   below);
//! * [`overload`] — admission control, circuit breakers, and payoff-aware
//!   load shedding (see below);
//! * [`replica`] — follower daemons, remote WAL-frame shipping, and
//!   primary/backup failover for the durable control plane (see below).
//!
//! Experiment E1 and `examples/live_services.rs` run the entire Figure-1
//! architecture on localhost; experiment E19 (`exp_faults`) runs it under
//! injected faults.
//!
//! ## Failure handling
//!
//! A grid of hundreds of compute servers handling millions of jobs per day
//! *will* see daemons crash mid-negotiation and links stall, so every tier
//! of the Figure-1 stack recovers:
//!
//! * **Wire** — [`proto::read_frame`] bounds the length prefix
//!   ([`proto::MAX_FRAME`], 16 MiB) so a garbled or malicious length can
//!   never drive an unbounded allocation, and returns typed
//!   [`proto::ProtoError`]s (never panics) on truncated or corrupted
//!   frames. Both socket directions carry timeouts
//!   ([`service::Timeouts`]), configurable per service and per call.
//! * **Transport** — [`service::call_with`] retries transport failures
//!   under a bounded [`service::RetryPolicy`] (exponential backoff, capped,
//!   with deterministic seeded jitter). A received `Response::Error` is an
//!   answer, not a failure, and is never retried at this layer.
//! * **Central Server** — the directory grades each daemon
//!   alive → suspect → dead from heartbeat recency
//!   (`faucets_core::directory::Liveness`) and evicts dead daemons, so
//!   match-making never hands out a corpse.
//! * **Client** — a bid from a daemon that has since been evicted is
//!   skipped (typed [`client::ClientError`], no panic), and if the chosen
//!   daemon dies mid-negotiation the client falls through its ranked bid
//!   list and, once exhausted, re-solicits bids from scratch.
//! * **Daemon** — the FD journals accepted QoS contracts to a
//!   `faucets_store` write-ahead log *before* confirming the award (a
//!   failed append NACKs the award, so "accepted" always means
//!   "durable"); a restarted daemon replays the log, re-registers with
//!   the FS, and resumes the contracts it had accepted before the crash.
//! * **Central Server** — with [`fs::FsOptions::store`] set, cluster
//!   registrations ride the same WAL engine and survive an FS restart;
//!   sessions are in-memory by design, so clients re-login and daemons
//!   re-register on the heartbeat error path. Experiment E21
//!   (`exp_durability`) kill-9s each durable service mid-workload and
//!   asserts nothing acknowledged is lost.
//!
//! All injected failures come from a seeded [`fault::FaultPlan`]: the same
//! seed reproduces the same fault schedule byte-for-byte (see
//! [`fault::FaultPlan::schedule_description`]), so chaos tests are as
//! debuggable as deterministic ones.
//!
//! ## Observability
//!
//! Every frame is an [`proto::Envelope`] carrying an optional
//! `faucets_telemetry` trace context, every service records per-endpoint
//! request/error/latency collectors in the process-global registry, and
//! every service answers [`proto::Request::Metrics`] with a snapshot of
//! that registry. The AppSpector aggregates the lot into a
//! [`faucets_core::appspector::GridView`] on [`proto::Request::GridView`].
//! Experiment E20 (`exp_observability`) exercises the whole pipeline.
//!
//! ## Overload protection
//!
//! The paper sizes the architecture at "hundreds of Compute Servers" and
//! "millions of jobs per day" (§5); at that scale saturation is routine,
//! so every Figure-1 service degrades gracefully instead of queueing
//! without bound:
//!
//! * **Admission** — [`service::serve_with`] bounds per-endpoint inflight
//!   work ([`overload::ServiceLimits`]); a request over the bound is
//!   answered [`proto::Response::Overloaded`] immediately (fast-fail), and
//!   callers surface it as the typed, non-retried
//!   [`proto::ProtoError::Overloaded`].
//! * **Deadlines** — callers stamp their remaining budget into the
//!   [`proto::Envelope`] (`deadline_ms`); the serve layer sheds work whose
//!   deadline already expired, and handlers can read
//!   [`service::request_deadline`] to stop doomed work mid-flight. The
//!   retry loop never backs off past the caller's deadline.
//! * **Breakers** — [`overload::BreakerSet`] gives each peer a
//!   closed/open/half-open circuit breaker in the client path: after
//!   enough consecutive transport failures, calls fast-fail locally until
//!   a cooldown probe succeeds. An `Overloaded` answer counts as a
//!   breaker *success* — busy is not dead.
//! * **Payoff-aware shedding** — the FD pushes §4's profit maximization
//!   into overload: over its bid-pipeline bound, [`overload::PayoffGate`]
//!   sheds bid solicitations in ascending payoff-rate order, so the most
//!   profitable contracts survive saturation. The FS throttles directory
//!   queries with an [`overload::TokenBucket`].
//!
//! All limits are runtime-tunable, counted in telemetry (sheds,
//! rejections, breaker transitions, queue-depth gauges), fault-injectable
//! via [`fault::FaultConfig::reject`], and exercised by experiment E22
//! (`exp_overload`).
//!
//! ## Connection reuse
//!
//! At "millions of jobs per day" a fresh TCP connect per RPC is pure
//! overhead, so the client path pools connections and the serve path runs
//! a fixed worker pool:
//!
//! * **Pooling** — [`pool::ConnPool`] keeps bounded, idle-evicted,
//!   health-checked sockets per peer; [`service::CallOptions::pool`] wires
//!   it under [`service::call_with`] so retries, deadlines, breakers, and
//!   fault injection operate unchanged on warm streams. Any failed
//!   round-trip *poisons* the socket (closed, never reused) — a
//!   desynchronised stream must not pay the next caller the previous
//!   caller's reply.
//! * **Fan-out** — [`service::call_many`] solicits many peers concurrently
//!   over pooled connections under the caller's trace context; the client
//!   uses it to collect a whole bid round in one sweep.
//! * **Serving** — [`service::serve_with`] runs a readiness-driven epoll
//!   reactor ([`reactor`]): one thread owns the nonblocking listener and
//!   every connection's frame state machine (zero idle wakeups — the
//!   reactor blocks in `epoll_wait` until a socket or completion is
//!   actually ready), while decoded frames execute on a bounded pool of
//!   [`service::ServeOptions::workers`] handler threads. Connections are
//!   cheap parked state, not threads, so one service holds thousands of
//!   open sockets; executor back-pressure parks frames per connection and
//!   drops read interest, letting TCP flow control push back on the
//!   client.
//!
//! Pool behaviour is fully counted (`net_pool_{hits,misses,evictions,
//! poisoned,stale_retries}_total`, `net_pool_open_conns`, and the serve
//! side's `net_open_conns`/`net_conns_accepted_total`, plus the reactor's
//! `net_reactor_registered_fds`/`net_reactor_ready_events`/
//! `net_reactor_executor_queue`/`net_reactor_wakeups_total`) and proven by
//! experiment E23 (`exp_rpc_throughput`): pooled calls sustain ≥ 2× the
//! per-call-connection throughput at 8 concurrent clients.
//!
//! ## Request pipelining
//!
//! The serve side processes frames from one connection concurrently, so
//! the client path can keep many requests in flight per socket:
//! [`proto::Envelope`] carries an optional `request_id` which the server
//! echoes verbatim on the response, and [`pool::MuxPool`] hands out
//! shared multiplexed connections ([`pool::MuxConn`]) whose dedicated
//! reader thread matches responses back to callers by id — in any order.
//! [`service::call_batch`] pipelines a whole batch in one vectored write
//! burst; [`service::call_many`] with [`service::CallOptions::mux`] set
//! shares warm sockets across concurrent workers. A transport failure
//! kills the shared socket and fails every in-flight call with a typed
//! disconnect ([`pool::PendingMap::fail_all`]) — never a crossed wire.
//! Experiment E28 (`exp_pipelined_rpc`) gates pipelined throughput
//! against the E23 pooled baseline and soaks thousands of concurrent
//! connections with zero transport errors.
//!
//! ## Replication and failover
//!
//! A single durable FS or FD still loses availability (and, for async
//! observers, recent writes) when its host dies; the control plane
//! therefore replicates its journals. The primary ships every committed
//! WAL frame — tagged `(epoch, generation, seq)` — to follower daemons
//! ([`replica::spawn_replica`]) which persist byte-compatible journal
//! directories before acking:
//!
//! * **Modes** — sync (`Ok` to the client implies the required follower
//!   quorum holds the record; an under-replicated commit is NACKed as
//!   `Unreplicated`) or async (`Ok` implies local durability; `repl_lag`
//!   bounds the failover exposure). See
//!   [`faucets_store::ReplicationMode`].
//! * **Failover** — probe survivors' positions (`ReplStatus`), elect with
//!   [`faucets_store::pick_primary`] (max `(epoch, generation, acked)`,
//!   deterministic tie-break), raise the epoch with
//!   [`faucets_store::prepare_promotion`], and open the released follower
//!   directory as the new primary's journal. A deposed primary is
//!   *fenced*: the first follower that has seen the higher epoch rejects
//!   its frames, and every later commit fails with `Fenced`. The
//!   [`sentinel`] module automates the whole procedure: a lease persisted
//!   in the primary's journal directory is renewed by answering
//!   [`proto::Request::LeaseProbe`]; missed renewals past the TTL trigger
//!   a quorum-gated election, a wire-level [`proto::Request::Fence`] of
//!   the deposed primary, and promotion of the released follower —
//!   no operator in the loop (experiment E27, `exp_selfheal`).
//! * **Membership** — the replica set itself changes under joint
//!   consensus: [`faucets_store::ReplicatedStore::begin_reconfigure`]
//!   enters a joint configuration where sync commits need a quorum in
//!   *both* the old and new cohorts, and `finish_reconfigure` retires the
//!   old cohort only once the incoming replicas have caught up.
//! * **Catch-up** — a follower that is empty, behind a compaction, or has
//!   a sequence gap answers `NeedSnapshot`; the primary installs its
//!   snapshot basis plus the live frame tail ([`proto::Request::ReplSnapshot`]),
//!   after which incremental shipping resumes.
//!
//! Replication traffic rides the normal RPC stack (retry, deadlines,
//! breakers, pooling, fault injection) and is counted in telemetry
//! (`repl_lag`, `repl_epoch`, `repl_shipped_frames_total`,
//! `repl_snapshot_transfers_total`, `repl_fenced_total`,
//! `repl_failovers_total`). The chaos suite (`tests/replication.rs`)
//! kill-9s a sync-mode primary mid-negotiation and asserts every
//! acknowledged award survives on the promoted backup; experiment E24
//! (`exp_replication`) measures failover MTTR, replication lag under
//! load, and sync-vs-async overhead against the PR-3 single-node WAL.
//!
//! # Federation
//!
//! [`federation`] shards the central server itself: N FS instances split
//! the directory by consistent hashing over cluster ids, discover each
//! other by gossip, and answer any client's query by scatter-gathering
//! the other shards — the E26 scale-out path. See the module docs.

#![warn(missing_docs)]

pub mod appspector_srv;
pub mod client;
pub mod fault;
pub mod fd;
pub mod federation;
pub mod fs;
pub mod overload;
pub mod pool;
pub mod proto;
pub mod reactor;
pub mod replica;
pub mod sentinel;
pub mod service;

/// Convenient glob import.
pub mod prelude {
    pub use crate::appspector_srv::{spawn_appspector, spawn_appspector_with, AsHandle};
    pub use crate::client::{ClientError, FaucetsClient, Submission, WaitBackoff};
    pub use crate::fault::{FaultConfig, FaultPlan, FaultStats, FrameFault, Outage};
    pub use crate::fd::{spawn_fd, spawn_fd_with, FdHandle, FdOptions};
    pub use crate::federation::{Federation, FederationOptions, GossipView, Ring};
    pub use crate::fs::{spawn_fs, spawn_fs_durable, spawn_fs_with, FsHandle, FsOptions};
    pub use crate::overload::{
        BreakerConfig, BreakerSet, CircuitBreaker, GateConfig, GateVerdict, PayoffGate,
        ServiceLimits, TokenBucket,
    };
    pub use crate::pool::{ConnPool, MuxConfig, MuxPool, PoolConfig, PooledConn};
    pub use crate::proto::{read_frame, write_frame, Envelope, ProtoError, Request, Response};
    pub use crate::replica::{
        spawn_replica, Journal, RemoteLink, ReplicaHandle, ReplicaOptions, ReplicationConfig,
    };
    pub use crate::sentinel::{spawn_sentinel, FailoverEvent, Sentinel, SentinelOptions};
    pub use crate::service::{
        call, call_batch, call_many, call_with, serve, serve_with, CallOptions, Clock, RetryPolicy,
        ServeOptions, ServiceHandle, StopSignal, Timeouts,
    };
}
