//! # faucets-net — the deployed Faucets services (Figure 1) over TCP
//!
//! The paper's production system ran a Central Faucets Server, one Faucets
//! Daemon per cluster, and the AppSpector monitoring server as network
//! services, with command-line/GUI clients speaking to all three. This
//! crate is that deployment on `std::net` threads:
//!
//! * [`proto`] — the length-prefixed JSON wire protocol;
//! * [`fs`] — the Central Server service (auth, directory, matching);
//! * [`fd`] — the daemon service wrapping a `faucets-sched` Cluster, with a
//!   pump thread that executes jobs on a (speed-adjustable) wall clock and
//!   feeds AppSpector;
//! * [`appspector_srv`] — buffered monitoring and output download;
//! * [`client`] — the full §2 submission/monitoring client;
//! * [`service`] — shared accept-loop and clock plumbing.
//!
//! Experiment E1 and `examples/live_services.rs` run the entire Figure-1
//! architecture on localhost.

#![warn(missing_docs)]

pub mod appspector_srv;
pub mod client;
pub mod fd;
pub mod fs;
pub mod proto;
pub mod service;

/// Convenient glob import.
pub mod prelude {
    pub use crate::appspector_srv::{spawn_appspector, AsHandle};
    pub use crate::client::{FaucetsClient, Submission};
    pub use crate::fd::{spawn_fd, FdHandle};
    pub use crate::fs::{spawn_fs, FsHandle};
    pub use crate::proto::{read_frame, write_frame, Request, Response};
    pub use crate::service::{call, serve, Clock, ServiceHandle};
}
