//! The Faucets wire protocol.
//!
//! The 2004 system spoke a line-oriented text protocol between client, FS,
//! FD, and AppSpector; we port it to length-prefixed JSON frames: a `u32`
//! big-endian payload length followed by a JSON-encoded [`Request`] or
//! [`Response`]. JSON keeps the protocol inspectable (the paper's tooling
//! emphasis) while the length prefix makes framing robust.
//!
//! Framing failures are typed ([`ProtoError`]): a garbled or malicious
//! length prefix is rejected *before* any allocation ([`MAX_FRAME`]), and
//! a payload that frames correctly but doesn't parse is distinguished from
//! transport loss so callers can decide what is retryable. Both framing
//! functions accept an optional [`crate::fault::FaultPlan`] through their
//! `*_with` variants, which is how the fault-injection harness corrupts
//! traffic without touching service code.

use crate::fault::{FaultPlan, FrameFault};
use faucets_core::appspector::{GridView, MonitorSnapshot, TelemetrySample};
use faucets_core::auth::SessionToken;
use faucets_core::bid::{Bid, BidRequest, BidResponse};
use faucets_core::directory::{ClusterRow, ServerInfo, ServerListing, ServerStatus};
use faucets_core::ids::{ClusterId, ContractId, JobId, UserId};
use faucets_core::job::JobSpec;
use faucets_core::qos::QosContract;
use faucets_store::{ReplFrame, ReplReply, SnapshotBlob};
use faucets_telemetry::metrics::MetricsSnapshot;
use faucets_telemetry::trace::TraceContext;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Maximum accepted frame size (16 MiB) — guards against corrupt prefixes.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Requests a peer may send to any Faucets service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    // ---- Central Server (FS) ----
    /// Create a user account.
    CreateUser {
        /// Login name.
        user: String,
        /// Password.
        password: String,
    },
    /// Authenticate; mints a session token.
    Login {
        /// Login name.
        user: String,
        /// Password.
        password: String,
    },
    /// FD→FS re-verification of a client token (§2.2).
    VerifyToken {
        /// The token to check.
        token: SessionToken,
    },
    /// FD startup registration (§2).
    RegisterCluster {
        /// Static server properties.
        info: ServerInfo,
        /// Exported "Known Applications".
        apps: Vec<String>,
    },
    /// FD → FS heartbeat.
    Heartbeat {
        /// Reporting cluster.
        cluster: ClusterId,
        /// Current status.
        status: ServerStatus,
    },
    /// Client asks for matching Compute Servers for a QoS contract.
    ListServers {
        /// Session token.
        token: SessionToken,
        /// The job's requirements.
        qos: QosContract,
    },

    // ---- Faucets Daemon (FD) ----
    /// Client solicits a bid.
    RequestBid {
        /// Session token (re-verified at the FS).
        token: SessionToken,
        /// The request-for-bids payload.
        request: BidRequest,
    },
    /// Client awards the job (phase 2).
    Award {
        /// Session token.
        token: SessionToken,
        /// The job to run.
        spec: JobSpec,
        /// Contract id assigned by the client side.
        contract: ContractId,
        /// The accepted bid.
        bid: Bid,
    },
    /// Client stages an input file to the FD.
    UploadFile {
        /// Session token.
        token: SessionToken,
        /// Owning job.
        job: JobId,
        /// File name.
        name: String,
        /// Contents.
        data: Vec<u8>,
    },

    // ---- AppSpector (AS) ----
    /// FD registers a started job for monitoring.
    RegisterJob {
        /// The job.
        job: JobId,
        /// Its owner.
        owner: UserId,
        /// Where it runs.
        cluster: ClusterId,
    },
    /// The running application pushes display data.
    PushSample {
        /// The job.
        job: JobId,
        /// One telemetry sample.
        sample: TelemetrySample,
    },
    /// FD announces completion and the produced output files.
    CompleteJob {
        /// The job.
        job: JobId,
        /// Output files (name, bytes).
        outputs: Vec<(String, Vec<u8>)>,
    },
    /// Client watches a job.
    Watch {
        /// Session token.
        token: SessionToken,
        /// The job to monitor.
        job: JobId,
    },
    /// Client downloads an output file.
    Download {
        /// Session token.
        token: SessionToken,
        /// The job.
        job: JobId,
        /// File name.
        name: String,
    },

    // ---- Replication (follower daemon) ----
    /// Primary ships committed WAL frames, in commit order, to a follower.
    /// The follower persists them before answering; its reply carries the
    /// durable position (or a fencing/snapshot demand).
    ReplAppend {
        /// Name of the replicated service (keys the follower-side store).
        service: String,
        /// Committed frames, each tagged with epoch, generation, and
        /// sequence number.
        frames: Vec<ReplFrame>,
    },
    /// Primary installs a snapshot basis plus the frames committed on top
    /// of it — how a follower that is behind a compaction (or empty)
    /// catches up without the discarded WAL generations.
    ReplSnapshot {
        /// Name of the replicated service.
        service: String,
        /// The snapshot basis and its follow-on records.
        blob: SnapshotBlob,
    },
    /// Probe a follower's durable replication position without shipping
    /// anything — used by failover to elect the most-caught-up replica.
    ReplStatus {
        /// Name of the replicated service.
        service: String,
    },
    /// Sentinel → replica daemon: detach a hosted follower so its journal
    /// directory can be promoted to primary. Answered with
    /// [`Response::Released`] carrying the directory path.
    ReplRelease {
        /// Name of the replicated service.
        service: String,
    },

    // ---- Self-healing (sentinel) ----
    /// Sentinel → primary: prove you are alive and still primary. The
    /// primary renews its on-disk lease while answering, so a successful
    /// probe IS a lease renewal; the reply ([`Response::Lease`]) carries
    /// the primary's position and fencing state.
    LeaseProbe {
        /// Name of the replicated service the lease guards.
        service: String,
    },
    /// Sentinel → deposed primary: a replica has been promoted at `epoch`;
    /// stop acknowledging immediately (the wire-level half of epoch
    /// fencing — the deposed node otherwise learns only when it next ships
    /// a frame).
    Fence {
        /// Name of the replicated service.
        service: String,
        /// The promoted node's (higher) epoch.
        epoch: u64,
    },

    // ---- Federation (FS shard ↔ FS shard) ----
    /// One shard pushes its gossip view to a peer; the peer merges it and
    /// answers [`Response::Gossip`] with its own (push-pull anti-entropy).
    Gossip {
        /// The sending shard's name.
        from: String,
        /// The sender's full membership view.
        view: crate::federation::GossipView,
    },
    /// One shard asks a peer to answer a directory query *from its local
    /// shard only* (the receiver never re-scatters — forwarding depth is
    /// bounded at one hop, so shard worker pools cannot deadlock on each
    /// other).
    FedQuery {
        /// The asking shard's name.
        from: String,
        /// What to answer locally.
        query: FedQuery,
    },

    // ---- Observability (any service) ----
    /// Ask a service for a snapshot of its metric registry. Answered by
    /// the serve layer itself, so every Figure-1 service exposes it.
    Metrics,
    /// Client (or AppSpector) asks the FS for every directory entry with
    /// its latest reported load and liveness grade.
    ListClusters {
        /// Session token.
        token: SessionToken,
    },
    /// Client asks AppSpector for the aggregated grid dashboard.
    GridView {
        /// Session token.
        token: SessionToken,
    },
}

impl Request {
    /// Stable per-endpoint label used for metrics and span names.
    pub fn endpoint(&self) -> &'static str {
        match self {
            Request::CreateUser { .. } => "CreateUser",
            Request::Login { .. } => "Login",
            Request::VerifyToken { .. } => "VerifyToken",
            Request::RegisterCluster { .. } => "RegisterCluster",
            Request::Heartbeat { .. } => "Heartbeat",
            Request::ListServers { .. } => "ListServers",
            Request::RequestBid { .. } => "RequestBid",
            Request::Award { .. } => "Award",
            Request::UploadFile { .. } => "UploadFile",
            Request::RegisterJob { .. } => "RegisterJob",
            Request::PushSample { .. } => "PushSample",
            Request::CompleteJob { .. } => "CompleteJob",
            Request::Watch { .. } => "Watch",
            Request::Download { .. } => "Download",
            Request::ReplAppend { .. } => "ReplAppend",
            Request::ReplSnapshot { .. } => "ReplSnapshot",
            Request::ReplStatus { .. } => "ReplStatus",
            Request::ReplRelease { .. } => "ReplRelease",
            Request::LeaseProbe { .. } => "LeaseProbe",
            Request::Fence { .. } => "Fence",
            Request::Gossip { .. } => "Gossip",
            Request::FedQuery { query, .. } => match query {
                FedQuery::Match { .. } => "FedMatch",
                FedQuery::Rows => "FedRows",
                FedQuery::Verify { .. } => "FedVerify",
            },
            Request::Metrics => "Metrics",
            Request::ListClusters { .. } => "ListClusters",
            Request::GridView { .. } => "GridView",
        }
    }
}

/// The shard-local directory questions one federated FS may ask another
/// (carried by [`Request::FedQuery`], answered from the receiver's own
/// shard without further network hops).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FedQuery {
    /// Return this shard's matching servers for a QoS contract
    /// (pre-verified by the asking shard — answered with
    /// [`Response::Servers`]).
    Match {
        /// The job's requirements.
        qos: QosContract,
    },
    /// Return this shard's directory rows, stamped with the shard name and
    /// ring epoch (answered with [`Response::Clusters`]).
    Rows,
    /// Does this shard recognise the session token? (Answered with
    /// [`Response::Verified`] or [`Response::Error`] — accounts are
    /// shard-local, so verification scatters.)
    Verify {
        /// The token to check.
        token: SessionToken,
    },
}

/// Responses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Generic success.
    Ok,
    /// Login result.
    Session {
        /// The authenticated user.
        user: UserId,
        /// The minted token.
        token: SessionToken,
    },
    /// Token verification result.
    Verified {
        /// The token's owner.
        user: UserId,
    },
    /// Matching servers for a QoS contract, each with its latest reported
    /// load so clients (and the dashboard) can weigh per-cluster pressure.
    Servers(Vec<ServerListing>),
    /// A bid (or decline) from an FD.
    BidReply(BidResponse),
    /// Award outcome: confirmed or reneged (with reason).
    AwardReply {
        /// True when the daemon committed and submitted the job.
        confirmed: bool,
        /// Renege reason when not confirmed.
        reason: Option<String>,
    },
    /// Monitoring snapshot.
    Snapshot(MonitorSnapshot),
    /// A downloaded file.
    File {
        /// File name.
        name: String,
        /// Contents.
        data: Vec<u8>,
    },
    /// A service's metric registry snapshot.
    Metrics(MetricsSnapshot),
    /// Every directory entry with load and liveness.
    Clusters(Vec<ClusterRow>),
    /// The aggregated grid dashboard.
    Grid(Box<GridView>),
    /// A follower's answer to any replication request: its durable
    /// position, a fencing rejection, or a demand for a snapshot.
    Repl(ReplReply),
    /// A primary's answer to [`Request::LeaseProbe`]: where it is and
    /// whether it has been fenced (a fenced primary answers honestly so
    /// the sentinel can confirm a deposition took hold).
    Lease {
        /// The primary's `(epoch, generation, acked)` position.
        position: faucets_store::ReplPosition,
        /// Has this node observed a higher epoch (been deposed)?
        fenced: bool,
    },
    /// A replica daemon's answer to [`Request::ReplRelease`]: the journal
    /// directory of the detached follower, ready for
    /// `prepare_promotion` + reopening as primary.
    Released {
        /// Filesystem path of the released journal directory.
        dir: String,
    },
    /// A federated shard's own gossip view, answering [`Request::Gossip`].
    Gossip(crate::federation::GossipView),
    /// The service is at its admission bound and shed this request before
    /// doing any work (fast-fail instead of unbounded queueing). Not an
    /// error about the request itself: the caller may retry elsewhere or
    /// after the hinted delay.
    Overloaded {
        /// Hint: milliseconds until the service expects capacity again.
        retry_after_ms: u64,
    },
    /// Any failure, with a human-readable message.
    Error(String),
}

/// The unit every connection actually exchanges: a message plus the
/// sender's [`TraceContext`], so one job's path is reconstructable across
/// services (including retried and re-solicited legs, which reuse the same
/// trace id on every attempt).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Envelope<T> {
    /// The sender's trace context, if it is participating in a trace.
    pub ctx: Option<TraceContext>,
    /// Milliseconds of deadline budget remaining at send time, when the
    /// caller has one ([`crate::service::CallOptions::deadline`]). The
    /// server sheds a request that arrives with `Some(0)` — the caller has
    /// already abandoned it — and exposes the remaining budget to handlers
    /// via [`crate::service::request_deadline`] so queued work can be
    /// dropped the moment it becomes doomed. Absent on the wire when
    /// `None`, so pre-deadline peers interoperate.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub deadline_ms: Option<u64>,
    /// Correlates a response with its request when multiple frames are in
    /// flight on one connection ([`crate::pool::MuxPool`] pipelining). The
    /// contract: a server echoes the request's id verbatim on its response
    /// envelope; responses may then arrive in any order and the client
    /// matches them back by id. Absent on the wire when `None`, so
    /// one-frame-at-a-time peers (and pre-multiplexing recordings)
    /// interoperate unchanged.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub request_id: Option<u64>,
    /// The request or response being carried.
    pub msg: T,
}

impl<T> Envelope<T> {
    /// Wrap `msg` with the calling thread's current trace context and no
    /// deadline or request id.
    pub fn wrap(msg: T) -> Self {
        Envelope {
            ctx: faucets_telemetry::trace::current(),
            deadline_ms: None,
            request_id: None,
            msg,
        }
    }
}

/// Errors at the framing layer.
#[derive(Debug)]
pub enum ProtoError {
    /// Transport-level failure (connection loss, timeout, short read).
    Io(std::io::Error),
    /// The length prefix claims a frame larger than [`MAX_FRAME`]; rejected
    /// before any allocation so a garbled or malicious prefix cannot drive
    /// an unbounded buffer.
    FrameTooLarge(u32),
    /// The payload framed correctly but is not a valid message.
    Malformed(serde_json::Error),
    /// The call was shed by overload protection — either the peer answered
    /// [`Response::Overloaded`], or a local circuit breaker / deadline
    /// fast-failed it without touching the network. Not transient: backing
    /// off (or going elsewhere) is the point; retrying immediately is the
    /// storm this error exists to prevent.
    Overloaded {
        /// Hint: milliseconds until capacity is expected again.
        retry_after_ms: u64,
    },
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "transport error: {e}"),
            ProtoError::FrameTooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME}-byte limit")
            }
            ProtoError::Malformed(e) => write!(f, "malformed payload: {e}"),
            ProtoError::Overloaded { retry_after_ms } => {
                write!(f, "overloaded; retry after {retry_after_ms} ms")
            }
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtoError::Io(e) => Some(e),
            ProtoError::Malformed(e) => Some(e),
            ProtoError::FrameTooLarge(_) | ProtoError::Overloaded { .. } => None,
        }
    }
}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

impl From<ProtoError> for std::io::Error {
    fn from(e: ProtoError) -> Self {
        match e {
            ProtoError::Io(e) => e,
            // Kept as the error payload (not a string) so callers can
            // recognise an overload shed with [`is_overload_error`].
            overload @ ProtoError::Overloaded { .. } => std::io::Error::other(overload),
            other => std::io::Error::new(std::io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// Did this I/O error originate as [`ProtoError::Overloaded`] (the call was
/// shed, locally or by the peer) rather than a genuine transport failure?
/// Callers use this to treat "busy" differently from "dead" — an overloaded
/// FD contributes no bid this round but must not be graded a corpse.
pub fn is_overload_error(e: &std::io::Error) -> bool {
    e.get_ref()
        .and_then(|inner| inner.downcast_ref::<ProtoError>())
        .is_some_and(|p| matches!(p, ProtoError::Overloaded { .. }))
}

impl ProtoError {
    /// Is this worth retrying (transport hiccup) rather than a protocol
    /// violation by the peer?
    pub fn is_transient(&self) -> bool {
        matches!(self, ProtoError::Io(_))
    }
}

/// Did this I/O error say the peer hung up (EOF, reset, broken pipe) rather
/// than time out or fail mid-protocol? The pooled call path uses this to
/// recognise a reused socket that silently died while idle — the dominant
/// failure of connection reuse, safe to retry once on a fresh connection —
/// without also retrying timeouts, where the request may still be running.
pub fn is_disconnect_error(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::NotConnected
    )
}

/// Write one length-prefixed JSON frame.
pub fn write_frame<W: Write, T: Serialize>(w: &mut W, msg: &T) -> Result<(), ProtoError> {
    write_frame_with(w, msg, None)
}

/// [`write_frame`], with optional fault injection: the plan may drop the
/// frame (nothing is written, `Ok` returned — the bytes were "lost on the
/// wire"), delay it, cut it off mid-frame, or flip a payload byte.
pub fn write_frame_with<W: Write, T: Serialize>(
    w: &mut W,
    msg: &T,
    faults: Option<&FaultPlan>,
) -> Result<(), ProtoError> {
    let payload = serde_json::to_vec(msg).map_err(ProtoError::Malformed)?;
    let len = payload.len() as u32;
    if len > MAX_FRAME {
        return Err(ProtoError::FrameTooLarge(len));
    }
    let mut frame = Vec::with_capacity(payload.len() + 4);
    frame.extend_from_slice(&len.to_be_bytes());
    frame.extend_from_slice(&payload);
    if let Some(plan) = faults {
        match plan.decide(&frame) {
            FrameFault::Deliver => {}
            FrameFault::Drop => return Ok(()),
            FrameFault::Delay(d) => std::thread::sleep(d),
            FrameFault::Truncate { keep } => {
                let keep = keep.min(frame.len());
                w.write_all(&frame[..keep])?;
                w.flush()?;
                return Ok(());
            }
            FrameFault::Garble { offset, xor } => {
                if !payload.is_empty() {
                    let at = 4 + offset % payload.len();
                    frame[at] ^= xor;
                }
            }
        }
    }
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Read one length-prefixed JSON frame. Returns `Ok(None)` on clean EOF at
/// a frame boundary.
pub fn read_frame<R: Read, T: for<'de> Deserialize<'de>>(
    r: &mut R,
) -> Result<Option<T>, ProtoError> {
    read_frame_with(r, None)
}

/// [`read_frame`], with optional fault injection on the receive path: the
/// plan may delay the read or corrupt a received payload byte before it is
/// parsed (loss and truncation are injected on the send path, where the
/// bytes still exist to lose).
pub fn read_frame_with<R: Read, T: for<'de> Deserialize<'de>>(
    r: &mut R,
    faults: Option<&FaultPlan>,
) -> Result<Option<T>, ProtoError> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(ProtoError::Io(e)),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(ProtoError::FrameTooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    apply_receive_faults(&mut payload, faults);
    parse_payload(&payload).map(Some)
}

/// Receive-path fault injection on an already-framed payload: the plan may
/// delay "delivery" or corrupt a byte before parsing. Factored out of
/// [`read_frame_with`] so the reactor serve path — which reassembles frames
/// off nonblocking sockets itself — injects identical faults on its
/// executor threads.
pub(crate) fn apply_receive_faults(payload: &mut [u8], faults: Option<&FaultPlan>) {
    if let Some(plan) = faults {
        match plan.decide(payload) {
            FrameFault::Delay(d) => std::thread::sleep(d),
            FrameFault::Garble { offset, xor } if !payload.is_empty() => {
                let at = offset % payload.len();
                payload[at] ^= xor;
            }
            _ => {}
        }
    }
}

/// Parse a complete frame payload into a message, with the same typed
/// error [`read_frame_with`] reports.
pub(crate) fn parse_payload<T: for<'de> Deserialize<'de>>(payload: &[u8]) -> Result<T, ProtoError> {
    serde_json::from_slice(payload).map_err(ProtoError::Malformed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_round_trip() {
        let req = Request::Login {
            user: "alice".into(),
            password: "pw".into(),
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &req).unwrap();
        let mut cur = Cursor::new(buf);
        let back: Request = read_frame(&mut cur).unwrap().unwrap();
        assert_eq!(back, req);
        // Clean EOF after the frame.
        let eof: Option<Request> = read_frame(&mut cur).unwrap();
        assert!(eof.is_none());
    }

    #[test]
    fn multiple_frames_in_sequence() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Response::Ok).unwrap();
        write_frame(&mut buf, &Response::Error("x".into())).unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(
            read_frame::<_, Response>(&mut cur).unwrap().unwrap(),
            Response::Ok
        );
        assert_eq!(
            read_frame::<_, Response>(&mut cur).unwrap().unwrap(),
            Response::Error("x".into())
        );
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        let mut cur = Cursor::new(buf);
        // The bound is checked before any allocation and reported as the
        // typed protocol error, not a generic I/O failure.
        match read_frame::<_, Response>(&mut cur) {
            Err(ProtoError::FrameTooLarge(n)) => assert_eq!(n, MAX_FRAME + 1),
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn garbled_write_fails_to_parse_never_panics() {
        use crate::fault::{FaultConfig, FaultPlan};
        let plan = FaultPlan::new(
            11,
            FaultConfig {
                garble: 1.0,
                ..FaultConfig::none()
            },
        );
        let req = Request::Login {
            user: "alice".into(),
            password: "pw".into(),
        };
        let mut buf = Vec::new();
        write_frame_with(&mut buf, &req, Some(&plan)).unwrap();
        // One byte was flipped in flight: the frame either fails to parse
        // (typed Malformed) or — astronomically rarely — parses to a
        // *different* value; it must never panic or round-trip silently.
        match read_frame::<_, Request>(&mut Cursor::new(&buf)) {
            Err(ProtoError::Malformed(_)) => {}
            Ok(Some(got)) => assert_ne!(got, req, "corruption went unnoticed"),
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(plan.stats().garbled, 1);
    }

    #[test]
    fn dropped_write_produces_no_bytes() {
        use crate::fault::{FaultConfig, FaultPlan};
        let plan = FaultPlan::new(
            12,
            FaultConfig {
                drop: 1.0,
                ..FaultConfig::none()
            },
        );
        let mut buf = Vec::new();
        write_frame_with(&mut buf, &Response::Ok, Some(&plan)).unwrap();
        assert!(buf.is_empty(), "a dropped frame writes nothing");
        let eof: Option<Response> = read_frame(&mut Cursor::new(&buf)).unwrap();
        assert!(eof.is_none());
    }

    #[test]
    fn truncated_frame_is_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Response::Ok).unwrap();
        buf.truncate(buf.len() - 1);
        let mut cur = Cursor::new(buf);
        assert!(read_frame::<_, Response>(&mut cur).is_err());
    }

    #[test]
    fn envelope_deadline_is_optional_on_the_wire() {
        // A frame from a pre-deadline peer (no `deadline_ms` key) parses.
        let legacy = serde_json::json!({ "ctx": null, "msg": "Ok" });
        let env: Envelope<Response> = serde_json::from_value(legacy).unwrap();
        assert_eq!(env.deadline_ms, None);
        // An unstamped envelope leaves the key off the wire entirely.
        let plain = serde_json::to_string(&Envelope::wrap(Response::Ok)).unwrap();
        assert!(!plain.contains("deadline_ms"));
        // A stamped envelope round-trips.
        let env = Envelope {
            ctx: None,
            deadline_ms: Some(120),
            request_id: None,
            msg: Response::Ok,
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &env).unwrap();
        let back: Envelope<Response> = read_frame(&mut Cursor::new(buf)).unwrap().unwrap();
        assert_eq!(back.deadline_ms, Some(120));
    }

    #[test]
    fn overload_error_survives_io_conversion() {
        let e: std::io::Error = ProtoError::Overloaded { retry_after_ms: 40 }.into();
        assert!(is_overload_error(&e));
        assert!(!is_overload_error(&std::io::Error::other("boring")));
        assert!(!ProtoError::Overloaded { retry_after_ms: 0 }.is_transient());
    }

    #[test]
    fn disconnects_are_distinguished_from_timeouts() {
        use std::io::{Error, ErrorKind};
        assert!(is_disconnect_error(&Error::new(
            ErrorKind::UnexpectedEof,
            "closed"
        )));
        assert!(is_disconnect_error(&Error::new(
            ErrorKind::ConnectionReset,
            "rst"
        )));
        assert!(!is_disconnect_error(&Error::new(
            ErrorKind::WouldBlock,
            "read timeout"
        )));
        assert!(!is_disconnect_error(&Error::new(
            ErrorKind::TimedOut,
            "read timeout"
        )));
        assert!(!is_disconnect_error(&Error::other("boring")));
    }

    #[test]
    fn binary_payload_round_trips() {
        let req = Request::UploadFile {
            token: SessionToken("t".into()),
            job: JobId(1),
            name: "input.bin".into(),
            data: (0..=255u8).collect(),
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &req).unwrap();
        let back: Request = read_frame(&mut Cursor::new(buf)).unwrap().unwrap();
        assert_eq!(back, req);
    }
}
