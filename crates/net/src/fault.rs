//! Deterministic fault injection for the Figure-1 services.
//!
//! A grid of "hundreds of Compute Servers" handling "millions of jobs per
//! day" will see daemons crash mid-negotiation and links stall, so every
//! recovery path in this crate is exercised under *injected* faults rather
//! than waiting for real ones. A [`FaultPlan`] is a seeded, reproducible
//! description of what goes wrong:
//!
//! * **frame faults** — each wire frame may be dropped, delayed, truncated
//!   mid-frame, or garbled (bit-flipped), decided by a pure function of the
//!   plan seed and the frame bytes, so the same seed applied to the same
//!   traffic always injects the same faults regardless of thread
//!   interleaving;
//! * **process outages** — a deterministic kill/restart schedule for the
//!   spawned services ([`FaultPlan::outages`]), which experiments use to
//!   crash Faucets Daemons at planned instants.
//!
//! The plan is threaded through [`crate::service::serve_with`] and
//! [`crate::service::call_with`] down into the
//! [`crate::proto::read_frame_with`] / [`crate::proto::write_frame_with`]
//! framing layer, so any test or experiment can run the full Figure-1
//! stack under faults. [`FaultStats`] counts what was actually injected.
//! Faults compose with connection pooling ([`crate::pool::ConnPool`]): a
//! truncated or garbled frame fails the round-trip, which *poisons* the
//! pooled socket, so the same seed also exercises the pool's
//! fresh-socket recovery path.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What happens to one wire frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFault {
    /// The frame goes through untouched.
    Deliver,
    /// The frame is silently lost (the peer sees nothing and times out).
    Drop,
    /// The frame is delivered after an extra latency.
    Delay(Duration),
    /// Only the first `keep` bytes of the encoded frame are delivered; the
    /// connection then looks cut mid-frame to the peer.
    Truncate {
        /// Bytes of the encoded frame (prefix + payload) that get through.
        keep: usize,
    },
    /// One payload byte is XOR-flipped in flight; the peer sees a frame
    /// that frames correctly but fails to parse (or parses to garbage).
    Garble {
        /// Index into the payload to corrupt (reduced modulo its length).
        offset: usize,
        /// Non-zero XOR mask applied to that byte.
        xor: u8,
    },
}

/// Frame-fault probabilities. All in `[0, 1]`; they are tried in the order
/// drop → truncate → garble → delay, carving disjoint slices out of one
/// uniform draw, so their sum must stay ≤ 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability a frame is dropped outright.
    pub drop: f64,
    /// Probability a frame is cut off mid-frame.
    pub truncate: f64,
    /// Probability a payload byte is bit-flipped.
    pub garble: f64,
    /// Probability a frame is delayed.
    pub delay: f64,
    /// Upper bound for injected delays.
    pub max_delay: Duration,
    /// Probability a request is rejected at admission with
    /// [`crate::proto::Response::Overloaded`], before the handler runs.
    /// Drawn independently of the frame faults above (it applies to the
    /// endpoint, not the frame bytes), so it does not count toward their
    /// sum-≤-1 budget.
    pub reject: f64,
}

impl FaultConfig {
    /// No frame faults at all (outage scheduling still works).
    pub fn none() -> Self {
        FaultConfig {
            drop: 0.0,
            truncate: 0.0,
            garble: 0.0,
            delay: 0.0,
            max_delay: Duration::ZERO,
            reject: 0.0,
        }
    }

    /// A mildly hostile network: ~3% loss, ~2% truncation, ~2% corruption,
    /// ~5% delays up to 40 ms. Retrying clients should ride this out.
    pub fn flaky() -> Self {
        FaultConfig {
            drop: 0.03,
            truncate: 0.02,
            garble: 0.02,
            delay: 0.05,
            max_delay: Duration::from_millis(40),
            reject: 0.0,
        }
    }

    fn validate(&self) {
        let total = self.drop + self.truncate + self.garble + self.delay;
        assert!(
            (0.0..=1.0).contains(&total)
                && self.drop >= 0.0
                && self.truncate >= 0.0
                && self.garble >= 0.0
                && self.delay >= 0.0,
            "fault probabilities must be non-negative and sum to at most 1 (got {total})"
        );
        assert!(
            (0.0..=1.0).contains(&self.reject),
            "reject probability must be in [0, 1] (got {})",
            self.reject
        );
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

/// Counters of faults actually injected, readable while the plan is live.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames passed through untouched.
    pub delivered: u64,
    /// Frames dropped.
    pub dropped: u64,
    /// Frames truncated mid-frame.
    pub truncated: u64,
    /// Frames with a corrupted payload byte.
    pub garbled: u64,
    /// Frames delayed.
    pub delayed: u64,
    /// Requests rejected at admission ([`FaultPlan::inject_overload`]).
    pub rejected: u64,
}

/// One planned service outage: kill `victim`, restart it later (or never).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    /// Index of the daemon to kill (into the experiment's daemon list).
    pub victim: usize,
    /// When to kill it, in milliseconds from the start of the run.
    pub kill_after_ms: u64,
    /// How long it stays down before restarting, in milliseconds.
    pub downtime_ms: u64,
}

/// A seeded, deterministic fault plan shared by every service in a run.
///
/// Frame decisions are a pure function of `(seed, frame bytes, occurrence
/// index of those bytes)`: the n-th transmission of identical bytes always
/// receives the same verdict under the same seed, independent of how
/// threads interleave — which is what makes runs reproducible and lets a
/// retried frame get a fresh (but still deterministic) draw.
pub struct FaultPlan {
    seed: u64,
    config: FaultConfig,
    occurrences: Mutex<HashMap<u64, u64>>,
    delivered: AtomicU64,
    dropped: AtomicU64,
    truncated: AtomicU64,
    garbled: AtomicU64,
    delayed: AtomicU64,
    rejected: AtomicU64,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish()
    }
}

/// SplitMix64 — the standard 64-bit finalizer/mixer; tiny and portable.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over the frame bytes — stable content fingerprint.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Map a hash to a uniform draw in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultPlan {
    /// A plan that injects `config` faults, seeded for reproducibility.
    pub fn new(seed: u64, config: FaultConfig) -> Self {
        config.validate();
        FaultPlan {
            seed,
            config,
            occurrences: Mutex::new(HashMap::new()),
            delivered: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            truncated: AtomicU64::new(0),
            garbled: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// A plan that injects nothing (useful as the "control" arm).
    pub fn inert(seed: u64) -> Self {
        FaultPlan::new(seed, FaultConfig::none())
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured probabilities.
    pub fn config(&self) -> FaultConfig {
        self.config
    }

    /// Faults injected so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            delivered: self.delivered.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            truncated: self.truncated.load(Ordering::Relaxed),
            garbled: self.garbled.load(Ordering::Relaxed),
            delayed: self.delayed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }

    /// Should this request be rejected at admission? Deterministic in
    /// `(seed, key, occurrence)` like frame faults — `key` is normally the
    /// endpoint name, and the n-th request to the same endpoint always
    /// gets the same verdict under the same seed. Injections are counted
    /// in [`FaultPlan::stats`] as `rejected`.
    pub fn inject_overload(&self, key: &[u8]) -> bool {
        if self.config.reject <= 0.0 {
            return false;
        }
        let occurrence = {
            let mut occ = self.occurrences.lock().unwrap_or_else(|e| e.into_inner());
            // Salt the key so endpoint draws never collide with the frame
            // occurrence counters for identical bytes.
            let n = occ.entry(fnv1a(key) ^ 0x7265_6a65_6374).or_insert(0);
            let cur = *n;
            *n += 1;
            cur
        };
        let h = mix64(
            self.seed
                ^ 0x7265_6a65_6374
                ^ fnv1a(key).wrapping_add(occurrence.wrapping_mul(0x9e37_79b9)),
        );
        let rejected = unit(h) < self.config.reject;
        if rejected {
            self.rejected.fetch_add(1, Ordering::Relaxed);
        }
        rejected
    }

    /// The verdict for the n-th occurrence of a frame with these bytes —
    /// pure in `(seed, bytes, n)`, no counters touched. `bytes` is the
    /// fully encoded frame (length prefix + payload).
    pub fn decide_nth(&self, bytes: &[u8], occurrence: u64) -> FrameFault {
        let c = &self.config;
        let h = mix64(self.seed ^ fnv1a(bytes).wrapping_add(occurrence.wrapping_mul(0x9e37_79b9)));
        let u = unit(h);
        let mut edge = c.drop;
        if u < edge {
            return FrameFault::Drop;
        }
        edge += c.truncate;
        if u < edge {
            // Keep at least the length prefix's first byte, never the whole
            // frame: the cut must land strictly inside it.
            let keep = 1 + (mix64(h ^ 1) as usize) % bytes.len().saturating_sub(1).max(1);
            return FrameFault::Truncate { keep };
        }
        edge += c.garble;
        if u < edge {
            let payload_len = bytes.len().saturating_sub(4).max(1);
            return FrameFault::Garble {
                offset: (mix64(h ^ 2) as usize) % payload_len,
                xor: ((mix64(h ^ 3) % 255) + 1) as u8,
            };
        }
        edge += c.delay;
        if u < edge {
            let span = c.max_delay.as_millis().max(1) as u64;
            return FrameFault::Delay(Duration::from_millis(mix64(h ^ 4) % span));
        }
        FrameFault::Deliver
    }

    /// The verdict for this transmission of `bytes`: looks up how many
    /// times these exact bytes have been sent before, decides, and records
    /// the injection in [`FaultPlan::stats`].
    pub fn decide(&self, bytes: &[u8]) -> FrameFault {
        let occurrence = {
            let mut occ = self.occurrences.lock().unwrap_or_else(|e| e.into_inner());
            let n = occ.entry(fnv1a(bytes)).or_insert(0);
            let cur = *n;
            *n += 1;
            cur
        };
        let fault = self.decide_nth(bytes, occurrence);
        let counter = match fault {
            FrameFault::Deliver => &self.delivered,
            FrameFault::Drop => &self.dropped,
            FrameFault::Truncate { .. } => &self.truncated,
            FrameFault::Garble { .. } => &self.garbled,
            FrameFault::Delay(_) => &self.delayed,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        fault
    }

    /// Adapt this plan into a [`faucets_store`] write-fault hook, so the
    /// same seeded schedule that mangles wire frames can mangle WAL
    /// appends (E19-style injection against the E21 durability engine):
    /// dropped frames become failed writes, truncations become torn
    /// tails, garbles become flipped bytes. Delays pass through — the WAL
    /// append path has no clock to stall.
    pub fn store_hook(self: &Arc<Self>) -> faucets_store::StoreFaultFn {
        let plan = Arc::clone(self);
        Arc::new(move |bytes: &[u8]| match plan.decide(bytes) {
            FrameFault::Deliver | FrameFault::Delay(_) => faucets_store::WriteFault::Deliver,
            FrameFault::Drop => faucets_store::WriteFault::Fail,
            FrameFault::Truncate { keep } => faucets_store::WriteFault::Torn { keep },
            FrameFault::Garble { offset, xor } => faucets_store::WriteFault::Garble { offset, xor },
        })
    }

    /// A deterministic kill/restart schedule: `kills` outages spread over
    /// the first `window_ms` of the run, victims drawn round-robin-ish from
    /// `daemons` services, each down for `downtime_ms`. Same seed → same
    /// schedule, byte for byte (see [`FaultPlan::schedule_description`]).
    pub fn outages(
        &self,
        daemons: usize,
        kills: usize,
        window_ms: u64,
        downtime_ms: u64,
    ) -> Vec<Outage> {
        assert!(daemons > 0, "need at least one daemon to kill");
        let mut out = Vec::with_capacity(kills);
        for k in 0..kills {
            let h = mix64(
                self.seed ^ 0x6f75_7461_6765 ^ (k as u64).wrapping_mul(0xd134_2543_de82_ef95),
            );
            let victim = (h as usize) % daemons;
            // Spread kill instants over the window, jittered but ordered.
            let slot = window_ms / (kills as u64 + 1);
            let jitter = mix64(h ^ 5) % slot.max(1);
            let kill_after_ms = slot * (k as u64 + 1) - jitter / 2;
            out.push(Outage {
                victim,
                kill_after_ms,
                downtime_ms,
            });
        }
        out
    }

    /// Render the outage schedule as a canonical string — two plans with
    /// the same seed produce byte-for-byte identical descriptions, which is
    /// how experiments prove reproducibility.
    pub fn schedule_description(
        &self,
        daemons: usize,
        kills: usize,
        window_ms: u64,
        downtime_ms: u64,
    ) -> String {
        use std::fmt::Write as _;
        let mut s = format!(
            "seed={} drop={} truncate={} garble={} delay={} max_delay_ms={}\n",
            self.seed,
            self.config.drop,
            self.config.truncate,
            self.config.garble,
            self.config.delay,
            self.config.max_delay.as_millis()
        );
        for o in self.outages(daemons, kills, window_ms, downtime_ms) {
            let _ = writeln!(
                s,
                "kill fd[{}] at +{}ms for {}ms",
                o.victim, o.kill_after_ms, o.downtime_ms
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_decisions() {
        let a = FaultPlan::new(42, FaultConfig::flaky());
        let b = FaultPlan::new(42, FaultConfig::flaky());
        for i in 0..200u32 {
            let bytes = i.to_be_bytes();
            for occ in 0..3 {
                assert_eq!(a.decide_nth(&bytes, occ), b.decide_nth(&bytes, occ));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(1, FaultConfig::flaky());
        let b = FaultPlan::new(2, FaultConfig::flaky());
        let disagreements = (0..500u32)
            .filter(|i| a.decide_nth(&i.to_be_bytes(), 0) != b.decide_nth(&i.to_be_bytes(), 0))
            .count();
        assert!(
            disagreements > 0,
            "seeds should produce different schedules"
        );
    }

    #[test]
    fn occurrence_counter_gives_retries_fresh_draws() {
        let cfg = FaultConfig {
            drop: 0.5,
            ..FaultConfig::none()
        };
        let plan = FaultPlan::new(7, cfg);
        let bytes = b"the same frame";
        let verdicts: Vec<FrameFault> = (0..64).map(|_| plan.decide(bytes)).collect();
        assert!(verdicts.contains(&FrameFault::Drop));
        assert!(
            verdicts.contains(&FrameFault::Deliver),
            "a retried frame eventually gets through"
        );
        let s = plan.stats();
        assert_eq!(s.delivered + s.dropped, 64);
    }

    #[test]
    fn inert_plan_always_delivers() {
        let plan = FaultPlan::inert(9);
        for i in 0..100u32 {
            assert_eq!(plan.decide(&i.to_be_bytes()), FrameFault::Deliver);
        }
        assert_eq!(plan.stats().delivered, 100);
    }

    #[test]
    fn truncation_stays_inside_the_frame() {
        let cfg = FaultConfig {
            truncate: 1.0,
            ..FaultConfig::none()
        };
        let plan = FaultPlan::new(3, cfg);
        for i in 0..100u32 {
            let bytes = [i.to_be_bytes().as_slice(), &[0u8; 16]].concat();
            match plan.decide_nth(&bytes, 0) {
                FrameFault::Truncate { keep } => {
                    assert!(
                        keep >= 1 && keep < bytes.len(),
                        "keep={keep} len={}",
                        bytes.len()
                    );
                }
                other => panic!("expected truncate, got {other:?}"),
            }
        }
    }

    #[test]
    fn outage_schedule_reproduces_byte_for_byte() {
        let a = FaultPlan::new(123, FaultConfig::flaky());
        let b = FaultPlan::new(123, FaultConfig::flaky());
        assert_eq!(
            a.schedule_description(4, 6, 10_000, 500),
            b.schedule_description(4, 6, 10_000, 500)
        );
        let c = FaultPlan::new(124, FaultConfig::flaky());
        assert_ne!(
            a.schedule_description(4, 6, 10_000, 500),
            c.schedule_description(4, 6, 10_000, 500)
        );
    }

    #[test]
    fn outages_land_inside_the_window() {
        let plan = FaultPlan::inert(5);
        let outages = plan.outages(3, 8, 20_000, 1_000);
        assert_eq!(outages.len(), 8);
        for o in &outages {
            assert!(o.victim < 3);
            assert!(o.kill_after_ms <= 20_000);
            assert_eq!(o.downtime_ms, 1_000);
        }
    }

    #[test]
    fn store_hook_maps_frame_faults_to_write_faults() {
        use faucets_store::WriteFault;
        let plan = Arc::new(FaultPlan::new(
            11,
            FaultConfig {
                truncate: 1.0,
                ..FaultConfig::none()
            },
        ));
        let hook = plan.store_hook();
        let frame = [0u8; 32];
        match hook(&frame) {
            WriteFault::Torn { keep } => assert!(keep >= 1 && keep < frame.len()),
            other => panic!("expected a torn write, got {other:?}"),
        }
        // The injection is visible in the plan's shared stats.
        assert_eq!(plan.stats().truncated, 1);

        let inert = Arc::new(FaultPlan::inert(11));
        assert!(matches!(inert.store_hook()(&frame), WriteFault::Deliver));
    }

    #[test]
    fn overload_injection_is_deterministic_and_counted() {
        let cfg = FaultConfig {
            reject: 0.5,
            ..FaultConfig::none()
        };
        let a = FaultPlan::new(21, cfg);
        let b = FaultPlan::new(21, cfg);
        let va: Vec<bool> = (0..64).map(|_| a.inject_overload(b"RequestBid")).collect();
        let vb: Vec<bool> = (0..64).map(|_| b.inject_overload(b"RequestBid")).collect();
        assert_eq!(va, vb, "same seed, same endpoint, same verdicts");
        assert!(va.contains(&true) && va.contains(&false));
        assert_eq!(a.stats().rejected, va.iter().filter(|&&r| r).count() as u64);
        // Frame faults are untouched by admission draws.
        assert_eq!(a.stats().delivered, 0);
        // An inert plan never rejects.
        assert!(!FaultPlan::inert(21).inject_overload(b"RequestBid"));
    }

    #[test]
    #[should_panic(expected = "reject probability")]
    fn out_of_range_reject_probability_rejected() {
        FaultPlan::new(
            1,
            FaultConfig {
                reject: 1.5,
                ..FaultConfig::none()
            },
        );
    }

    #[test]
    #[should_panic(expected = "sum to at most 1")]
    fn overfull_probabilities_rejected() {
        FaultPlan::new(
            1,
            FaultConfig {
                drop: 0.6,
                truncate: 0.6,
                ..FaultConfig::none()
            },
        );
    }
}
