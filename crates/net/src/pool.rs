//! Persistent connection pooling for the RPC client path.
//!
//! The paper sizes the grid at "hundreds of Compute Servers" handling
//! "millions of jobs per day" (§2, §5); at that rate a fresh TCP connect
//! per call is pure overhead, because [`crate::service::serve_with`]
//! already serves frame-by-frame on persistent streams. A [`ConnPool`]
//! keeps health-checked idle sockets per peer and hands them to
//! [`crate::service::call_with`] (see [`crate::service::CallOptions::pool`])
//! so retries, deadlines, breakers, and fault injection all operate
//! unchanged — the pool swaps only where the bytes flow.
//!
//! The safety invariant is *poison on error*: a checked-out stream that saw
//! any failure — a frame fault, a timeout, a short read — is closed, never
//! returned, because a desynchronised stream would pay the next caller the
//! previous caller's reply. Idle sockets are additionally bounded per peer,
//! evicted after [`PoolConfig::idle_ttl`], and health-checked with a
//! non-blocking peek at checkout so a peer that restarted while we were
//! idle costs a reconnect, not an error.
//!
//! Everything the pool does is counted in the caller's metric registry
//! under a `pool` label: `net_pool_{hits,misses,evictions,poisoned}_total`
//! and the `net_pool_open_conns` gauge.

use faucets_telemetry::metrics::Registry;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs for a [`ConnPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Idle sockets kept per peer; a returned socket over the bound is
    /// closed instead of cached.
    pub max_idle_per_peer: usize,
    /// How long an idle socket may sit before eviction. Keep this below
    /// the serve side's read timeout (10 s default): a socket the server
    /// is about to reap is worse than a reconnect.
    pub idle_ttl: Duration,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            max_idle_per_peer: 8,
            idle_ttl: Duration::from_secs(5),
        }
    }
}

/// One idle socket and when it went idle.
struct IdleConn {
    stream: TcpStream,
    since: Instant,
}

/// A pool of persistent, health-checked TCP connections keyed by peer
/// address. Cheap to share: one `Arc<ConnPool>` per client (or daemon)
/// serves every peer that client talks to.
pub struct ConnPool {
    name: &'static str,
    cfg: PoolConfig,
    idle: Mutex<HashMap<SocketAddr, Vec<IdleConn>>>,
    /// Sockets alive through this pool: idle + checked out.
    open: AtomicUsize,
}

impl ConnPool {
    /// A pool named `name` (the telemetry `pool` label) with the given
    /// config.
    pub fn new(name: &'static str, cfg: PoolConfig) -> Self {
        ConnPool {
            name,
            cfg,
            idle: Mutex::new(HashMap::new()),
            open: AtomicUsize::new(0),
        }
    }

    /// The pool's telemetry label.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The pool's tuning knobs.
    pub fn config(&self) -> PoolConfig {
        self.cfg
    }

    /// Sockets currently alive through this pool (idle + checked out).
    pub fn open_connections(&self) -> usize {
        self.open.load(Ordering::SeqCst)
    }

    /// Idle sockets currently cached across all peers.
    pub fn idle_count(&self) -> usize {
        self.idle.lock().unwrap().values().map(|v| v.len()).sum()
    }

    fn labels(&self) -> [(&'static str, &'static str); 1] {
        [("pool", self.name)]
    }

    fn set_open_gauge(&self, reg: &Registry) {
        reg.gauge("net_pool_open_conns", &self.labels())
            .set(self.open.load(Ordering::SeqCst) as f64);
    }

    /// Close a socket the pool owns (evicted, over cap, or poisoned).
    fn discard(&self, stream: TcpStream, reg: &Registry) {
        drop(stream);
        self.open.fetch_sub(1, Ordering::SeqCst);
        self.set_open_gauge(reg);
    }

    /// Is this idle socket still usable? A healthy idle stream has nothing
    /// to read: `peek` must block. `Ok(0)` means the peer closed it;
    /// `Ok(n)` means unsolicited bytes are waiting — a desynchronised
    /// stream we must never hand to a caller.
    fn healthy(stream: &TcpStream) -> bool {
        if stream.set_nonblocking(true).is_err() {
            return false;
        }
        let mut byte = [0u8; 1];
        let usable =
            matches!(stream.peek(&mut byte), Err(e) if e.kind() == io::ErrorKind::WouldBlock);
        usable && stream.set_nonblocking(false).is_ok()
    }

    /// Check out a connection to `addr`: a cached idle socket when a
    /// healthy one exists (most recently used first — warm sockets stay
    /// warm), otherwise a fresh connect within `connect_timeout`.
    pub fn checkout(
        self: &Arc<Self>,
        addr: SocketAddr,
        connect_timeout: Duration,
        reg: &Registry,
    ) -> io::Result<PooledConn> {
        loop {
            let candidate = {
                let mut idle = self.idle.lock().unwrap();
                let Some(peer) = idle.get_mut(&addr) else {
                    break;
                };
                // Expired sockets age from the front (oldest first).
                while peer
                    .first()
                    .is_some_and(|c| c.since.elapsed() > self.cfg.idle_ttl)
                {
                    let dead = peer.remove(0);
                    reg.counter("net_pool_evictions_total", &self.labels())
                        .inc();
                    self.discard(dead.stream, reg);
                }
                peer.pop()
            };
            let Some(candidate) = candidate else { break };
            if Self::healthy(&candidate.stream) {
                reg.counter("net_pool_hits_total", &self.labels()).inc();
                return Ok(PooledConn {
                    stream: Some(candidate.stream),
                    addr,
                    reused: true,
                    pool: Arc::clone(self),
                });
            }
            // Went stale while idle (peer closed or desynced): evict and
            // try the next cached socket.
            reg.counter("net_pool_evictions_total", &self.labels())
                .inc();
            self.discard(candidate.stream, reg);
        }
        self.checkout_fresh(addr, connect_timeout, reg)
    }

    /// Check out a freshly connected socket, bypassing the idle cache.
    pub fn checkout_fresh(
        self: &Arc<Self>,
        addr: SocketAddr,
        connect_timeout: Duration,
        reg: &Registry,
    ) -> io::Result<PooledConn> {
        reg.counter("net_pool_misses_total", &self.labels()).inc();
        let stream = TcpStream::connect_timeout(&addr, connect_timeout)?;
        self.open.fetch_add(1, Ordering::SeqCst);
        self.set_open_gauge(reg);
        Ok(PooledConn {
            stream: Some(stream),
            addr,
            reused: false,
            pool: Arc::clone(self),
        })
    }
}

/// A connection checked out of a [`ConnPool`]. Exactly one of three things
/// must happen to it: [`PooledConn::give_back`] after a clean round-trip,
/// [`PooledConn::poison`] after any failure, or a plain drop (which closes
/// the socket — the safe default for code paths that bail early).
pub struct PooledConn {
    stream: Option<TcpStream>,
    addr: SocketAddr,
    reused: bool,
    pool: Arc<ConnPool>,
}

impl PooledConn {
    /// The live stream.
    pub fn stream(&mut self) -> &mut TcpStream {
        self.stream.as_mut().expect("stream taken")
    }

    /// Whether this socket came out of the idle cache (vs a fresh
    /// connect). A reused socket that fails with a disconnect may be
    /// retried once on a fresh one — see `call_with`.
    pub fn reused(&self) -> bool {
        self.reused
    }

    /// Return a healthy socket to the pool for reuse. Over the per-peer
    /// idle bound the socket is closed instead (counted as an eviction).
    pub fn give_back(mut self, reg: &Registry) {
        let Some(stream) = self.stream.take() else {
            return;
        };
        let mut idle = self.pool.idle.lock().unwrap();
        let peer = idle.entry(self.addr).or_default();
        if peer.len() >= self.pool.cfg.max_idle_per_peer.max(1) {
            drop(idle);
            reg.counter("net_pool_evictions_total", &self.pool.labels())
                .inc();
            self.pool.discard(stream, reg);
            return;
        }
        peer.push(IdleConn {
            stream,
            since: Instant::now(),
        });
    }

    /// Close a socket that saw a failure. It must never be reused: after a
    /// frame fault or timeout the stream may hold half a frame, and the
    /// next caller would read the previous caller's bytes.
    pub fn poison(mut self, reg: &Registry) {
        if let Some(stream) = self.stream.take() {
            reg.counter("net_pool_poisoned_total", &self.pool.labels())
                .inc();
            self.pool.discard(stream, reg);
        }
    }
}

impl Drop for PooledConn {
    fn drop(&mut self) {
        // Neither returned nor poisoned: close the socket and fix the
        // count. (No registry here, so the gauge catches up on the next
        // counted pool operation.)
        if self.stream.take().is_some() {
            self.pool.open.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pool(cfg: PoolConfig) -> Arc<ConnPool> {
        Arc::new(ConnPool::new("test", cfg))
    }

    const CONNECT: Duration = Duration::from_millis(500);

    #[test]
    fn second_checkout_reuses_the_first_socket() {
        // The listener's accept queue completes handshakes without an
        // accept loop, which is all the pool's health check needs.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reg = Registry::new();
        let p = pool(PoolConfig::default());
        let mut c1 = p.checkout(addr, CONNECT, &reg).unwrap();
        let first_port = c1.stream().local_addr().unwrap().port();
        assert!(!c1.reused());
        c1.give_back(&reg);
        assert_eq!(p.idle_count(), 1);
        let mut c2 = p.checkout(addr, CONNECT, &reg).unwrap();
        assert!(c2.reused(), "idle socket reused");
        assert_eq!(
            c2.stream().local_addr().unwrap().port(),
            first_port,
            "the very same socket came back"
        );
        assert_eq!(p.open_connections(), 1, "no second connect happened");
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter_sum("net_pool_hits_total", &[("pool", "test")]),
            1
        );
        assert_eq!(snap.counter_sum("net_pool_misses_total", &[]), 1);
    }

    #[test]
    fn expired_idle_sockets_are_evicted() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reg = Registry::new();
        let p = pool(PoolConfig {
            idle_ttl: Duration::from_millis(20),
            ..PoolConfig::default()
        });
        let c = p.checkout(addr, CONNECT, &reg).unwrap();
        c.give_back(&reg);
        std::thread::sleep(Duration::from_millis(60));
        let c2 = p.checkout(addr, CONNECT, &reg).unwrap();
        assert!(!c2.reused(), "expired socket must not be reused");
        let snap = reg.snapshot();
        assert_eq!(snap.counter_sum("net_pool_evictions_total", &[]), 1);
        assert_eq!(snap.counter_sum("net_pool_misses_total", &[]), 2);
        assert_eq!(p.open_connections(), 1, "the evicted socket was closed");
    }

    #[test]
    fn peer_closing_an_idle_socket_is_detected_at_checkout() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reg = Registry::new();
        let p = pool(PoolConfig::default());
        let c = p.checkout(addr, CONNECT, &reg).unwrap();
        c.give_back(&reg);
        // The peer accepts and immediately closes — a server restart or
        // idle reap from the pool's point of view.
        let (accepted, _) = listener.accept().unwrap();
        drop(accepted);
        // The FIN races our checkout: poll until the health check
        // observes the dead socket instead of hoping a fixed grace
        // period outruns the kernel.
        let deadline = Instant::now() + Duration::from_secs(5);
        let c2 = loop {
            let c2 = p.checkout(addr, CONNECT, &reg).unwrap();
            if !c2.reused() {
                break c2;
            }
            assert!(Instant::now() < deadline, "FIN never observed");
            c2.give_back(&reg);
            std::thread::sleep(Duration::from_millis(2));
        };
        assert!(!c2.reused(), "a dead socket failed the health check");
        let snap = reg.snapshot();
        assert_eq!(snap.counter_sum("net_pool_evictions_total", &[]), 1);
        assert_eq!(p.open_connections(), 1);
    }

    #[test]
    fn idle_cache_is_bounded_per_peer() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reg = Registry::new();
        let p = pool(PoolConfig {
            max_idle_per_peer: 2,
            ..PoolConfig::default()
        });
        let conns: Vec<PooledConn> = (0..3)
            .map(|_| p.checkout(addr, CONNECT, &reg).unwrap())
            .collect();
        assert_eq!(p.open_connections(), 3);
        for c in conns {
            c.give_back(&reg);
        }
        assert_eq!(p.idle_count(), 2, "cache capped at the per-peer bound");
        assert_eq!(p.open_connections(), 2, "the overflow socket was closed");
    }

    #[test]
    fn poison_closes_and_counts() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reg = Registry::new();
        let p = pool(PoolConfig::default());
        let c = p.checkout(addr, CONNECT, &reg).unwrap();
        c.poison(&reg);
        assert_eq!(p.open_connections(), 0);
        assert_eq!(p.idle_count(), 0);
        let snap = reg.snapshot();
        assert_eq!(snap.counter_sum("net_pool_poisoned_total", &[]), 1);
        assert_eq!(snap.gauge_sum("net_pool_open_conns", &[]), 0.0);
        // The next checkout gets a fresh socket, not the poisoned one.
        let c2 = p.checkout(addr, CONNECT, &reg).unwrap();
        assert!(!c2.reused());
    }

    #[test]
    fn plain_drop_closes_the_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reg = Registry::new();
        let p = pool(PoolConfig::default());
        let c = p.checkout(addr, CONNECT, &reg).unwrap();
        drop(c);
        assert_eq!(p.open_connections(), 0);
        assert_eq!(p.idle_count(), 0);
    }
}
