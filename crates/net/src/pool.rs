//! Persistent connection pooling for the RPC client path.
//!
//! The paper sizes the grid at "hundreds of Compute Servers" handling
//! "millions of jobs per day" (§2, §5); at that rate a fresh TCP connect
//! per call is pure overhead, because [`crate::service::serve_with`]
//! already serves frame-by-frame on persistent streams. A [`ConnPool`]
//! keeps health-checked idle sockets per peer and hands them to
//! [`crate::service::call_with`] (see [`crate::service::CallOptions::pool`])
//! so retries, deadlines, breakers, and fault injection all operate
//! unchanged — the pool swaps only where the bytes flow.
//!
//! The safety invariant is *poison on error*: a checked-out stream that saw
//! any failure — a frame fault, a timeout, a short read — is closed, never
//! returned, because a desynchronised stream would pay the next caller the
//! previous caller's reply. Idle sockets are additionally bounded per peer,
//! evicted after [`PoolConfig::idle_ttl`], and health-checked with a
//! non-blocking peek at checkout so a peer that restarted while we were
//! idle costs a reconnect, not an error.
//!
//! Everything the pool does is counted in the caller's metric registry
//! under a `pool` label: `net_pool_{hits,misses,evictions,poisoned}_total`
//! and the `net_pool_open_conns` gauge.

use faucets_telemetry::metrics::Registry;
use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::{Duration, Instant};

/// Tuning knobs for a [`ConnPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Idle sockets kept per peer; a returned socket over the bound is
    /// closed instead of cached.
    pub max_idle_per_peer: usize,
    /// How long an idle socket may sit before eviction. Keep this below
    /// the serve side's read timeout (10 s default): a socket the server
    /// is about to reap is worse than a reconnect.
    pub idle_ttl: Duration,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            max_idle_per_peer: 8,
            idle_ttl: Duration::from_secs(5),
        }
    }
}

/// One idle socket and when it went idle.
struct IdleConn {
    stream: TcpStream,
    since: Instant,
}

/// A pool of persistent, health-checked TCP connections keyed by peer
/// address. Cheap to share: one `Arc<ConnPool>` per client (or daemon)
/// serves every peer that client talks to.
pub struct ConnPool {
    name: &'static str,
    cfg: PoolConfig,
    idle: Mutex<HashMap<SocketAddr, Vec<IdleConn>>>,
    /// Sockets alive through this pool: idle + checked out.
    open: AtomicUsize,
}

impl ConnPool {
    /// A pool named `name` (the telemetry `pool` label) with the given
    /// config.
    pub fn new(name: &'static str, cfg: PoolConfig) -> Self {
        ConnPool {
            name,
            cfg,
            idle: Mutex::new(HashMap::new()),
            open: AtomicUsize::new(0),
        }
    }

    /// The pool's telemetry label.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The pool's tuning knobs.
    pub fn config(&self) -> PoolConfig {
        self.cfg
    }

    /// Sockets currently alive through this pool (idle + checked out).
    pub fn open_connections(&self) -> usize {
        self.open.load(Ordering::SeqCst)
    }

    /// Idle sockets currently cached across all peers.
    pub fn idle_count(&self) -> usize {
        self.idle.lock().unwrap().values().map(|v| v.len()).sum()
    }

    fn labels(&self) -> [(&'static str, &'static str); 1] {
        [("pool", self.name)]
    }

    fn set_open_gauge(&self, reg: &Registry) {
        reg.gauge("net_pool_open_conns", &self.labels())
            .set(self.open.load(Ordering::SeqCst) as f64);
    }

    /// Close a socket the pool owns (evicted, over cap, or poisoned).
    fn discard(&self, stream: TcpStream, reg: &Registry) {
        drop(stream);
        self.open.fetch_sub(1, Ordering::SeqCst);
        self.set_open_gauge(reg);
    }

    /// Is this idle socket still usable? A healthy idle stream has nothing
    /// to read: `peek` must block. `Ok(0)` means the peer closed it;
    /// `Ok(n)` means unsolicited bytes are waiting — a desynchronised
    /// stream we must never hand to a caller.
    fn healthy(stream: &TcpStream) -> bool {
        if stream.set_nonblocking(true).is_err() {
            return false;
        }
        let mut byte = [0u8; 1];
        let usable =
            matches!(stream.peek(&mut byte), Err(e) if e.kind() == io::ErrorKind::WouldBlock);
        usable && stream.set_nonblocking(false).is_ok()
    }

    /// Check out a connection to `addr`: a cached idle socket when a
    /// healthy one exists (most recently used first — warm sockets stay
    /// warm), otherwise a fresh connect within `connect_timeout`.
    pub fn checkout(
        self: &Arc<Self>,
        addr: SocketAddr,
        connect_timeout: Duration,
        reg: &Registry,
    ) -> io::Result<PooledConn> {
        loop {
            let candidate = {
                let mut idle = self.idle.lock().unwrap();
                let Some(peer) = idle.get_mut(&addr) else {
                    break;
                };
                // Expired sockets age from the front (oldest first).
                while peer
                    .first()
                    .is_some_and(|c| c.since.elapsed() > self.cfg.idle_ttl)
                {
                    let dead = peer.remove(0);
                    reg.counter("net_pool_evictions_total", &self.labels())
                        .inc();
                    self.discard(dead.stream, reg);
                }
                peer.pop()
            };
            let Some(candidate) = candidate else { break };
            if Self::healthy(&candidate.stream) {
                reg.counter("net_pool_hits_total", &self.labels()).inc();
                return Ok(PooledConn {
                    stream: Some(candidate.stream),
                    addr,
                    reused: true,
                    pool: Arc::clone(self),
                });
            }
            // Went stale while idle (peer closed or desynced): evict and
            // try the next cached socket.
            reg.counter("net_pool_evictions_total", &self.labels())
                .inc();
            self.discard(candidate.stream, reg);
        }
        self.checkout_fresh(addr, connect_timeout, reg)
    }

    /// Check out a freshly connected socket, bypassing the idle cache.
    pub fn checkout_fresh(
        self: &Arc<Self>,
        addr: SocketAddr,
        connect_timeout: Duration,
        reg: &Registry,
    ) -> io::Result<PooledConn> {
        reg.counter("net_pool_misses_total", &self.labels()).inc();
        let stream = TcpStream::connect_timeout(&addr, connect_timeout)?;
        self.open.fetch_add(1, Ordering::SeqCst);
        self.set_open_gauge(reg);
        Ok(PooledConn {
            stream: Some(stream),
            addr,
            reused: false,
            pool: Arc::clone(self),
        })
    }
}

/// A connection checked out of a [`ConnPool`]. Exactly one of three things
/// must happen to it: [`PooledConn::give_back`] after a clean round-trip,
/// [`PooledConn::poison`] after any failure, or a plain drop (which closes
/// the socket — the safe default for code paths that bail early).
pub struct PooledConn {
    stream: Option<TcpStream>,
    addr: SocketAddr,
    reused: bool,
    pool: Arc<ConnPool>,
}

impl PooledConn {
    /// The live stream.
    pub fn stream(&mut self) -> &mut TcpStream {
        self.stream.as_mut().expect("stream taken")
    }

    /// Whether this socket came out of the idle cache (vs a fresh
    /// connect). A reused socket that fails with a disconnect may be
    /// retried once on a fresh one — see `call_with`.
    pub fn reused(&self) -> bool {
        self.reused
    }

    /// Return a healthy socket to the pool for reuse. Over the per-peer
    /// idle bound the socket is closed instead (counted as an eviction).
    pub fn give_back(mut self, reg: &Registry) {
        let Some(stream) = self.stream.take() else {
            return;
        };
        let mut idle = self.pool.idle.lock().unwrap();
        let peer = idle.entry(self.addr).or_default();
        if peer.len() >= self.pool.cfg.max_idle_per_peer.max(1) {
            drop(idle);
            reg.counter("net_pool_evictions_total", &self.pool.labels())
                .inc();
            self.pool.discard(stream, reg);
            return;
        }
        peer.push(IdleConn {
            stream,
            since: Instant::now(),
        });
    }

    /// Close a socket that saw a failure. It must never be reused: after a
    /// frame fault or timeout the stream may hold half a frame, and the
    /// next caller would read the previous caller's bytes.
    pub fn poison(mut self, reg: &Registry) {
        if let Some(stream) = self.stream.take() {
            reg.counter("net_pool_poisoned_total", &self.pool.labels())
                .inc();
            self.pool.discard(stream, reg);
        }
    }
}

impl Drop for PooledConn {
    fn drop(&mut self) {
        // Neither returned nor poisoned: close the socket and fix the
        // count. (No registry here, so the gauge catches up on the next
        // counted pool operation.)
        if self.stream.take().is_some() {
            self.pool.open.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

// ---------------------------------------------------------------------------
// Multiplexed connections: many requests in flight per socket
// ---------------------------------------------------------------------------

/// Tuning knobs for a [`MuxPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MuxConfig {
    /// Shared connections dialed per peer before calls start queueing on
    /// the least-loaded one.
    pub conns_per_peer: usize,
    /// Soft in-flight target per connection: checkout prefers a
    /// connection under this, and dials a new one (up to
    /// `conns_per_peer`) when every existing one is at or over it.
    pub max_inflight_per_conn: usize,
}

impl Default for MuxConfig {
    fn default() -> Self {
        MuxConfig {
            conns_per_peer: 2,
            max_inflight_per_conn: 128,
        }
    }
}

/// The completion slot a multiplexed caller waits on. `Ticket::id` is the
/// `request_id` stamped into the request envelope; the reader thread (or
/// [`PendingMap::fail_all`]) fills the slot and wakes the waiter.
///
/// A ticket dropped without [`PendingMap::wait`] cleans up after itself:
/// its id is abandoned (the late reply becomes an orphan, not a leaked
/// slot) and any in-flight accounting it carries is released — a caller
/// that panics mid-batch must not leave ids registered and the connection
/// looking loaded forever.
pub struct Ticket {
    id: u64,
    slot: Arc<Slot>,
    pending: Weak<PendingMap>,
    /// The owning connection's in-flight counter, once this ticket is
    /// counted in it (set by the mux layer after a successful send).
    inflight: Weak<AtomicUsize>,
    /// Cleared when `wait` consumes the ticket: from then on the explicit
    /// abandon/decrement paths own the bookkeeping.
    armed: bool,
}

impl Ticket {
    /// The request id this ticket is waiting for.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Tie this ticket to a connection's in-flight counter so a drop
    /// without `wait` releases the slot it occupies.
    fn track_inflight(&mut self, counter: &Arc<AtomicUsize>) {
        self.inflight = Arc::downgrade(counter);
    }
}

impl Drop for Ticket {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        if let Some(pending) = self.pending.upgrade() {
            pending.abandon(self.id);
        }
        if let Some(inflight) = self.inflight.upgrade() {
            inflight.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

struct Slot {
    state: parking_lot::Mutex<Option<Result<crate::proto::Response, String>>>,
    cv: parking_lot::Condvar,
}

/// Out-of-order response matching: each in-flight request registers a
/// slot under its `request_id`; whoever holds the matching id completes
/// exactly that slot. Ids make interleaving safe — a late or reordered
/// response can only ever reach its own caller, never cross wires. Pure
/// bookkeeping (no sockets), so its matching laws are property-tested
/// directly in `tests/proptest_pipeline.rs`.
#[derive(Default)]
pub struct PendingMap {
    slots: parking_lot::Mutex<HashMap<u64, Arc<Slot>>>,
}

impl PendingMap {
    /// An empty map with nothing in flight.
    pub fn new() -> PendingMap {
        PendingMap::default()
    }

    /// Register a waiter for `id`. Panics if `id` is already in flight
    /// (callers allocate ids from an atomic counter, so a collision is a
    /// bug, not a race).
    pub fn register(self: &Arc<Self>, id: u64) -> Ticket {
        let slot = Arc::new(Slot {
            state: parking_lot::Mutex::new(None),
            cv: parking_lot::Condvar::new(),
        });
        let prev = self.slots.lock().insert(id, Arc::clone(&slot));
        assert!(prev.is_none(), "request id {id} registered twice");
        Ticket {
            id,
            slot,
            pending: Arc::downgrade(self),
            inflight: Weak::new(),
            armed: true,
        }
    }

    /// Deliver the response for `id`. Returns `false` (an orphan) when no
    /// waiter is registered — the caller already timed out and abandoned
    /// the id, or never existed.
    pub fn complete(&self, id: u64, resp: crate::proto::Response) -> bool {
        let Some(slot) = self.slots.lock().remove(&id) else {
            return false;
        };
        *slot.state.lock() = Some(Ok(resp));
        slot.cv.notify_all();
        true
    }

    /// Fail every in-flight request (connection lost): each waiter gets a
    /// typed disconnect error, never another caller's bytes.
    pub fn fail_all(&self, why: &str) {
        let drained: Vec<Arc<Slot>> = self.slots.lock().drain().map(|(_, s)| s).collect();
        for slot in drained {
            *slot.state.lock() = Some(Err(why.to_string()));
            slot.cv.notify_all();
        }
    }

    /// Abandon a ticket (caller timed out): the id is deregistered so a
    /// late response counts as an orphan instead of filling a dead slot.
    pub fn abandon(&self, id: u64) {
        self.slots.lock().remove(&id);
    }

    /// In-flight request count.
    pub fn len(&self) -> usize {
        self.slots.lock().len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Block until the ticket's slot fills or `timeout` passes. On
    /// timeout the id is abandoned; a response that arrives later is an
    /// orphan, not a wrong answer for the next request.
    pub fn wait(
        &self,
        mut ticket: Ticket,
        timeout: Duration,
    ) -> io::Result<crate::proto::Response> {
        // `wait` consumes the ticket on every path below; its drop must
        // not also abandon the id or release in-flight accounting.
        ticket.armed = false;
        let deadline = Instant::now() + timeout;
        {
            let mut state = ticket.slot.state.lock();
            while state.is_none() {
                if ticket.slot.cv.wait_until(&mut state, deadline).timed_out() {
                    break;
                }
            }
            match state.take() {
                Some(Ok(resp)) => return Ok(resp),
                Some(Err(why)) => {
                    return Err(io::Error::new(io::ErrorKind::ConnectionAborted, why))
                }
                None => {}
            }
        }
        self.abandon(ticket.id);
        Err(io::Error::new(
            io::ErrorKind::TimedOut,
            "no reply within the read timeout (the request may still complete remotely)",
        ))
    }
}

/// One multiplexed connection: a writer half shared under a mutex (frames
/// are written atomically, many callers interleaved), a dedicated reader
/// thread that demultiplexes responses back to their callers by
/// `request_id`, and the [`PendingMap`] tying them together. Any transport
/// failure kills the whole connection and fails every in-flight call with
/// a typed disconnect.
pub struct MuxConn {
    writer: Mutex<TcpStream>,
    pending: Arc<PendingMap>,
    next_id: std::sync::atomic::AtomicU64,
    inflight: Arc<AtomicUsize>,
    dead: Arc<std::sync::atomic::AtomicBool>,
}

impl MuxConn {
    fn dial(
        addr: SocketAddr,
        pool_name: &'static str,
        connect: Duration,
        write_timeout: Duration,
        faults: Option<Arc<crate::fault::FaultPlan>>,
        registry: Option<Arc<Registry>>,
    ) -> io::Result<Arc<MuxConn>> {
        let stream = TcpStream::connect_timeout(&addr, connect)?;
        stream.set_nodelay(true)?;
        stream.set_write_timeout(Some(write_timeout))?;
        let reader = stream.try_clone()?;
        // The reader blocks until frames arrive or the socket dies; no
        // read timeout, in-flight callers bound their own waits.
        reader.set_read_timeout(None)?;
        let pending = Arc::new(PendingMap::new());
        let inflight = Arc::new(AtomicUsize::new(0));
        let dead = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let conn = Arc::new(MuxConn {
            writer: Mutex::new(stream),
            pending: Arc::clone(&pending),
            next_id: std::sync::atomic::AtomicU64::new(1),
            inflight: Arc::clone(&inflight),
            dead: Arc::clone(&dead),
        });
        let labels_pool = pool_name;
        std::thread::Builder::new()
            .name(format!("faucets-mux-{addr}"))
            .spawn(move || mux_reader_loop(reader, pending, dead, faults, registry, labels_pool))?;
        Ok(conn)
    }

    /// Transport failure or reader exit: no new requests may start here.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    /// Requests currently awaiting a response on this connection.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::SeqCst)
    }

    /// Kill the connection: shutting the socket down pops the reader out
    /// of its blocking read, which marks the connection dead and fails
    /// every in-flight call.
    fn kill(&self) {
        self.dead.store(true, Ordering::SeqCst);
        let _ = self
            .writer
            .lock()
            .unwrap()
            .shutdown(std::net::Shutdown::Both);
    }

    /// Stamp, serialize, and send one request; returns the ticket to wait
    /// on. A fault plan may "lose" the frame (nothing written, ticket
    /// still returned — the caller's wait times out, as on a real lossy
    /// wire).
    fn begin(
        &self,
        req: &crate::proto::Request,
        opts: &crate::service::CallOptions,
        deadline: Option<Instant>,
    ) -> io::Result<Ticket> {
        if self.is_dead() {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "mux connection is dead",
            ));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let ticket = self.pending.register(id);
        let env = crate::service::EnvelopeRef {
            ctx: faucets_telemetry::trace::current(),
            deadline_ms: crate::service::remaining_ms(deadline),
            request_id: Some(id),
            msg: req,
        };
        let mut frame = Vec::new();
        if let Err(e) = crate::proto::write_frame_with(&mut frame, &env, opts.faults.as_deref()) {
            // Dropping `ticket` abandons the id.
            return Err(e.into());
        }
        if !frame.is_empty() {
            let mut w = self.writer.lock().unwrap();
            if let Err(e) = w.write_all(&frame) {
                drop(w);
                self.kill();
                return Err(e);
            }
        }
        Ok(ticket)
    }

    /// Stamp and serialize a whole batch, then push every frame in one
    /// vectored write burst — the pipelining hot path: one syscall (plus
    /// short-write continuations) for N requests.
    pub(crate) fn begin_batch(
        &self,
        reqs: &[crate::proto::Request],
        opts: &crate::service::CallOptions,
        deadline: Option<Instant>,
    ) -> io::Result<Vec<Ticket>> {
        if self.is_dead() {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "mux connection is dead",
            ));
        }
        let faults = opts.faults.as_deref();
        let ctx = faucets_telemetry::trace::current();
        let deadline_ms = crate::service::remaining_ms(deadline);
        let mut tickets = Vec::with_capacity(reqs.len());
        let mut frames: Vec<Vec<u8>> = Vec::with_capacity(reqs.len());
        for req in reqs {
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            let env = crate::service::EnvelopeRef {
                ctx,
                deadline_ms,
                request_id: Some(id),
                msg: req,
            };
            let mut frame = Vec::new();
            if let Err(e) = crate::proto::write_frame_with(&mut frame, &env, faults) {
                // Dropping `tickets` abandons every registered id.
                return Err(e.into());
            }
            tickets.push(self.pending.register(id));
            if !frame.is_empty() {
                frames.push(frame);
            }
        }
        let mut w = self.writer.lock().unwrap();
        if let Err(e) = write_all_vectored(&mut w, &frames) {
            drop(w);
            self.kill();
            return Err(e);
        }
        drop(w);
        // Every ticket is now in flight; `wait` decrements one by one,
        // and a ticket the caller drops instead releases its own slot.
        self.inflight.fetch_add(tickets.len(), Ordering::SeqCst);
        for t in &mut tickets {
            t.track_inflight(&self.inflight);
        }
        Ok(tickets)
    }

    /// Wait out one ticket under the caller's read timeout.
    pub(crate) fn wait(
        &self,
        ticket: Ticket,
        opts: &crate::service::CallOptions,
    ) -> io::Result<crate::proto::Response> {
        let out = self.pending.wait(ticket, opts.timeouts.read);
        self.inflight.fetch_sub(1, Ordering::SeqCst);
        out
    }

    /// One request/response exchange: begin, then wait.
    pub(crate) fn round_trip(
        &self,
        req: &crate::proto::Request,
        opts: &crate::service::CallOptions,
        deadline: Option<Instant>,
    ) -> io::Result<crate::proto::Response> {
        self.inflight.fetch_add(1, Ordering::SeqCst);
        match self.begin(req, opts, deadline) {
            Ok(mut ticket) => {
                ticket.track_inflight(&self.inflight);
                self.wait(ticket, opts)
            }
            Err(e) => {
                self.inflight.fetch_sub(1, Ordering::SeqCst);
                Err(e)
            }
        }
    }
}

/// Write every buffer with `write_vectored`, continuing across short
/// writes. The frames boundary-pack into as few syscalls as the kernel
/// allows (up to 64 iovecs at a time).
fn write_all_vectored(w: &mut TcpStream, bufs: &[Vec<u8>]) -> io::Result<()> {
    let total: usize = bufs.iter().map(|b| b.len()).sum();
    let mut written = 0usize;
    while written < total {
        let mut slices: Vec<io::IoSlice<'_>> = Vec::with_capacity(bufs.len().min(64));
        let mut skip = written;
        for b in bufs {
            if skip >= b.len() {
                skip -= b.len();
                continue;
            }
            slices.push(io::IoSlice::new(&b[skip..]));
            skip = 0;
            if slices.len() == 64 {
                break;
            }
        }
        match w.write_vectored(&slices) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "vectored write made no progress",
                ))
            }
            Ok(n) => written += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

fn mux_reader_loop(
    mut reader: TcpStream,
    pending: Arc<PendingMap>,
    dead: Arc<std::sync::atomic::AtomicBool>,
    faults: Option<Arc<crate::fault::FaultPlan>>,
    registry: Option<Arc<Registry>>,
    pool_name: &'static str,
) {
    use crate::proto::{read_frame_with, Envelope, Response};
    let reg = registry
        .as_deref()
        .unwrap_or_else(|| faucets_telemetry::metrics::global());
    let labels = [("pool", pool_name)];
    let why = loop {
        match read_frame_with::<_, Envelope<Response>>(&mut reader, faults.as_deref()) {
            Ok(Some(env)) => match env.request_id {
                Some(id) => {
                    if !pending.complete(id, env.msg) {
                        // The caller timed out and abandoned the id; the
                        // late reply is discarded, never mis-delivered.
                        reg.counter("net_mux_orphans_total", &labels).inc();
                    }
                }
                // A response with no id cannot be matched to a caller —
                // the peer predates multiplexing or the stream is
                // desynchronized. Fail everything rather than guess.
                None => break "mux peer answered without a request id",
            },
            Ok(None) => break "mux connection closed by peer",
            Err(_) => break "mux connection lost",
        }
    };
    dead.store(true, Ordering::SeqCst);
    let _ = reader.shutdown(std::net::Shutdown::Both);
    pending.fail_all(why);
    reg.counter("net_mux_conn_failures_total", &labels).inc();
    reg.gauge("net_mux_open_conns", &labels).add(-1.0);
}

/// A pool of [`MuxConn`]s keyed by peer: calls check out the least-loaded
/// live connection (dialing up to [`MuxConfig::conns_per_peer`]), stamp a
/// `request_id`, and wait on the [`PendingMap`] while other callers'
/// frames interleave on the same socket. Share one `Arc<MuxPool>` per
/// client — see [`crate::service::CallOptions::mux`] and
/// [`crate::service::call_batch`].
pub struct MuxPool {
    name: &'static str,
    cfg: MuxConfig,
    peers: Mutex<HashMap<SocketAddr, Vec<Arc<MuxConn>>>>,
}

impl MuxPool {
    /// An empty pool; `name` labels its metrics.
    pub fn new(name: &'static str, cfg: MuxConfig) -> MuxPool {
        MuxPool {
            name,
            cfg,
            peers: Mutex::new(HashMap::new()),
        }
    }

    /// The label this pool's metrics are counted under.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Live (non-dead) connections across all peers.
    pub fn open_connections(&self) -> usize {
        self.peers
            .lock()
            .unwrap()
            .values()
            .map(|v| v.iter().filter(|c| !c.is_dead()).count())
            .sum()
    }

    /// Check out a live connection to `addr`, dialing if the peer has
    /// none (or all existing ones are saturated and there is dial budget
    /// left). Returns the connection and whether it was reused — fresh
    /// dials report `false`, which gates the caller's one-shot stale
    /// retry exactly as [`ConnPool`] checkouts do.
    pub(crate) fn checkout(
        &self,
        addr: SocketAddr,
        opts: &crate::service::CallOptions,
        reg: &Registry,
    ) -> io::Result<(Arc<MuxConn>, bool)> {
        let labels = [("pool", self.name)];
        {
            let mut peers = self.peers.lock().unwrap();
            let conns = peers.entry(addr).or_default();
            conns.retain(|c| !c.is_dead());
            // Prefer a connection with headroom; dial only when all
            // existing ones are at the soft in-flight target and the
            // per-peer budget allows one more.
            let budget = self.cfg.conns_per_peer.max(1);
            let best = conns.iter().min_by_key(|c| c.inflight()).map(Arc::clone);
            if let Some(best) = best {
                if best.inflight() < self.cfg.max_inflight_per_conn || conns.len() >= budget {
                    reg.counter("net_mux_hits_total", &labels).inc();
                    return Ok((best, true));
                }
            }
        }
        // Dial with the pool lock released: one slow or unreachable peer
        // must not stall every other peer's checkout for its whole
        // connect timeout. Callers racing here may both dial — the
        // occasional connection over the per-peer budget is tolerated
        // (it still serves traffic and is reaped with the rest when it
        // dies) in exchange for never serializing the pool on one dial.
        let conn = MuxConn::dial(
            addr,
            self.name,
            opts.connect,
            opts.timeouts.write,
            opts.faults.clone(),
            opts.registry.clone(),
        )?;
        reg.counter("net_mux_dials_total", &labels).inc();
        reg.gauge("net_mux_open_conns", &labels).add(1.0);
        let mut peers = self.peers.lock().unwrap();
        let conns = peers.entry(addr).or_default();
        conns.retain(|c| !c.is_dead());
        conns.push(Arc::clone(&conn));
        Ok((conn, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pool(cfg: PoolConfig) -> Arc<ConnPool> {
        Arc::new(ConnPool::new("test", cfg))
    }

    const CONNECT: Duration = Duration::from_millis(500);

    #[test]
    fn second_checkout_reuses_the_first_socket() {
        // The listener's accept queue completes handshakes without an
        // accept loop, which is all the pool's health check needs.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reg = Registry::new();
        let p = pool(PoolConfig::default());
        let mut c1 = p.checkout(addr, CONNECT, &reg).unwrap();
        let first_port = c1.stream().local_addr().unwrap().port();
        assert!(!c1.reused());
        c1.give_back(&reg);
        assert_eq!(p.idle_count(), 1);
        let mut c2 = p.checkout(addr, CONNECT, &reg).unwrap();
        assert!(c2.reused(), "idle socket reused");
        assert_eq!(
            c2.stream().local_addr().unwrap().port(),
            first_port,
            "the very same socket came back"
        );
        assert_eq!(p.open_connections(), 1, "no second connect happened");
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter_sum("net_pool_hits_total", &[("pool", "test")]),
            1
        );
        assert_eq!(snap.counter_sum("net_pool_misses_total", &[]), 1);
    }

    #[test]
    fn expired_idle_sockets_are_evicted() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reg = Registry::new();
        let p = pool(PoolConfig {
            idle_ttl: Duration::from_millis(20),
            ..PoolConfig::default()
        });
        let c = p.checkout(addr, CONNECT, &reg).unwrap();
        c.give_back(&reg);
        std::thread::sleep(Duration::from_millis(60));
        let c2 = p.checkout(addr, CONNECT, &reg).unwrap();
        assert!(!c2.reused(), "expired socket must not be reused");
        let snap = reg.snapshot();
        assert_eq!(snap.counter_sum("net_pool_evictions_total", &[]), 1);
        assert_eq!(snap.counter_sum("net_pool_misses_total", &[]), 2);
        assert_eq!(p.open_connections(), 1, "the evicted socket was closed");
    }

    #[test]
    fn peer_closing_an_idle_socket_is_detected_at_checkout() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reg = Registry::new();
        let p = pool(PoolConfig::default());
        let c = p.checkout(addr, CONNECT, &reg).unwrap();
        c.give_back(&reg);
        // The peer accepts and immediately closes — a server restart or
        // idle reap from the pool's point of view.
        let (accepted, _) = listener.accept().unwrap();
        drop(accepted);
        // The FIN races our checkout: poll until the health check
        // observes the dead socket instead of hoping a fixed grace
        // period outruns the kernel.
        let deadline = Instant::now() + Duration::from_secs(5);
        let c2 = loop {
            let c2 = p.checkout(addr, CONNECT, &reg).unwrap();
            if !c2.reused() {
                break c2;
            }
            assert!(Instant::now() < deadline, "FIN never observed");
            c2.give_back(&reg);
            std::thread::sleep(Duration::from_millis(2));
        };
        assert!(!c2.reused(), "a dead socket failed the health check");
        let snap = reg.snapshot();
        assert_eq!(snap.counter_sum("net_pool_evictions_total", &[]), 1);
        assert_eq!(p.open_connections(), 1);
    }

    #[test]
    fn idle_cache_is_bounded_per_peer() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reg = Registry::new();
        let p = pool(PoolConfig {
            max_idle_per_peer: 2,
            ..PoolConfig::default()
        });
        let conns: Vec<PooledConn> = (0..3)
            .map(|_| p.checkout(addr, CONNECT, &reg).unwrap())
            .collect();
        assert_eq!(p.open_connections(), 3);
        for c in conns {
            c.give_back(&reg);
        }
        assert_eq!(p.idle_count(), 2, "cache capped at the per-peer bound");
        assert_eq!(p.open_connections(), 2, "the overflow socket was closed");
    }

    #[test]
    fn poison_closes_and_counts() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reg = Registry::new();
        let p = pool(PoolConfig::default());
        let c = p.checkout(addr, CONNECT, &reg).unwrap();
        c.poison(&reg);
        assert_eq!(p.open_connections(), 0);
        assert_eq!(p.idle_count(), 0);
        let snap = reg.snapshot();
        assert_eq!(snap.counter_sum("net_pool_poisoned_total", &[]), 1);
        assert_eq!(snap.gauge_sum("net_pool_open_conns", &[]), 0.0);
        // The next checkout gets a fresh socket, not the poisoned one.
        let c2 = p.checkout(addr, CONNECT, &reg).unwrap();
        assert!(!c2.reused());
    }

    #[test]
    fn dropped_batch_tickets_release_inflight_and_ids() {
        // The listener's backlog completes the handshake; nobody ever
        // reads, which is fine — this exercises send-side bookkeeping.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let conn = MuxConn::dial(
            addr,
            "drop-test",
            CONNECT,
            Duration::from_secs(1),
            None,
            None,
        )
        .unwrap();
        let reqs: Vec<crate::proto::Request> =
            (0..4).map(|_| crate::proto::Request::Metrics).collect();
        let opts = crate::service::CallOptions::default();
        let tickets = conn.begin_batch(&reqs, &opts, None).unwrap();
        assert_eq!(conn.inflight(), 4);
        assert_eq!(conn.pending.len(), 4);
        // A caller that panics (or bails) between send and wait drops its
        // tickets: each one must release its in-flight slot and abandon
        // its id, or least-loaded checkout is skewed until the connection
        // dies.
        drop(tickets);
        assert_eq!(conn.inflight(), 0, "dropped tickets freed their slots");
        assert!(
            conn.pending.is_empty(),
            "dropped tickets abandoned their ids"
        );
    }

    #[test]
    fn checkout_does_not_hold_the_pool_lock_across_a_dial() {
        // TEST-NET-1 blackholes SYNs in most environments, so this dial
        // hangs until its connect timeout; if the network answers fast
        // (unreachable error) the test degrades to the happy path — it
        // cannot flake, it just stops exercising the regression.
        let dead: SocketAddr = "192.0.2.1:9".parse().unwrap();
        let live_listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let live = live_listener.local_addr().unwrap();
        let mux = Arc::new(MuxPool::new("lock-test", MuxConfig::default()));
        let opts = crate::service::CallOptions {
            connect: Duration::from_secs(3),
            ..Default::default()
        };
        let slow = {
            let mux = Arc::clone(&mux);
            let opts = opts.clone();
            std::thread::spawn(move || {
                let reg = Registry::new();
                let _ = mux.checkout(dead, &opts, &reg);
            })
        };
        // Give the slow dial time to start (and, pre-fix, hold the lock).
        std::thread::sleep(Duration::from_millis(100));
        let reg = Registry::new();
        let t = Instant::now();
        mux.checkout(live, &opts, &reg).unwrap();
        assert!(
            t.elapsed() < Duration::from_secs(2),
            "a live peer's checkout stalled behind a dead peer's dial: {:?}",
            t.elapsed()
        );
        slow.join().unwrap();
    }

    #[test]
    fn plain_drop_closes_the_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reg = Registry::new();
        let p = pool(PoolConfig::default());
        let c = p.checkout(addr, CONNECT, &reg).unwrap();
        drop(c);
        assert_eq!(p.open_connections(), 0);
        assert_eq!(p.idle_count(), 0);
    }
}
