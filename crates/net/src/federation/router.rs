//! The federation runtime: gossip driver, ring maintenance, routing.
//!
//! One [`Federation`] lives inside each federated FS process. A
//! background thread runs push-pull gossip rounds against every alive
//! peer (full exchange — shard counts are small, so convergence in a
//! handful of rounds beats fan-out economy), grades liveness by
//! heartbeat staleness, and rebuilds the [`Ring`] with a bumped epoch on
//! every alive-set change. Ring epochs converge federation-wide to the
//! max seen, so directory rows stamped with an epoch are comparable
//! across shards.
//!
//! Routing is two primitives the FS handler composes:
//!
//! - [`Federation::forward_addr`]/[`Federation::forward`] — ownership
//!   routing for registrations and heartbeats: the ring names the owner,
//!   and a request for a cluster we don't own is relayed to its owner
//!   over the pooled/breaker call stack.
//! - [`Federation::scatter`] — directory queries fan out a
//!   [`FedQuery`] to every alive peer via [`call_many`]. A `FedQuery` is
//!   executed *purely locally* by the receiver (never re-scattered), so
//!   the forwarding depth is bounded at one hop and worker pools cannot
//!   deadlock across shards.
//!
//! A shard that cannot be reached simply contributes nothing to a
//! scatter round; its registrations reappear when their daemons' own
//! failover re-registers them with a surviving shard.

use super::gossip::{GossipView, MembershipView};
use super::ring::Ring;
use crate::pool::{ConnPool, PoolConfig};
use crate::proto::{FedQuery, Request, Response};
use crate::service::{call_many, call_with, CallOptions, RetryPolicy, StopSignal};
use faucets_core::auth::SessionToken;
use faucets_core::ids::ClusterId;
use faucets_telemetry::{Counter, Gauge};
use parking_lot::Mutex;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Knobs for one federated FS shard.
#[derive(Clone)]
pub struct FederationOptions {
    /// This shard's name — its ring identity. Must be unique across the
    /// federation.
    pub name: String,
    /// Bootstrap peers to gossip at until they introduce themselves
    /// ([`Federation::join`] adds more at runtime, which is how tests and
    /// tooling wire up shards spawned on port 0).
    pub seeds: Vec<SocketAddr>,
    /// Wall pause between gossip rounds.
    pub gossip_interval: Duration,
    /// Rounds without a heartbeat advance before a peer is graded dead
    /// and drops off the ring.
    pub dead_after_rounds: u64,
    /// Options for shard-to-shard calls (gossip, forwards, scatters).
    /// Defaults to no retry — the failure detector wants fast verdicts,
    /// and client-visible operations have their own retry above us.
    pub call: CallOptions,
    /// Concurrent connections used by a scatter round.
    pub scatter_fan_out: usize,
}

impl FederationOptions {
    /// Defaults tuned for tests and localhost ladders: 15 ms gossip
    /// rounds, death after 10 silent rounds (~150 ms).
    pub fn new(name: &str) -> Self {
        FederationOptions {
            name: name.into(),
            seeds: vec![],
            gossip_interval: Duration::from_millis(15),
            dead_after_rounds: 10,
            call: CallOptions {
                retry: RetryPolicy::none(),
                pool: Some(Arc::new(ConnPool::new("federation", PoolConfig::default()))),
                ..CallOptions::default()
            },
            scatter_fan_out: 8,
        }
    }
}

struct FedState {
    view: MembershipView,
    ring: Ring,
}

impl FedState {
    /// Rebuild the ring from the alive set at `epoch`.
    fn rebuild(&mut self, epoch: u64) {
        self.ring = Ring::build(self.view.alive_names(), epoch);
    }

    /// Adopt a remote epoch and/or a liveness change, keeping the local
    /// epoch monotone and ≥ every epoch seen.
    fn converge(&mut self, remote_epoch: u64, liveness_changed: bool) {
        let adopted = self.ring.epoch().max(remote_epoch);
        if liveness_changed {
            self.rebuild(adopted + 1);
        } else if adopted != self.ring.epoch() {
            self.rebuild(adopted);
        }
    }
}

/// The federation runtime inside one FS shard (see module docs).
pub struct Federation {
    opts: FederationOptions,
    incarnation: u64,
    state: Mutex<FedState>,
    seeds: Mutex<Vec<SocketAddr>>,
    self_addr: Mutex<Option<SocketAddr>>,
    stop: StopSignal,
    gossiper: Mutex<Option<JoinHandle<()>>>,
    m_rounds: Counter,
    m_failures: Counter,
    m_stable: Counter,
    m_forwarded: Counter,
    m_scatters: Counter,
    g_alive: Gauge,
    g_epoch: Gauge,
}

/// Process-unique incarnation nonces (monotone within a process; mixed
/// with wall nanos so a restarted shard dominates its previous life).
fn next_incarnation() -> u64 {
    static SEQ: AtomicU64 = AtomicU64::new(1);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    nanos.wrapping_add(SEQ.fetch_add(1, Ordering::Relaxed))
}

impl Federation {
    /// Build the runtime (inert until [`Federation::activate`]).
    pub fn new(opts: FederationOptions) -> Federation {
        let reg = faucets_telemetry::global();
        let labels = [("shard", opts.name.as_str())];
        let placeholder: SocketAddr = "0.0.0.0:0".parse().expect("placeholder addr");
        let incarnation = next_incarnation();
        let view = MembershipView::new(&opts.name, placeholder, incarnation);
        let ring = Ring::build([opts.name.clone()], 1);
        let seeds = opts.seeds.clone();
        Federation {
            m_rounds: reg.counter("fed_gossip_rounds_total", &labels),
            m_failures: reg.counter("fed_gossip_failures_total", &labels),
            m_stable: reg.counter("fed_gossip_stable_rounds_total", &labels),
            m_forwarded: reg.counter("fed_forwarded_requests_total", &labels),
            m_scatters: reg.counter("fed_scatter_queries_total", &labels),
            g_alive: reg.gauge("fed_members_alive", &labels),
            g_epoch: reg.gauge("fed_ring_epoch", &labels),
            opts,
            incarnation,
            state: Mutex::new(FedState { view, ring }),
            seeds: Mutex::new(seeds),
            self_addr: Mutex::new(None),
            stop: StopSignal::new(),
            gossiper: Mutex::new(None),
        }
    }

    /// This shard's name.
    pub fn name(&self) -> &str {
        &self.opts.name
    }

    /// Fix our advertised address (known only after the service binds)
    /// and start the gossip thread.
    pub fn activate(self: &Arc<Self>, addr: SocketAddr) {
        *self.self_addr.lock() = Some(addr);
        {
            let mut st = self.state.lock();
            // Rebuild the self entry with the real address, preserving the
            // incarnation (the view is still just us at this point).
            let load = st
                .view
                .loads()
                .iter()
                .find(|(n, _, _)| n == &self.opts.name)
                .map(|(_, _, l)| *l)
                .unwrap_or(0);
            st.view = MembershipView::new(&self.opts.name, addr, self.incarnation);
            st.view.set_self_load(load);
        }
        let fed = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("fed-gossip-{}", self.opts.name))
            .spawn(move || fed.gossip_loop())
            .expect("spawn gossip thread");
        *self.gossiper.lock() = Some(handle);
    }

    /// Add a bootstrap peer at runtime (how port-0 shards are wired up).
    pub fn join(&self, seed: SocketAddr) {
        self.seeds.lock().push(seed);
    }

    /// Stop gossiping and join the thread. A stopped shard's heartbeat
    /// counter freezes, so peers grade it dead within
    /// [`FederationOptions::dead_after_rounds`].
    pub fn stop(&self) {
        // Wakes the gossip loop mid-interval, so stopping a shard costs
        // a join, not a full gossip round.
        self.stop.stop();
        if let Some(h) = self.gossiper.lock().take() {
            let _ = h.join();
        }
    }

    fn gossip_loop(&self) {
        loop {
            // Stop-aware pacing (see `StopSignal`): a shutdown mid-wait
            // wakes immediately instead of sleeping out the interval.
            if self.stop.wait_for(self.opts.gossip_interval) {
                return;
            }
            let (digest, mut targets) = {
                let mut st = self.state.lock();
                st.view.tick();
                if st.view.grade(self.opts.dead_after_rounds) {
                    let epoch = st.ring.epoch();
                    st.rebuild(epoch + 1);
                }
                self.g_alive.set(st.view.alive_names().len() as f64);
                self.g_epoch.set(st.ring.epoch() as f64);
                let targets: Vec<SocketAddr> =
                    st.view.alive_peers().into_iter().map(|(_, a)| a).collect();
                (st.view.digest(st.ring.epoch()), targets)
            };
            // Dial seeds that have not introduced themselves yet.
            {
                let mut seeds = self.seeds.lock();
                seeds.retain(|s| !targets.contains(s));
                targets.extend(seeds.iter().copied());
            }
            self.m_rounds.inc();
            let mut refreshed = false;
            for peer in targets {
                let req = Request::Gossip {
                    from: self.opts.name.clone(),
                    view: digest.clone(),
                };
                match call_with(peer, &req, &self.opts.call) {
                    Ok(Response::Gossip(remote)) => {
                        let mut st = self.state.lock();
                        let out = st.view.merge(&remote);
                        st.converge(remote.ring_epoch, out.liveness_changed);
                        refreshed |= out.refreshed;
                    }
                    _ => self.m_failures.inc(),
                }
            }
            if !refreshed {
                // Nothing new anywhere: the federation has converged (the
                // deflake counter tests synchronize on).
                self.m_stable.inc();
            }
        }
    }

    /// Handle an incoming [`Request::Gossip`]: merge and answer with our
    /// own digest (push-pull).
    pub fn handle_gossip(&self, view: &GossipView) -> Response {
        let mut st = self.state.lock();
        let out = st.view.merge(view);
        st.converge(view.ring_epoch, out.liveness_changed);
        self.g_alive.set(st.view.alive_names().len() as f64);
        self.g_epoch.set(st.ring.epoch() as f64);
        Response::Gossip(st.view.digest(st.ring.epoch()))
    }

    /// Where to forward a request keyed by `cluster`: `None` means we own
    /// it (or are the only routable shard) and must handle it locally.
    pub fn forward_addr(&self, cluster: ClusterId) -> Option<(String, SocketAddr)> {
        let st = self.state.lock();
        let owner = st.ring.owner(cluster)?;
        if owner == self.opts.name {
            return None;
        }
        let owner = owner.to_string();
        st.view.addr_of(&owner).map(|a| (owner, a))
    }

    /// Relay `req` to the owning shard, mapping transport failure to a
    /// retryable answer (the daemon's heartbeat loop re-registers).
    pub fn forward(&self, shard: &str, addr: SocketAddr, req: &Request) -> Response {
        self.m_forwarded.inc();
        match call_with(addr, req, &self.opts.call) {
            Ok(resp) => resp,
            Err(e) if crate::proto::is_overload_error(&e) => {
                Response::Overloaded { retry_after_ms: 25 }
            }
            Err(e) => Response::Error(format!("forward to shard {shard} failed: {e}")),
        }
    }

    /// Fan a [`FedQuery`] out to every alive peer, returning the answers
    /// that arrived (an unreachable shard contributes nothing).
    pub fn scatter(&self, query: FedQuery) -> Vec<Response> {
        let peers: Vec<SocketAddr> = {
            let st = self.state.lock();
            st.view.alive_peers().into_iter().map(|(_, a)| a).collect()
        };
        if peers.is_empty() {
            return vec![];
        }
        self.m_scatters.inc();
        let req = Request::FedQuery {
            from: self.opts.name.clone(),
            query,
        };
        call_many(&peers, &req, &self.opts.call, self.opts.scatter_fan_out)
            .into_iter()
            .filter_map(|r| r.ok())
            .collect()
    }

    /// Verify a token some other shard may have minted: first `Verified`
    /// answer wins.
    pub fn scatter_verify(&self, token: &SessionToken) -> Response {
        for resp in self.scatter(FedQuery::Verify {
            token: token.clone(),
        }) {
            if let Response::Verified { user } = resp {
                return Response::Verified { user };
            }
        }
        Response::Error("session token unknown to every federated shard".into())
    }

    /// Publish our directory size into the gossiped load digest.
    pub fn set_local_load(&self, load: u64) {
        self.state.lock().view.set_self_load(load);
    }

    // ---- readouts (tests, experiments, dashboards) ----

    /// Alive member names, ourselves included.
    pub fn alive_members(&self) -> Vec<String> {
        self.state.lock().view.alive_names()
    }

    /// The current ring epoch.
    pub fn ring_epoch(&self) -> u64 {
        self.state.lock().ring.epoch()
    }

    /// The shard owning `cluster` under the current ring.
    pub fn owner_of(&self, cluster: ClusterId) -> Option<String> {
        self.state.lock().ring.owner(cluster).map(String::from)
    }

    /// Every known member's `(name, alive, advertised directory size)`.
    pub fn peer_loads(&self) -> Vec<(String, bool, u64)> {
        self.state.lock().view.loads()
    }
}

impl Drop for Federation {
    fn drop(&mut self) {
        self.stop.stop();
    }
}
