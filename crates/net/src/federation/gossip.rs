//! Gossip membership: heartbeat-versioned anti-entropy views.
//!
//! Every federated shard keeps a [`MembershipView`]: one entry per known
//! member carrying its address, an *incarnation* (picked once per process
//! start, so a restarted shard's counters never look stale next to its
//! previous life) and a *heartbeat* counter the owner increments each
//! gossip round. Views are exchanged push-pull over
//! [`crate::proto::Request::Gossip`] and merged by `(incarnation,
//! heartbeat)` dominance — the classic heartbeat-counter failure detector:
//! a member whose counter stops advancing for
//! [`crate::federation::FederationOptions::dead_after_rounds`] local
//! rounds is graded dead and drops off the ring; a later advance (the
//! shard was partitioned, not dead, or restarted with a fresh
//! incarnation) resurrects it.
//!
//! The view also piggybacks each shard's directory size (`load`) so any
//! shard can answer "who holds what" questions cheaply — the per-shard
//! load digest the scatter-gather router and the dashboard read.
//!
//! Everything here is pure data + merge logic (no sockets), which is what
//! the unit tests and the convergence-counter deflake guard lean on.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::SocketAddr;

/// One member's entry in a gossiped view. Addresses travel as strings
/// (the repo's wire convention, see `ServerInfo::fd_addr`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemberDigest {
    /// Shard name (the ring identity).
    pub name: String,
    /// Where the shard serves, as `ip:port`.
    pub addr: String,
    /// Process-lifetime nonce; a restart picks a new one so its reset
    /// heartbeat counter still dominates the old life's.
    pub incarnation: u64,
    /// Monotone liveness counter, advanced by the owner each round.
    pub heartbeat: u64,
    /// The owner's directory size (its shard of the federation's load).
    pub load: u64,
}

/// A full gossiped view: every member the sender knows, plus the sender's
/// ring epoch so epochs converge to the federation-wide max.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GossipView {
    /// The sender's current ring epoch.
    pub ring_epoch: u64,
    /// Every member the sender knows about (including itself and members
    /// it has graded dead — staleness is in the counters, receivers grade
    /// for themselves).
    pub members: Vec<MemberDigest>,
}

/// Local bookkeeping for one known member.
#[derive(Debug, Clone)]
pub struct MemberState {
    /// Where the shard serves.
    pub addr: SocketAddr,
    /// Last dominant incarnation seen.
    pub incarnation: u64,
    /// Last dominant heartbeat seen.
    pub heartbeat: u64,
    /// The member's advertised directory size.
    pub load: u64,
    /// Liveness verdict under the local failure detector.
    pub alive: bool,
    /// Local round at which the counter last advanced.
    last_advance: u64,
}

/// What a merge did, so the gossip loop can count convergence and only
/// rebuild the ring when liveness actually changed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeOutcome {
    /// Any counter, address, or load was refreshed.
    pub refreshed: bool,
    /// The alive set changed (ring must be rebuilt).
    pub liveness_changed: bool,
}

/// One shard's membership view (including itself).
#[derive(Debug, Clone)]
pub struct MembershipView {
    self_name: String,
    round: u64,
    members: BTreeMap<String, MemberState>,
}

impl MembershipView {
    /// A view containing only ourselves.
    pub fn new(self_name: &str, self_addr: SocketAddr, incarnation: u64) -> Self {
        let mut members = BTreeMap::new();
        members.insert(
            self_name.to_string(),
            MemberState {
                addr: self_addr,
                incarnation,
                heartbeat: 1,
                load: 0,
                alive: true,
                last_advance: 0,
            },
        );
        MembershipView {
            self_name: self_name.to_string(),
            round: 0,
            members,
        }
    }

    /// Our shard name.
    pub fn self_name(&self) -> &str {
        &self.self_name
    }

    /// Start a local round: advance our own heartbeat.
    pub fn tick(&mut self) {
        self.round += 1;
        let round = self.round;
        if let Some(me) = self.members.get_mut(&self.self_name) {
            me.heartbeat += 1;
            me.last_advance = round;
        }
    }

    /// Update our advertised directory size.
    pub fn set_self_load(&mut self, load: u64) {
        if let Some(me) = self.members.get_mut(&self.self_name) {
            me.load = load;
        }
    }

    /// Merge a remote view: `(incarnation, heartbeat)` dominance per
    /// member, resurrecting members whose counters advanced.
    pub fn merge(&mut self, remote: &GossipView) -> MergeOutcome {
        let mut out = MergeOutcome::default();
        let round = self.round;
        for d in &remote.members {
            if d.name == self.self_name {
                continue; // we are the authority on ourselves
            }
            let Ok(addr) = d.addr.parse::<SocketAddr>() else {
                continue;
            };
            match self.members.get_mut(&d.name) {
                None => {
                    self.members.insert(
                        d.name.clone(),
                        MemberState {
                            addr,
                            incarnation: d.incarnation,
                            heartbeat: d.heartbeat,
                            load: d.load,
                            alive: true,
                            last_advance: round,
                        },
                    );
                    out.refreshed = true;
                    out.liveness_changed = true;
                }
                Some(e) => {
                    if (d.incarnation, d.heartbeat) > (e.incarnation, e.heartbeat) {
                        e.incarnation = d.incarnation;
                        e.heartbeat = d.heartbeat;
                        e.addr = addr;
                        e.load = d.load;
                        e.last_advance = round;
                        if !e.alive {
                            e.alive = true;
                            out.liveness_changed = true;
                        }
                        out.refreshed = true;
                    }
                }
            }
        }
        out
    }

    /// Grade liveness: a peer whose counter has not advanced for
    /// `dead_after` local rounds is dead (we never grade ourselves).
    /// Returns true when the alive set changed.
    pub fn grade(&mut self, dead_after: u64) -> bool {
        let mut changed = false;
        let round = self.round;
        for (name, e) in self.members.iter_mut() {
            if *name == self.self_name {
                continue;
            }
            let stale = round.saturating_sub(e.last_advance) > dead_after;
            if e.alive && stale {
                e.alive = false;
                changed = true;
            }
        }
        changed
    }

    /// The view we push to peers (all members, dead ones included — their
    /// stale counters cannot resurrect them at the receiver).
    pub fn digest(&self, ring_epoch: u64) -> GossipView {
        GossipView {
            ring_epoch,
            members: self
                .members
                .iter()
                .map(|(name, e)| MemberDigest {
                    name: name.clone(),
                    addr: e.addr.to_string(),
                    incarnation: e.incarnation,
                    heartbeat: e.heartbeat,
                    load: e.load,
                })
                .collect(),
        }
    }

    /// Alive member names, ourselves included (the ring's input).
    pub fn alive_names(&self) -> Vec<String> {
        self.members
            .iter()
            .filter(|(_, e)| e.alive)
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// Alive peers (name, addr), ourselves excluded (the scatter and
    /// gossip targets).
    pub fn alive_peers(&self) -> Vec<(String, SocketAddr)> {
        self.members
            .iter()
            .filter(|(n, e)| e.alive && **n != self.self_name)
            .map(|(n, e)| (n.clone(), e.addr))
            .collect()
    }

    /// Look up an alive member's address by name.
    pub fn addr_of(&self, name: &str) -> Option<SocketAddr> {
        self.members.get(name).filter(|e| e.alive).map(|e| e.addr)
    }

    /// Every member's `(name, alive, load)` — the per-shard load digest.
    pub fn loads(&self) -> Vec<(String, bool, u64)> {
        self.members
            .iter()
            .map(|(n, e)| (n.clone(), e.alive, e.load))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().unwrap()
    }

    fn digest_of(view: &MembershipView) -> GossipView {
        view.digest(0)
    }

    #[test]
    fn merge_learns_members_and_dominance_wins() {
        let mut a = MembershipView::new("a", addr(1), 10);
        let mut b = MembershipView::new("b", addr(2), 20);
        b.tick();
        b.tick();
        let out = a.merge(&digest_of(&b));
        assert!(out.refreshed && out.liveness_changed);
        assert_eq!(a.alive_names(), vec!["a".to_string(), "b".to_string()]);

        // Replaying the same view changes nothing (anti-entropy converges).
        let out = a.merge(&digest_of(&b));
        assert_eq!(out, MergeOutcome::default());

        // A stale view (lower heartbeat) never regresses the entry.
        let hb = a.members.get("b").unwrap().heartbeat;
        let stale = GossipView {
            ring_epoch: 0,
            members: vec![MemberDigest {
                name: "b".into(),
                addr: addr(2).to_string(),
                incarnation: 20,
                heartbeat: hb - 1,
                load: 9,
            }],
        };
        assert_eq!(a.merge(&stale), MergeOutcome::default());
        assert_eq!(a.members.get("b").unwrap().heartbeat, hb);
    }

    #[test]
    fn staleness_kills_and_fresh_counters_resurrect() {
        let mut a = MembershipView::new("a", addr(1), 1);
        let mut b = MembershipView::new("b", addr(2), 2);
        b.tick();
        a.merge(&digest_of(&b));
        // b goes silent for more than dead_after rounds.
        for _ in 0..5 {
            a.tick();
            a.grade(3);
        }
        assert_eq!(a.alive_names(), vec!["a".to_string()]);
        assert!(a.addr_of("b").is_none(), "dead members are not routable");

        // b speaks again with an advanced counter: resurrected.
        b.tick();
        let out = a.merge(&digest_of(&b));
        assert!(out.liveness_changed);
        assert_eq!(a.alive_names().len(), 2);

        // A *restarted* b (fresh incarnation, reset heartbeat) dominates
        // its old life even though its counter restarted from 1.
        for _ in 0..5 {
            a.tick();
            a.grade(3);
        }
        let reborn = MembershipView::new("b", addr(3), 99);
        let out = a.merge(&digest_of(&reborn));
        assert!(out.liveness_changed);
        assert_eq!(a.addr_of("b"), Some(addr(3)), "address follows the restart");
    }

    #[test]
    fn self_entry_is_never_overwritten() {
        let mut a = MembershipView::new("a", addr(1), 1);
        let forged = GossipView {
            ring_epoch: 0,
            members: vec![MemberDigest {
                name: "a".into(),
                addr: addr(9).to_string(),
                incarnation: 999,
                heartbeat: 999,
                load: 999,
            }],
        };
        assert_eq!(a.merge(&forged), MergeOutcome::default());
        assert_eq!(a.addr_of("a"), Some(addr(1)));
    }

    #[test]
    fn loads_piggyback_on_the_view() {
        let mut a = MembershipView::new("a", addr(1), 1);
        let mut b = MembershipView::new("b", addr(2), 2);
        b.set_self_load(17);
        b.tick();
        a.merge(&digest_of(&b));
        let loads = a.loads();
        let b_load = loads.iter().find(|(n, _, _)| n == "b").unwrap();
        assert_eq!((b_load.1, b_load.2), (true, 17));
    }
}
