//! The consistent-hash ring: which shard owns which cluster id.
//!
//! Each federation member is placed on a `u64` ring at [`VNODES`] points
//! (virtual nodes smooth the key distribution), and a cluster id is owned
//! by the member whose point is the first at or clockwise-after the key's
//! hash. Membership changes therefore remap only the keys that fell
//! between the joining/leaving member's points and their predecessors —
//! the minimal-disruption law the proptests pin down: adding a shard
//! moves keys *only onto the new shard*, removing one moves *only its own
//! keys*, and every key always has exactly one live owner.
//!
//! The ring is a pure value: rebuilt from the alive membership set on
//! every liveness change, with a monotonically increasing [`Ring::epoch`]
//! so directory rows and tests can tell ring generations apart. Hashing
//! is a splitmix64 finalizer over FNV-1a'd member names — dependency-free
//! and deterministic across shards, which is what makes any two shards
//! with the same membership view agree on every owner.

use faucets_core::ids::ClusterId;

/// Virtual nodes per member: enough to keep the per-shard key share
/// within a few percent of 1/N at small N without bloating rebuilds.
pub const VNODES: usize = 64;

/// splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over a member name, seeding its vnode points.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A consistent-hash ring over named shard members.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ring {
    epoch: u64,
    members: Vec<String>,
    /// `(point, member index)` sorted by point.
    points: Vec<(u64, u32)>,
}

impl Ring {
    /// Build a ring for `members` at `epoch`. Members are sorted and
    /// deduplicated, so any two shards that agree on the membership *set*
    /// agree on every owner.
    pub fn build(members: impl IntoIterator<Item = String>, epoch: u64) -> Ring {
        let mut members: Vec<String> = members.into_iter().collect();
        members.sort();
        members.dedup();
        let mut points = Vec::with_capacity(members.len() * VNODES);
        for (i, m) in members.iter().enumerate() {
            let base = hash_name(m);
            for v in 0..VNODES {
                points.push((mix64(base ^ mix64(v as u64 + 1)), i as u32));
            }
        }
        points.sort_unstable();
        Ring {
            epoch,
            members,
            points,
        }
    }

    /// The ring generation (bumped by the federation on every liveness
    /// change).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The members this ring was built from, sorted.
    pub fn members(&self) -> &[String] {
        &self.members
    }

    /// True when no member is on the ring.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The member owning `key`: the first ring point at or clockwise-after
    /// the key's hash (wrapping). `None` only on an empty ring.
    pub fn owner(&self, key: ClusterId) -> Option<&str> {
        if self.points.is_empty() {
            return None;
        }
        let h = mix64(key.raw());
        let idx = match self.points.binary_search_by(|p| p.0.cmp(&h)) {
            Ok(i) => i,
            Err(i) => i % self.points.len(),
        };
        Some(&self.members[self.points[idx].1 as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("shard-{i}")).collect()
    }

    #[test]
    fn every_key_has_exactly_one_owner() {
        let ring = Ring::build(names(4), 1);
        for k in 0..5_000u64 {
            let owner = ring.owner(ClusterId(k)).expect("non-empty ring");
            assert!(ring.members().iter().any(|m| m == owner));
        }
        assert!(Ring::build(std::iter::empty(), 0)
            .owner(ClusterId(7))
            .is_none());
    }

    #[test]
    fn identical_membership_means_identical_owners() {
        // Two shards that agree on the alive set must agree on routing,
        // regardless of insertion order or duplicates.
        let a = Ring::build(names(5), 3);
        let mut shuffled = names(5);
        shuffled.reverse();
        shuffled.push("shard-2".into()); // duplicate
        let b = Ring::build(shuffled, 3);
        for k in 0..2_000u64 {
            assert_eq!(a.owner(ClusterId(k)), b.owner(ClusterId(k)));
        }
    }

    #[test]
    fn removal_only_moves_the_dead_shards_keys() {
        let before = Ring::build(names(4), 1);
        let after = Ring::build(names(4).into_iter().filter(|m| m != "shard-1"), 2);
        for k in 0..5_000u64 {
            let was = before.owner(ClusterId(k)).unwrap();
            let now = after.owner(ClusterId(k)).unwrap();
            if was != "shard-1" {
                assert_eq!(was, now, "key {k} moved off a surviving shard");
            } else {
                assert_ne!(now, "shard-1");
            }
        }
    }

    #[test]
    fn share_is_roughly_balanced() {
        let ring = Ring::build(names(4), 1);
        let mut counts = std::collections::HashMap::new();
        let samples = 20_000u64;
        for k in 0..samples {
            *counts
                .entry(ring.owner(ClusterId(k)).unwrap().to_string())
                .or_insert(0u64) += 1;
        }
        for (m, c) in counts {
            let share = c as f64 / samples as f64;
            assert!(
                (0.10..=0.40).contains(&share),
                "{m} owns {share:.3} of keys"
            );
        }
    }
}
