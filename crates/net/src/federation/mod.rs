//! Federated central server: sharded directory + gossip membership.
//!
//! The single-process FS is the scalability ceiling the paper's §2 load
//! figures run into. This module federates it: N FS instances each own a
//! shard of the cluster directory, determined by a [`Ring`] (consistent
//! hashing over cluster ids), and learn about each other through a
//! heartbeat-counter gossip protocol ([`MembershipView`]). Any shard can
//! answer any client: requests keyed by a cluster id it does not own are
//! forwarded to the ring owner, and directory-wide queries scatter-gather
//! every alive peer with [`crate::proto::FedQuery`] frames over the
//! existing pooled/retry/breaker RPC stack.
//!
//! Layering:
//!
//! - [`ring`] — pure consistent-hash ring (who owns which cluster id).
//! - [`gossip`] — pure membership state + merge logic (who is alive).
//! - `router` — the [`Federation`] runtime tying them together: the
//!   gossip thread, ring rebuilds, and the forward/scatter primitives the
//!   FS handler composes.
//!
//! The replicated WAL journal under each shard is unchanged: a shard
//! journals exactly the registrations/heartbeats/evictions for the key
//! range it owns.

pub mod gossip;
pub mod ring;
mod router;

pub use gossip::{GossipView, MemberDigest, MembershipView, MergeOutcome};
pub use ring::{Ring, VNODES};
pub use router::{Federation, FederationOptions};
