//! The Faucets Daemon (FD) as a TCP service (§2).
//!
//! *"Each Scheduler is associated with a Faucets Daemon process which
//! listens on a well-known port. … At startup each FD registers itself with
//! the Faucets Central Server."* This service wraps a
//! [`faucets_sched::cluster::Cluster`] with the mediation logic of
//! [`faucets_core::daemon::FaucetsDaemon`]: it answers bid requests
//! (re-verifying the client's token with the FS first, since *"the FD does
//! not have any accounting information"*), handles awards, stages input
//! files, and runs a pump thread that drives the scheduler clock, reports
//! completions and telemetry to AppSpector, and heartbeats the FS.

use crate::proto::{Request, Response};
use crate::service::{call, serve, Clock, ServiceHandle};
use faucets_core::appspector::TelemetrySample;
use faucets_core::daemon::{AwardOutcome, ClusterManager, FaucetsDaemon};
use faucets_core::ids::{ClusterId, JobId, UserId};
use faucets_core::market::MarketInfo;
use faucets_core::money::Money;
use faucets_sched::cluster::Cluster;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

struct FdState {
    daemon: FaucetsDaemon,
    cluster: Cluster,
    staged: HashMap<JobId, Vec<(String, Vec<u8>)>>,
    owners: HashMap<JobId, UserId>,
}

/// A running FD service.
pub struct FdHandle {
    /// The TCP service.
    pub service: ServiceHandle,
    /// The cluster this FD represents.
    pub cluster_id: ClusterId,
    state: Arc<Mutex<FdState>>,
    stop: Arc<AtomicBool>,
    pump: Option<JoinHandle<()>>,
}

impl FdHandle {
    /// Jobs completed on this cluster so far.
    pub fn completed(&self) -> u64 {
        self.state.lock().cluster.metrics.completed
    }

    /// Revenue earned at bid prices.
    pub fn revenue(&self) -> Money {
        self.state.lock().cluster.metrics.revenue_price
    }

    /// Daemon activity counters (requests, bids, declines, confirms).
    pub fn daemon_stats(&self) -> faucets_core::daemon::DaemonStats {
        self.state.lock().daemon.stats
    }

    /// Stop the pump and the service.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(p) = self.pump.take() {
            let _ = p.join();
        }
    }
}

impl Drop for FdHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

fn verify(fs: SocketAddr, token: &faucets_core::auth::SessionToken) -> Result<UserId, String> {
    match call(fs, &Request::VerifyToken { token: token.clone() }) {
        Ok(Response::Verified { user }) => Ok(user),
        Ok(Response::Error(e)) => Err(e),
        Ok(other) => Err(format!("unexpected FS reply {other:?}")),
        Err(e) => Err(format!("FS unreachable: {e}")),
    }
}

/// Spawn an FD for `cluster`, register it with the FS, and start its pump.
///
/// `daemon` must carry `ServerInfo` whose address will be overwritten with
/// the actually bound socket (so port 0 works).
pub fn spawn_fd(
    addr: &str,
    mut daemon: FaucetsDaemon,
    cluster: Cluster,
    fs: SocketAddr,
    appspector: SocketAddr,
    clock: Clock,
) -> io::Result<FdHandle> {
    let cluster_id = cluster.machine.cluster;
    let state = Arc::new(Mutex::new(FdState {
        daemon: FaucetsDaemon::new(
            // placeholder; replaced below once the port is known
            faucets_core::directory::ServerInfo {
                fd_addr: String::new(),
                fd_port: 0,
                ..daemon.info.clone()
            },
            std::iter::empty::<String>(),
            Box::new(faucets_core::market::Baseline),
            Money::ZERO,
        ),
        cluster,
        staged: HashMap::new(),
        owners: HashMap::new(),
    }));

    // Bind the service first so the real port is known.
    let st = Arc::clone(&state);
    let clock_handler = clock.clone();
    let service = serve(addr, "fd", move |req| {
        match req {
            Request::RequestBid { token, request } => {
                // §2.2: the FD re-checks the client with the FS.
                if let Err(e) = verify(fs, &token) {
                    return Response::Error(e);
                }
                // Read the clock only while holding the lock: the pump also
                // advances the cluster, and scheduler time must be monotone.
                let mut s = st.lock();
                let now = clock_handler.now();
                let FdState { daemon, cluster, .. } = &mut *s;
                Response::BidReply(daemon.handle_bid_request(&request, cluster, &MarketInfo::default(), now))
            }
            Request::Award { token, spec, contract, bid } => {
                if let Err(e) = verify(fs, &token) {
                    return Response::Error(e);
                }
                let (job, user) = (spec.id, spec.user);
                let outcome = {
                    let mut s = st.lock();
                    let now = clock_handler.now();
                    let FdState { daemon, cluster, .. } = &mut *s;
                    daemon.handle_award(spec, contract, &bid, cluster, now)
                };
                match outcome {
                    Ok(AwardOutcome::Confirmed) => {
                        st.lock().owners.insert(job, user);
                        let _ = call(appspector, &Request::RegisterJob { job, owner: user, cluster: cluster_id });
                        Response::AwardReply { confirmed: true, reason: None }
                    }
                    Ok(AwardOutcome::Reneged(r)) => {
                        Response::AwardReply { confirmed: false, reason: Some(format!("{r:?}")) }
                    }
                    Err(e) => Response::Error(e.to_string()),
                }
            }
            Request::UploadFile { token, job, name, data } => {
                if let Err(e) = verify(fs, &token) {
                    return Response::Error(e);
                }
                st.lock().staged.entry(job).or_default().push((name, data));
                Response::Ok
            }
            other => Response::Error(format!("FD cannot handle {other:?}")),
        }
    })?;

    // Fix up the registration info with the bound address and register.
    let bound = service.addr;
    daemon.info.fd_addr = bound.ip().to_string();
    daemon.info.fd_port = bound.port();
    let info = daemon.info.clone();
    let apps: Vec<String> = daemon.exported_apps.iter().cloned().collect();
    state.lock().daemon = daemon;
    let _ = call(fs, &Request::RegisterCluster { info, apps });

    // Pump: drives the scheduler clock, reports completions/telemetry,
    // heartbeats the FS.
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let st = Arc::clone(&state);
    let pump = std::thread::Builder::new().name(format!("fd-pump-{cluster_id}")).spawn(move || {
        // Heartbeats are paced in *simulated* time (the FS liveness window
        // is simulated seconds), so any clock speedup keeps the FD alive.
        let heartbeat_every = faucets_sim::time::SimDuration::from_secs(30);
        let mut last_heartbeat = faucets_sim::time::SimTime::ZERO;
        while !stop2.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(5));

            // Harvest completions under the lock (reading the clock inside
            // it, to stay monotone with the request handlers); talk to
            // peers outside it.
            let (now, completions, running, status) = {
                let mut s = st.lock();
                let now = clock.now();
                let completions = s.cluster.on_time(now);
                let running: Vec<(JobId, u32)> = s.cluster.running_jobs().collect();
                (now, completions, running, s.cluster.status(now))
            };
            for c in &completions {
                let job = c.outcome.job;
                let mut outputs: Vec<(String, Vec<u8>)> = {
                    let mut s = st.lock();
                    s.staged.remove(&job).unwrap_or_default()
                };
                outputs.push(("output.dat".into(), format!("completed at {now}").into_bytes()));
                let _ = call(appspector, &Request::CompleteJob { job, outputs });
            }
            // Heartbeat + telemetry on the simulated cadence.
            if now.since(last_heartbeat) >= heartbeat_every || last_heartbeat == faucets_sim::time::SimTime::ZERO {
                last_heartbeat = now;
                let _ = call(fs, &Request::Heartbeat { cluster: cluster_id, status });
                let total = { st.lock().cluster.machine.total_pes };
                for (job, pes) in running {
                    let _ = call(
                        appspector,
                        &Request::PushSample {
                            job,
                            sample: TelemetrySample {
                                at: now,
                                pes,
                                utilization: pes as f64 / total.max(1) as f64,
                                throughput: pes as f64,
                                app_data: format!("t={now}"),
                            },
                        },
                    );
                }
            }
        }
    })?;

    Ok(FdHandle { service, cluster_id, state, stop, pump: Some(pump) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::spawn_fs;
    use faucets_core::bid::BidRequest;
    use faucets_core::qos::QosBuilder;
    use faucets_sched::adaptive::ResizeCostModel;
    use faucets_sched::equipartition::Equipartition;
    use faucets_sched::machine::MachineSpec;

    #[test]
    fn fd_registers_and_answers_bids() {
        let clock = Clock::new(100.0);
        let fs = spawn_fs("127.0.0.1:0", clock.clone(), 11).unwrap();
        let aspect = crate::appspector_srv::spawn_appspector("127.0.0.1:0", fs.service.addr, 8).unwrap();

        let machine = MachineSpec::commodity(ClusterId(1), "turing", 64);
        let daemon = FaucetsDaemon::new(
            machine.server_info("127.0.0.1", 0),
            ["namd".to_string()],
            Box::new(faucets_core::market::Baseline),
            Money::from_units_f64(0.01),
        );
        let cluster = Cluster::new(machine, Box::new(Equipartition), ResizeCostModel::default());
        let fd = spawn_fd("127.0.0.1:0", daemon, cluster, fs.service.addr, aspect.service.addr, clock).unwrap();

        // The FD registered itself (directory has it with the bound port).
        {
            let s = fs.state.lock();
            let e = s.directory.get(ClusterId(1)).expect("registered");
            assert_eq!(e.info.fd_port, fd.service.addr.port());
        }

        // A valid user can solicit a bid.
        call(fs.service.addr, &Request::CreateUser { user: "u".into(), password: "p".into() }).unwrap();
        let Response::Session { user, token } =
            call(fs.service.addr, &Request::Login { user: "u".into(), password: "p".into() }).unwrap()
        else {
            panic!()
        };
        let qos = QosBuilder::new("namd", 4, 16, 100.0).build().unwrap();
        let req = BidRequest { job: JobId(5), user, qos, issued_at: faucets_sim::time::SimTime::ZERO };
        let Response::BidReply(reply) =
            call(fd.service.addr, &Request::RequestBid { token, request: req.clone() }).unwrap()
        else {
            panic!("expected bid reply")
        };
        let bid = reply.offer().expect("baseline bids on known apps");
        assert_eq!(bid.cluster, ClusterId(1));
        // $0.01/cpu-s × 100 cpu-s × 1.0 = $1.
        assert_eq!(bid.price, Money::from_units(1));

        // Forged token is bounced by the FS re-verification.
        let bogus = faucets_core::auth::SessionToken("bogus".into());
        let r = call(fd.service.addr, &Request::RequestBid { token: bogus, request: req }).unwrap();
        assert!(matches!(r, Response::Error(_)));
    }
}
