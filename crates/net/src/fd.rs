//! The Faucets Daemon (FD) as a TCP service (§2).
//!
//! *"Each Scheduler is associated with a Faucets Daemon process which
//! listens on a well-known port. … At startup each FD registers itself with
//! the Faucets Central Server."* This service wraps a
//! [`faucets_sched::cluster::Cluster`] with the mediation logic of
//! [`faucets_core::daemon::FaucetsDaemon`]: it answers bid requests
//! (re-verifying the client's token with the FS first, since *"the FD does
//! not have any accounting information"*), handles awards, stages input
//! files, and runs a pump thread that drives the scheduler clock, reports
//! completions and telemetry to AppSpector, and heartbeats the FS.
//!
//! ## Crash recovery
//!
//! With [`FdOptions::store`] set, the daemon journals every accepted QoS
//! contract (spec, contract id, price, owner) and every staged input file
//! to a [`DurableStore`] write-ahead log — one fsynced record per change,
//! compacted periodically, instead of rewriting a whole snapshot file on
//! each mutation. The acceptance record is appended *before* the scheduler
//! sees the award, and the award is NACKed if the append fails, so a
//! confirmed award is always recoverable. [`spawn_fd_with`] on the same
//! directory replays the journal: contracts are resubmitted to the
//! scheduler, jobs re-registered with AppSpector, and the daemon
//! re-registers with the FS — so a kill + restart loses at most the
//! *progress* since the last scheduler checkpoint, never the contracts
//! themselves. Completion records prune the journal best-effort
//! (an unjournaled completion means the job is re-run after restart:
//! at-least-once, never lost). If the FS evicted the daemon while it was
//! down, the heartbeat's error reply triggers re-registration from the
//! pump.

use crate::overload::{GateConfig, GateVerdict, PayoffGate};
use crate::pool::{ConnPool, PoolConfig};
use crate::proto::{Request, Response};
use crate::replica::{Journal, ReplicationConfig};
use crate::service::{
    call_with, request_deadline, serve_with, CallOptions, Clock, RetryPolicy, ServeOptions,
    ServiceHandle, StopSignal,
};
use faucets_core::appspector::TelemetrySample;
use faucets_core::daemon::{AwardOutcome, ClusterManager, FaucetsDaemon};
use faucets_core::ids::{ClusterId, ContractId, JobId, UserId};
use faucets_core::job::JobSpec;
use faucets_core::market::MarketInfo;
use faucets_core::money::Money;
use faucets_sched::cluster::Cluster;
use faucets_store::{Durable, StoreOptions};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// One accepted contract, as journaled.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ContractEntry {
    spec: JobSpec,
    contract: ContractId,
    price: Money,
    owner: UserId,
}

/// One journaled FD mutation.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum FdRecord {
    /// An award was accepted — journaled *before* the scheduler sees it.
    Accept(ContractEntry),
    /// An input file was staged for a job.
    Stage {
        job: JobId,
        name: String,
        data: Vec<u8>,
    },
    /// The job finished (or a journaled acceptance was retracted after the
    /// scheduler reneged): its contract and staged files are dropped.
    Complete { job: JobId },
}

/// The durable state machine behind the FD: accepted contracts and staged
/// input files for jobs not yet complete.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct FdJournal {
    contracts: Vec<ContractEntry>,
    staged: Vec<(JobId, Vec<(String, Vec<u8>)>)>,
}

impl Durable for FdJournal {
    type Record = FdRecord;
    type Snapshot = FdJournal;

    fn apply(&mut self, rec: &FdRecord) {
        match rec {
            FdRecord::Accept(e) => {
                self.contracts.retain(|c| c.spec.id != e.spec.id);
                self.contracts.push(e.clone());
            }
            FdRecord::Stage { job, name, data } => {
                let file = (name.clone(), data.clone());
                match self.staged.iter_mut().find(|(j, _)| j == job) {
                    Some((_, files)) => files.push(file),
                    None => self.staged.push((*job, vec![file])),
                }
            }
            FdRecord::Complete { job } => {
                self.contracts.retain(|c| c.spec.id != *job);
                self.staged.retain(|(j, _)| j != job);
            }
        }
    }

    fn snapshot(&self) -> FdJournal {
        self.clone()
    }

    fn restore(snap: FdJournal) -> Self {
        snap
    }
}

/// The FD's contract journal handle: single-node or replicated per
/// [`FdOptions::replication`].
type FdStore = Option<Journal<FdJournal>>;

/// Options for [`spawn_fd_with`].
#[derive(Clone)]
pub struct FdOptions {
    /// Directory for the write-ahead contract journal. `None` disables
    /// persistence (the seed behaviour).
    pub store: Option<PathBuf>,
    /// Store tuning: telemetry label, compaction cadence, fsync, injected
    /// write faults. Only consulted when `store` is set.
    pub store_opts: StoreOptions,
    /// Replicate the contract journal to follower daemons
    /// ([`crate::replica::spawn_replica`]); the follower set is advertised
    /// in this FD's directory row so failover tooling can find the
    /// replicas. Only consulted when `store` is set. The service name the
    /// followers must host is `fd-<cluster id>`.
    pub replication: Option<ReplicationConfig>,
    /// Service-side timeouts and fault injection.
    pub serve: ServeOptions,
    /// Options for the FD's own outbound calls (FS verification and
    /// heartbeats, AppSpector pushes). Defaults to bounded retry so a
    /// transiently unreachable FS doesn't poison bid handling, and to a
    /// connection pool so the per-bid FS token verification and the pump's
    /// AppSpector pushes ride warm sockets instead of reconnecting each
    /// time.
    pub call: CallOptions,
    /// Heartbeat cadence in *simulated* seconds.
    pub heartbeat_every: faucets_sim::time::SimDuration,
    /// Payoff-aware admission gate for the bid pipeline: over
    /// `max_inflight` concurrent solicitations, up to `max_queue` wait and
    /// the lowest payoff-rate request is shed first (§4 profit
    /// maximization under overload). Defaults are generous; retune at
    /// runtime via [`FdHandle::gate`].
    pub bid_gate: GateConfig,
    /// Minimum wall-clock cost charged to each admitted bid solicitation
    /// (models the CM probe of §2.2). Zero (the default) adds nothing;
    /// experiments set it to give the FD a known bid capacity.
    pub bid_probe_floor: Duration,
    /// Alternative FS endpoints (federated shards). When a heartbeat fails
    /// at the transport level the pump rotates to the next endpoint and
    /// re-registers there, so a daemon survives the death of the shard it
    /// was pointed at. Overload answers never rotate (busy is not dead).
    pub fs_fallbacks: Vec<SocketAddr>,
    /// TTL stamped into the on-disk lease this FD renews every time it
    /// answers a sentinel's [`Request::LeaseProbe`] (the lease is the
    /// primary claim automatic failover revolves around; see
    /// [`crate::sentinel`]). Only meaningful with replication configured.
    pub lease_ttl: Duration,
}

impl Default for FdOptions {
    fn default() -> Self {
        FdOptions {
            store: None,
            store_opts: StoreOptions {
                service: "fd".into(),
                ..StoreOptions::default()
            },
            replication: None,
            serve: ServeOptions::default(),
            call: CallOptions {
                retry: RetryPolicy::standard(0x4644),
                pool: Some(Arc::new(ConnPool::new("fd", PoolConfig::default()))),
                ..CallOptions::default()
            },
            heartbeat_every: faucets_sim::time::SimDuration::from_secs(30),
            bid_gate: GateConfig::default(),
            bid_probe_floor: Duration::ZERO,
            fs_fallbacks: vec![],
            lease_ttl: Duration::from_millis(500),
        }
    }
}

/// The FS endpoint the daemon currently trusts (rotation index modulo the
/// endpoint list, shared by the request handlers and the pump).
fn current_fs(list: &[SocketAddr], idx: &std::sync::atomic::AtomicUsize) -> SocketAddr {
    list[idx.load(Ordering::Relaxed) % list.len()]
}

/// Retract a journaled acceptance the scheduler then refused. Best-effort:
/// if this append fails too, a restart may resubmit a job the client was
/// told was declined — a narrow window the docs call out.
fn retract(store: &FdStore, job: JobId) {
    if let Some(store) = store {
        let _ = store.commit(&FdRecord::Complete { job });
    }
}

struct FdState {
    daemon: FaucetsDaemon,
    cluster: Cluster,
    staged: HashMap<JobId, Vec<(String, Vec<u8>)>>,
    owners: HashMap<JobId, UserId>,
    contracts: HashMap<JobId, ContractEntry>,
    /// Telemetry: successful journal appends (`fd_journal_writes_total`).
    m_journal_writes: faucets_telemetry::Counter,
}

/// A running FD service.
pub struct FdHandle {
    /// The TCP service.
    pub service: ServiceHandle,
    /// The cluster this FD represents.
    pub cluster_id: ClusterId,
    /// The payoff-aware bid admission gate (live knobs and peak-queue
    /// readout — see [`FdOptions::bid_gate`]).
    pub gate: Arc<PayoffGate>,
    state: Arc<Mutex<FdState>>,
    stop: Arc<StopSignal>,
    pump: Option<JoinHandle<()>>,
}

impl FdHandle {
    /// Jobs completed on this cluster so far.
    pub fn completed(&self) -> u64 {
        self.state.lock().cluster.metrics.completed
    }

    /// Revenue earned at bid prices.
    pub fn revenue(&self) -> Money {
        self.state.lock().cluster.metrics.revenue_price
    }

    /// Daemon activity counters (requests, bids, declines, confirms).
    pub fn daemon_stats(&self) -> faucets_core::daemon::DaemonStats {
        self.state.lock().daemon.stats
    }

    /// Accepted contracts not yet completed.
    pub fn active_contracts(&self) -> usize {
        self.state.lock().contracts.len()
    }

    /// Stop the pump and the service.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    /// Simulate a daemon crash: stop serving with no deregistration and no
    /// goodbye to the FS or AppSpector. With [`FdOptions::store`] set,
    /// the journal survives on disk; [`spawn_fd_with`] on the same
    /// directory resumes the accepted contracts.
    pub fn kill(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        // The condvar inside the signal pops the pump out of its paced
        // wait immediately — shutdown latency is join time, not a tick.
        self.stop.stop();
        if let Some(p) = self.pump.take() {
            let _ = p.join();
        }
    }
}

impl Drop for FdHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

fn verify(
    fs: SocketAddr,
    token: &faucets_core::auth::SessionToken,
    opts: &CallOptions,
) -> Result<UserId, String> {
    match call_with(
        fs,
        &Request::VerifyToken {
            token: token.clone(),
        },
        opts,
    ) {
        Ok(Response::Verified { user }) => Ok(user),
        Ok(Response::Error(e)) => Err(e),
        Ok(other) => Err(format!("unexpected FS reply {other:?}")),
        Err(e) => Err(format!("FS unreachable: {e}")),
    }
}

/// Spawn an FD for `cluster`, register it with the FS, and start its pump.
///
/// `daemon` must carry `ServerInfo` whose address will be overwritten with
/// the actually bound socket (so port 0 works).
pub fn spawn_fd(
    addr: &str,
    daemon: FaucetsDaemon,
    cluster: Cluster,
    fs: SocketAddr,
    appspector: SocketAddr,
    clock: Clock,
) -> io::Result<FdHandle> {
    spawn_fd_with(
        addr,
        daemon,
        cluster,
        fs,
        appspector,
        clock,
        FdOptions::default(),
    )
}

/// [`spawn_fd`], with crash-recovery journaling, timeouts, retry, and
/// fault-injection options. If `opts.store` names an existing journal
/// directory, its contracts are restored before the service starts taking
/// traffic.
pub fn spawn_fd_with(
    addr: &str,
    mut daemon: FaucetsDaemon,
    cluster: Cluster,
    fs: SocketAddr,
    appspector: SocketAddr,
    clock: Clock,
    opts: FdOptions,
) -> io::Result<FdHandle> {
    let cluster_id = cluster.machine.cluster;
    let reg = faucets_telemetry::global();
    let cluster_name = cluster.machine.name.clone();
    let fd_labels = [("cluster", cluster_name.as_str())];
    let m_journal_writes = reg.counter("fd_journal_writes_total", &fd_labels);
    let m_restored = reg.counter("fd_journal_restored_contracts_total", &fd_labels);
    let state = Arc::new(Mutex::new(FdState {
        daemon: FaucetsDaemon::new(
            // placeholder; replaced below once the port is known
            faucets_core::directory::ServerInfo {
                fd_addr: String::new(),
                fd_port: 0,
                ..daemon.info.clone()
            },
            std::iter::empty::<String>(),
            Box::new(faucets_core::market::Baseline),
            Money::ZERO,
        ),
        cluster,
        staged: HashMap::new(),
        owners: HashMap::new(),
        contracts: HashMap::new(),
        m_journal_writes,
    }));

    // Recover the journal, if any, before the service can take traffic:
    // accepted contracts are resubmitted to the scheduler, staged files
    // re-attached.
    let store: FdStore = match &opts.store {
        Some(dir) => Some(
            Journal::open(
                dir,
                FdJournal::default(),
                &format!("fd-{cluster_id}"),
                opts.store_opts.clone(),
                opts.replication.as_ref(),
            )
            .map_err(io::Error::other)?
            .0,
        ),
        None => None,
    };
    let restored: Vec<(JobId, UserId)> = {
        let mut s = state.lock();
        let now = clock.now();
        let mut restored = vec![];
        if let Some(store) = &store {
            store.read(|j| {
                for (job, files) in &j.staged {
                    s.staged.insert(*job, files.clone());
                }
                for e in &j.contracts {
                    let job = e.spec.id;
                    s.cluster
                        .submit_job(e.spec.clone(), e.contract, e.price, now);
                    s.owners.insert(job, e.owner);
                    restored.push((job, e.owner));
                    s.contracts.insert(job, e.clone());
                }
            });
        }
        m_restored.add(restored.len() as u64);
        restored
    };

    // With a replicated journal, (re)assert the on-disk lease before
    // taking traffic: a restarted or promoted primary immediately holds a
    // fresh claim. Renewal clamps against any stamp already on disk, so a
    // backwards wall clock never writes an older claim.
    let repl_service = format!("fd-{cluster_id}");
    let lease_holder = format!("{repl_service}@{}", std::process::id());
    let lease_ttl_ms = opts.lease_ttl.as_millis() as u64;
    if let (Some(dir), Some(journal)) = (&opts.store, &store) {
        if let Some(repl) = journal.replicated() {
            let mut lease =
                faucets_store::read_lease(dir).unwrap_or_else(|| faucets_store::Lease {
                    holder: lease_holder.clone(),
                    epoch: repl.epoch(),
                    renewed_unix_ms: 0,
                    ttl_ms: lease_ttl_ms,
                });
            lease.holder = lease_holder.clone();
            lease.epoch = repl.epoch();
            lease.ttl_ms = lease_ttl_ms;
            lease.renew(crate::sentinel::unix_ms());
            let _ = faucets_store::write_lease(dir, &lease);
        }
    }

    // The FS endpoint set (primary + federated fallbacks) and the shared
    // rotation index: handlers verify tokens at whichever endpoint the
    // pump currently trusts.
    let fs_list: Arc<Vec<SocketAddr>> = Arc::new(
        std::iter::once(fs)
            .chain(opts.fs_fallbacks.iter().copied())
            .collect(),
    );
    let fs_idx = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let m_fs_failovers = reg.counter("fd_fs_failovers_total", &fd_labels);

    // Bind the service first so the real port is known.
    let st = Arc::clone(&state);
    let journal = store.clone();
    let clock_handler = clock.clone();
    let call_opts = opts.call.clone();
    let fs_list_h = Arc::clone(&fs_list);
    let fs_idx_h = Arc::clone(&fs_idx);
    let gate = PayoffGate::new(opts.bid_gate, &cluster_name, reg);
    let bid_gate = Arc::clone(&gate);
    let bid_probe_floor = opts.bid_probe_floor;
    let lease_dir = opts.store.clone();
    let lease_service = repl_service.clone();
    let lease_holder_h = lease_holder.clone();
    let lease_ttl_h = lease_ttl_ms;
    // The pump waits on this signal between due events; award handlers
    // poke it so a freshly scheduled job re-paces the wait, and shutdown
    // stops it.
    let stop = Arc::new(StopSignal::new());
    let pump_signal = Arc::clone(&stop);
    let service = serve_with(addr, "fd", opts.serve.clone(), move |req| {
        match req {
            Request::RequestBid { token, request } => {
                // Payoff-aware admission (§4 under overload): the gate
                // bounds concurrent solicitations, sheds the lowest
                // payoff-rate request when full, and drops doomed ones
                // whose propagated deadline has already expired.
                let flops = st.lock().daemon.info.flops_per_pe_sec;
                let rate = request.qos.payoff_rate(flops);
                let _permit = match bid_gate.enter(rate, request_deadline()) {
                    GateVerdict::Served(p) => p,
                    GateVerdict::Shed => return Response::Overloaded { retry_after_ms: 50 },
                    GateVerdict::Doomed => return Response::Overloaded { retry_after_ms: 0 },
                };
                // Charge the configured probe floor while holding the
                // permit, so the gate's inflight bound is a real capacity.
                if !bid_probe_floor.is_zero() {
                    std::thread::sleep(bid_probe_floor);
                }
                // §2.2: the FD re-checks the client with the FS.
                if let Err(e) = verify(current_fs(&fs_list_h, &fs_idx_h), &token, &call_opts) {
                    return Response::Error(e);
                }
                // Read the clock only while holding the lock: the pump also
                // advances the cluster, and scheduler time must be monotone.
                let mut s = st.lock();
                let now = clock_handler.now();
                let FdState {
                    daemon, cluster, ..
                } = &mut *s;
                Response::BidReply(daemon.handle_bid_request(
                    &request,
                    cluster,
                    &MarketInfo::default(),
                    now,
                ))
            }
            Request::Award {
                token,
                spec,
                contract,
                bid,
            } => {
                if let Err(e) = verify(current_fs(&fs_list_h, &fs_idx_h), &token, &call_opts) {
                    return Response::Error(e);
                }
                let (job, user) = (spec.id, spec.user);
                let entry = ContractEntry {
                    spec: spec.clone(),
                    contract,
                    price: bid.price,
                    owner: user,
                };
                // Journal the acceptance BEFORE the scheduler sees the
                // award, and NACK if it cannot be made durable: the client
                // treats the error as a declined bid and tries the next
                // one, so "accepted" always means "survives a crash".
                if let Some(store) = &journal {
                    if let Err(e) = store.commit(&FdRecord::Accept(entry.clone())) {
                        return Response::Error(format!("award not journaled: {e}"));
                    }
                }
                let outcome = {
                    let mut s = st.lock();
                    let now = clock_handler.now();
                    let FdState {
                        daemon, cluster, ..
                    } = &mut *s;
                    daemon.handle_award(spec, contract, &bid, cluster, now)
                };
                match outcome {
                    Ok(AwardOutcome::Confirmed) => {
                        {
                            let mut s = st.lock();
                            s.owners.insert(job, user);
                            s.contracts.insert(job, entry);
                            if journal.is_some() {
                                s.m_journal_writes.inc();
                            }
                        }
                        // The scheduler just gained a job: wake the pump
                        // so it re-paces against the new next completion.
                        pump_signal.notify();
                        let _ = call_with(
                            appspector,
                            &Request::RegisterJob {
                                job,
                                owner: user,
                                cluster: cluster_id,
                            },
                            &call_opts,
                        );
                        Response::AwardReply {
                            confirmed: true,
                            reason: None,
                        }
                    }
                    Ok(AwardOutcome::Reneged(r)) => {
                        retract(&journal, job);
                        Response::AwardReply {
                            confirmed: false,
                            reason: Some(format!("{r:?}")),
                        }
                    }
                    Err(e) => {
                        retract(&journal, job);
                        Response::Error(e.to_string())
                    }
                }
            }
            Request::UploadFile {
                token,
                job,
                name,
                data,
            } => {
                if let Err(e) = verify(current_fs(&fs_list_h, &fs_idx_h), &token, &call_opts) {
                    return Response::Error(e);
                }
                if let Some(store) = &journal {
                    if let Err(e) = store.commit(&FdRecord::Stage {
                        job,
                        name: name.clone(),
                        data: data.clone(),
                    }) {
                        return Response::Error(format!("upload not journaled: {e}"));
                    }
                }
                let mut s = st.lock();
                s.staged.entry(job).or_default().push((name, data));
                if journal.is_some() {
                    s.m_journal_writes.inc();
                }
                Response::Ok
            }
            // Sentinel liveness probe: answering IS the lease renewal —
            // the on-disk claim is re-stamped (clock-clamped) before the
            // reply, so "the primary answered" and "the lease is fresh"
            // are the same fact.
            Request::LeaseProbe { service } => match (&journal, &lease_dir) {
                (Some(j), Some(dir)) if service == lease_service => match j.replicated() {
                    Some(repl) => {
                        let mut lease = faucets_store::read_lease(dir).unwrap_or_else(|| {
                            faucets_store::Lease {
                                holder: lease_holder_h.clone(),
                                epoch: repl.epoch(),
                                renewed_unix_ms: 0,
                                ttl_ms: lease_ttl_h,
                            }
                        });
                        lease.holder = lease_holder_h.clone();
                        lease.epoch = repl.epoch();
                        lease.ttl_ms = lease_ttl_h;
                        lease.renew(crate::sentinel::unix_ms());
                        let _ = faucets_store::write_lease(dir, &lease);
                        Response::Lease {
                            position: repl.position(),
                            fenced: repl.is_fenced(),
                        }
                    }
                    None => Response::Error("journal is not replicated".into()),
                },
                _ => Response::Error(format!("no lease held for service {service:?}")),
            },
            // A sentinel promoted a replica: stop acknowledging NOW, not
            // at the next shipping round.
            Request::Fence { service, epoch } => match &journal {
                Some(j) if service == lease_service => match j.replicated() {
                    Some(repl) => {
                        repl.fence(epoch);
                        Response::Ok
                    }
                    None => Response::Error("journal is not replicated".into()),
                },
                _ => Response::Error(format!("unknown replicated service {service:?}")),
            },
            other => Response::Error(format!("FD cannot handle {other:?}")),
        }
    })?;

    // Fix up the registration info with the bound address and register.
    let bound = service.addr;
    daemon.info.fd_addr = bound.ip().to_string();
    daemon.info.fd_port = bound.port();
    // Advertise the replica set in the directory row, so failover tooling
    // (and curious clients) can locate this FD's followers.
    daemon.info.replicas = opts
        .replication
        .as_ref()
        .map(|r| r.followers.iter().map(|a| a.to_string()).collect())
        .unwrap_or_default();
    let info = daemon.info.clone();
    let apps: Vec<String> = daemon.exported_apps.iter().cloned().collect();
    state.lock().daemon = daemon;
    let _ = call_with(
        current_fs(&fs_list, &fs_idx),
        &Request::RegisterCluster {
            info: info.clone(),
            apps: apps.clone(),
        },
        &opts.call,
    );
    // Restored jobs are re-announced so AppSpector keeps monitoring them.
    for (job, owner) in restored {
        let _ = call_with(
            appspector,
            &Request::RegisterJob {
                job,
                owner,
                cluster: cluster_id,
            },
            &opts.call,
        );
    }

    // Pump: drives the scheduler clock, reports completions/telemetry,
    // heartbeats the FS.
    let stop2 = Arc::clone(&stop);
    let st = Arc::clone(&state);
    let journal = store;
    let call_opts = opts.call.clone();
    let heartbeat_every = opts.heartbeat_every;
    let pump = std::thread::Builder::new()
        .name(format!("fd-pump-{cluster_id}"))
        .spawn(move || {
            // Heartbeats are paced in *simulated* time (the FS liveness window
            // is simulated seconds), so any clock speedup keeps the FD alive.
            let mut last_heartbeat = faucets_sim::time::SimTime::ZERO;
            // Event-paced, not tick-paced: each round runs the body, then
            // sleeps exactly until the next due event — the scheduler's
            // next completion or the next heartbeat — instead of polling
            // every 5 ms. An award wakes the wait (the next completion
            // may have moved closer); stop wakes it for good. The cap
            // bounds clock drift if a wakeup is ever lost.
            const PACE_CAP: Duration = Duration::from_millis(500);
            loop {
                // Harvest completions under the lock (reading the clock inside
                // it, to stay monotone with the request handlers); talk to
                // peers outside it.
                let (now, completions, running, status) = {
                    let mut s = st.lock();
                    let now = clock.now();
                    let completions = s.cluster.on_time(now);
                    let running: Vec<(JobId, u32)> = s.cluster.running_jobs().collect();
                    (now, completions, running, s.cluster.status(now))
                };
                for c in &completions {
                    let job = c.outcome.job;
                    // Prune the journal best-effort: an unjournaled
                    // completion only means the job re-runs after a
                    // restart (at-least-once), never that it is lost.
                    let mut outputs: Vec<(String, Vec<u8>)> = {
                        let mut s = st.lock();
                        let outputs = s.staged.remove(&job).unwrap_or_default();
                        s.contracts.remove(&job);
                        if let Some(store) = &journal {
                            if store.commit(&FdRecord::Complete { job }).is_ok() {
                                s.m_journal_writes.inc();
                            }
                        }
                        outputs
                    };
                    outputs.push((
                        "output.dat".into(),
                        format!("completed at {now}").into_bytes(),
                    ));
                    let _ = call_with(
                        appspector,
                        &Request::CompleteJob { job, outputs },
                        &call_opts,
                    );
                }
                // Heartbeat + telemetry on the simulated cadence.
                if now.since(last_heartbeat) >= heartbeat_every
                    || last_heartbeat == faucets_sim::time::SimTime::ZERO
                {
                    last_heartbeat = now;
                    let fs_now = current_fs(&fs_list, &fs_idx);
                    match call_with(
                        fs_now,
                        &Request::Heartbeat {
                            cluster: cluster_id,
                            status,
                        },
                        &call_opts,
                    ) {
                        // "unknown cluster": the FS evicted us as dead (or
                        // was itself restarted). Re-register and carry on.
                        Ok(Response::Error(_)) => {
                            let _ = call_with(
                                fs_now,
                                &Request::RegisterCluster {
                                    info: info.clone(),
                                    apps: apps.clone(),
                                },
                                &call_opts,
                            );
                        }
                        // The endpoint is dead (not merely overloaded):
                        // rotate to the next federated shard and register
                        // there, so bids keep verifying and the directory
                        // keeps listing us.
                        Err(e) if fs_list.len() > 1 && !crate::proto::is_overload_error(&e) => {
                            fs_idx.fetch_add(1, Ordering::Relaxed);
                            m_fs_failovers.inc();
                            let _ = call_with(
                                current_fs(&fs_list, &fs_idx),
                                &Request::RegisterCluster {
                                    info: info.clone(),
                                    apps: apps.clone(),
                                },
                                &call_opts,
                            );
                        }
                        _ => {}
                    }
                    let total = { st.lock().cluster.machine.total_pes };
                    for (job, pes) in running {
                        let _ = call_with(
                            appspector,
                            &Request::PushSample {
                                job,
                                sample: TelemetrySample {
                                    at: now,
                                    pes,
                                    utilization: pes as f64 / total.max(1) as f64,
                                    throughput: pes as f64,
                                    app_data: format!("t={now}"),
                                },
                            },
                            &call_opts,
                        );
                    }
                }
                if stop2.is_stopped() {
                    break;
                }
                // Sleep until whichever comes first: the scheduler's next
                // completion or the next heartbeat, both converted from
                // simulated to wall time.
                let next_completion = st.lock().cluster.next_completion();
                let mut wait = clock
                    .wall_until(last_heartbeat + heartbeat_every)
                    .min(PACE_CAP);
                if let Some(at) = next_completion {
                    wait = wait.min(clock.wall_until(at));
                }
                if stop2.wait_for(wait) {
                    break;
                }
            }
        })?;

    Ok(FdHandle {
        service,
        cluster_id,
        gate,
        state,
        stop,
        pump: Some(pump),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::spawn_fs;
    use crate::service::call;
    use faucets_core::bid::BidRequest;
    use faucets_core::qos::QosBuilder;
    use faucets_sched::adaptive::ResizeCostModel;
    use faucets_sched::equipartition::Equipartition;
    use faucets_sched::machine::MachineSpec;

    #[test]
    fn fd_registers_and_answers_bids() {
        let clock = Clock::new(100.0);
        let fs = spawn_fs("127.0.0.1:0", clock.clone(), 11).unwrap();
        let aspect =
            crate::appspector_srv::spawn_appspector("127.0.0.1:0", fs.service.addr, 8).unwrap();

        let machine = MachineSpec::commodity(ClusterId(1), "turing", 64);
        let daemon = FaucetsDaemon::new(
            machine.server_info("127.0.0.1", 0),
            ["namd".to_string()],
            Box::new(faucets_core::market::Baseline),
            Money::from_units_f64(0.01),
        );
        let cluster = Cluster::new(machine, Box::new(Equipartition), ResizeCostModel::default());
        let fd = spawn_fd(
            "127.0.0.1:0",
            daemon,
            cluster,
            fs.service.addr,
            aspect.service.addr,
            clock,
        )
        .unwrap();

        // The FD registered itself (directory has it with the bound port).
        {
            let s = fs.state.lock();
            let e = s.directory.get(ClusterId(1)).expect("registered");
            assert_eq!(e.info.fd_port, fd.service.addr.port());
        }

        // A valid user can solicit a bid.
        call(
            fs.service.addr,
            &Request::CreateUser {
                user: "u".into(),
                password: "p".into(),
            },
        )
        .unwrap();
        let Response::Session { user, token } = call(
            fs.service.addr,
            &Request::Login {
                user: "u".into(),
                password: "p".into(),
            },
        )
        .unwrap() else {
            panic!()
        };
        let qos = QosBuilder::new("namd", 4, 16, 100.0).build().unwrap();
        let req = BidRequest {
            job: JobId(5),
            user,
            qos,
            issued_at: faucets_sim::time::SimTime::ZERO,
        };
        let Response::BidReply(reply) = call(
            fd.service.addr,
            &Request::RequestBid {
                token,
                request: req.clone(),
            },
        )
        .unwrap() else {
            panic!("expected bid reply")
        };
        let bid = reply.offer().expect("baseline bids on known apps");
        assert_eq!(bid.cluster, ClusterId(1));
        // $0.01/cpu-s × 100 cpu-s × 1.0 = $1.
        assert_eq!(bid.price, Money::from_units(1));

        // Forged token is bounced by the FS re-verification.
        let bogus = faucets_core::auth::SessionToken("bogus".into());
        let r = call(
            fd.service.addr,
            &Request::RequestBid {
                token: bogus,
                request: req,
            },
        )
        .unwrap();
        assert!(matches!(r, Response::Error(_)));
    }
}
