//! Sentinel: automatic, lease-driven failover for the replicated control
//! plane.
//!
//! PR 7 built the mechanism — WAL-frame shipping, `pick_primary`
//! elections, epoch fencing — but left the *orchestration* to an operator
//! or test harness: somebody had to notice the primary was dead, probe
//! the survivors, promote the winner, and restart the service. At
//! "hundreds of Compute Servers" (§5) that somebody must be a program.
//! The sentinel is that program:
//!
//! 1. **Lease probing** — every [`SentinelOptions::probe_every`] the
//!    sentinel sends [`crate::proto::Request::LeaseProbe`] to the current
//!    primary. Answering *is* the renewal: the primary re-stamps the
//!    lease persisted in its journal directory
//!    ([`faucets_store::Lease`], clock-clamped like
//!    [`crate::overload::TokenBucket`] so a backwards wall clock never
//!    writes an older claim) and replies with its replication position
//!    and fencing state.
//! 2. **Suspicion** — the sentinel tracks renewals on its own clamped
//!    clock. When no renewal lands for
//!    [`SentinelOptions::lease_ttl`], the primary is suspect. Clock
//!    discipline matters here: the clamp means a backwards jump can only
//!    *delay* an election (safe), never fire one spuriously, and a
//!    forward jump alone cannot depose a primary that is still
//!    answering — expiry is always "missed renewals", never "bad clock".
//! 3. **Election** — probe every replica's durable position
//!    ([`crate::proto::Request::ReplStatus`]). A quorum
//!    ([`SentinelOptions::min_quorum`], default majority) must answer or
//!    the election aborts and suspicion restarts — a partitioned
//!    sentinel must not promote a minority island. The winner is chosen
//!    by the same deterministic [`faucets_store::pick_primary`] rule the
//!    operator used (max `(epoch, generation, acked)`, ties to lowest
//!    index), so every sentinel replica-set view elects the same node.
//! 4. **Fencing** — before promoting, the sentinel best-effort sends
//!    [`crate::proto::Request::Fence`] with the new epoch to the deposed
//!    primary, closing the window where a paused-not-dead primary keeps
//!    acknowledging sync commits it will never be allowed to keep. (The
//!    shipping path would fence it anyway on its next frame; the wire
//!    fence makes it immediate.)
//! 5. **Promotion** — [`crate::proto::Request::ReplRelease`] detaches
//!    the winner's journal directory,
//!    [`faucets_store::prepare_promotion`] raises the epoch on disk, and
//!    the caller-supplied promote callback reopens the directory as the
//!    new primary service. For an FD that respawn re-registers with the
//!    FS under the same cluster id, flipping the directory row — clients
//!    and daemons discover the new primary through the same
//!    fallback-rotation they already use for federated FS shards.
//!
//! Every failover is recorded as a [`FailoverEvent`] with its measured
//! MTTR (suspicion to promoted), and the whole pipeline is counted:
//! `sentinel_probes_total`, `sentinel_probe_failures_total`,
//! `sentinel_failovers_total`, `sentinel_aborted_elections_total`, and
//! the `sentinel_epoch` gauge. Experiment E27 (`exp_selfheal`) drives a
//! seeded nemesis schedule against a sentinel-guarded grid and gates on
//! zero acked-award loss, one primary per epoch, and automatic MTTR
//! bounded against the operator-driven E24 baseline.

use crate::proto::{Request, Response};
use crate::service::{call_with, CallOptions, StopSignal};
use faucets_store::{pick_primary, prepare_promotion, ReplPosition};
use parking_lot::Mutex;
use std::io;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Milliseconds since the Unix epoch (0 if the system clock is before
/// it). Lease stamps go through [`faucets_store::Lease::renew`], which
/// clamps against the previous stamp, so callers need not pre-clamp.
pub(crate) fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Tuning for a [`Sentinel`]. Defaults suit tests and localhost grids;
/// production deployments raise the TTL well above probe latency.
#[derive(Clone)]
pub struct SentinelOptions {
    /// Name of the replicated service the lease guards (e.g. `fd-1` —
    /// must match the journal's service name on primary and replicas).
    pub service: String,
    /// How long the sentinel tolerates missed renewals before declaring
    /// the primary suspect and starting an election. Should comfortably
    /// exceed `probe_every` plus worst-case probe latency.
    pub lease_ttl: Duration,
    /// How often to probe the primary's lease.
    pub probe_every: Duration,
    /// Minimum replica answers required to run an election; `0` means a
    /// majority of the configured replica set. An election short of
    /// quorum aborts (counted) and suspicion restarts.
    pub min_quorum: usize,
    /// RPC options for probes, fences, and releases (retry, timeouts,
    /// pooling, fault injection).
    pub call: CallOptions,
    /// Signed skew, in milliseconds, added to the sentinel's wall-clock
    /// reads. Nemesis schedules use this to inject clock jumps; the
    /// sentinel's clamped clock must keep both jump directions from
    /// causing a spurious failover.
    pub skew_ms: Arc<AtomicI64>,
}

impl Default for SentinelOptions {
    fn default() -> Self {
        SentinelOptions {
            service: String::new(),
            lease_ttl: Duration::from_millis(500),
            probe_every: Duration::from_millis(50),
            min_quorum: 0,
            call: CallOptions::default(),
            skew_ms: Arc::new(AtomicI64::new(0)),
        }
    }
}

/// One completed automatic failover.
#[derive(Clone, Debug)]
pub struct FailoverEvent {
    /// The epoch the winner was promoted into.
    pub epoch: u64,
    /// The deposed primary's address.
    pub from: SocketAddr,
    /// The promoted primary's address.
    pub to: SocketAddr,
    /// Suspicion-to-promoted: lease declared expired → promote callback
    /// returned the new primary. The paper's recovery clock starts when
    /// detection *could* start, so probe cadence is included by design.
    pub mttr: Duration,
}

struct SentinelState {
    primary: SocketAddr,
    replicas: Vec<SocketAddr>,
    events: Vec<FailoverEvent>,
    /// Epochs ever observed holding a lease or promoted — the invariant
    /// checker asserts no epoch appears with two different primaries.
    reigns: Vec<(u64, SocketAddr)>,
}

/// Handle to a running sentinel thread. Dropping the handle does *not*
/// stop the sentinel; call [`Sentinel::shutdown`].
pub struct Sentinel {
    state: Arc<Mutex<SentinelState>>,
    stop: Arc<StopSignal>,
    thread: Option<JoinHandle<()>>,
}

impl Sentinel {
    /// The primary the sentinel currently trusts.
    pub fn primary(&self) -> SocketAddr {
        self.state.lock().primary
    }

    /// The replica set the sentinel will elect from.
    pub fn replicas(&self) -> Vec<SocketAddr> {
        self.state.lock().replicas.clone()
    }

    /// Completed failovers, oldest first.
    pub fn events(&self) -> Vec<FailoverEvent> {
        self.state.lock().events.clone()
    }

    /// Every `(epoch, primary)` reign observed. At most one primary per
    /// epoch is the dual-primary invariant E27 checks.
    pub fn reigns(&self) -> Vec<(u64, SocketAddr)> {
        self.state.lock().reigns.clone()
    }

    /// Tell the sentinel a replica moved — e.g. a bounced daemon that
    /// came back on a fresh port. `old` is replaced in the promotion
    /// pool; an unknown `old` appends `new` instead (the sentinel would
    /// rather probe a stranger than miss a survivor). Elections read the
    /// pool fresh each round, so the swap takes effect immediately.
    pub fn swap_replica(&self, old: SocketAddr, new: SocketAddr) {
        let mut s = self.state.lock();
        if let Some(slot) = s.replicas.iter_mut().find(|a| **a == old) {
            *slot = new;
        } else {
            s.replicas.push(new);
        }
    }

    /// Block until at least `n` failovers have completed, polling with a
    /// deadline. Returns whether the target was reached.
    pub fn await_failovers(&self, n: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if self.state.lock().events.len() >= n {
                return true;
            }
            std::thread::sleep(Duration::from_millis(3));
        }
        self.state.lock().events.len() >= n
    }

    /// Stop probing and join the sentinel thread. In-flight elections
    /// finish first (a half-promoted service would be worse than a late
    /// shutdown).
    pub fn shutdown(mut self) {
        // Wakes the probe loop out of its inter-probe wait immediately
        // instead of letting shutdown eat up to a full probe interval.
        self.stop.stop();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Sentinel {
    fn drop(&mut self) {
        self.stop.stop();
    }
}

/// Spawn a sentinel guarding `primary` with `replicas` as the promotion
/// pool. `promote` is invoked with the released, promotion-prepared
/// journal directory and the new epoch; it must reopen the directory as
/// the new primary service and return its address (for an FD: respawn
/// with the directory as `FdOptions::store`, which re-registers with the
/// FS and flips the directory row).
pub fn spawn_sentinel<F>(
    primary: SocketAddr,
    replicas: Vec<SocketAddr>,
    opts: SentinelOptions,
    promote: F,
) -> io::Result<Sentinel>
where
    F: FnMut(PathBuf, u64) -> io::Result<SocketAddr> + Send + 'static,
{
    if opts.service.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "SentinelOptions::service must name the replicated service",
        ));
    }
    let state = Arc::new(Mutex::new(SentinelState {
        primary,
        replicas,
        events: Vec::new(),
        reigns: Vec::new(),
    }));
    let stop = Arc::new(StopSignal::new());
    let thread = {
        let state = Arc::clone(&state);
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name(format!("sentinel-{}", opts.service))
            .spawn(move || run(state, stop, opts, promote))?
    };
    Ok(Sentinel {
        state,
        stop,
        thread: Some(thread),
    })
}

/// The sentinel's monotone wall clock: raw reading plus injected skew,
/// clamped against the last value handed out — the same discipline
/// [`faucets_store::Lease::renew`] applies on the primary's side.
fn clamped_now(last: &mut u64, skew: &AtomicI64) -> u64 {
    let raw = unix_ms().saturating_add_signed(skew.load(Ordering::Relaxed));
    *last = (*last).max(raw);
    *last
}

fn run<F>(
    state: Arc<Mutex<SentinelState>>,
    stop: Arc<StopSignal>,
    opts: SentinelOptions,
    mut promote: F,
) where
    F: FnMut(PathBuf, u64) -> io::Result<SocketAddr> + Send + 'static,
{
    let reg = faucets_telemetry::global();
    let labels = [("service", opts.service.as_str())];
    let m_probes = reg.counter("sentinel_probes_total", &labels);
    let m_probe_failures = reg.counter("sentinel_probe_failures_total", &labels);
    let m_failovers = reg.counter("sentinel_failovers_total", &labels);
    let m_aborted = reg.counter("sentinel_aborted_elections_total", &labels);
    let m_epoch = reg.gauge("sentinel_epoch", &labels);

    let ttl_ms = opts.lease_ttl.as_millis() as u64;
    let mut clock = 0u64;
    // Grant the initial primary a full TTL from startup so a sentinel
    // that boots during a brief stall does not instantly depose it.
    let mut last_renewal = clamped_now(&mut clock, &opts.skew_ms);
    let mut suspect_since: Option<Instant> = None;

    loop {
        // Stop-aware pacing: wakes the instant `shutdown()` flips the
        // signal, instead of sleeping out the rest of the interval.
        if stop.wait_for(opts.probe_every) {
            break;
        }
        let primary = state.lock().primary;
        m_probes.inc();
        let probe = call_with(
            primary,
            &Request::LeaseProbe {
                service: opts.service.clone(),
            },
            &opts.call,
        );
        let now = clamped_now(&mut clock, &opts.skew_ms);
        match probe {
            Ok(Response::Lease { position, fenced }) if !fenced => {
                last_renewal = now;
                suspect_since = None;
                m_epoch.set(position.epoch as f64);
                let mut s = state.lock();
                if !s.reigns.iter().any(|&(e, _)| e == position.epoch) {
                    s.reigns.push((position.epoch, primary));
                }
                continue;
            }
            // A fenced primary is already deposed: skip straight past
            // the TTL wait — there is nothing left to renew.
            Ok(Response::Lease { .. }) => {
                m_probe_failures.inc();
                last_renewal = now.saturating_sub(ttl_ms.saturating_add(1));
            }
            Ok(_) | Err(_) => m_probe_failures.inc(),
        }
        if now <= last_renewal.saturating_add(ttl_ms) {
            continue;
        }
        let started = *suspect_since.get_or_insert_with(Instant::now);

        // ---- Election ----
        let replicas = state.lock().replicas.clone();
        let mut answers: Vec<(usize, ReplPosition)> = Vec::new();
        for (i, addr) in replicas.iter().enumerate() {
            let req = Request::ReplStatus {
                service: opts.service.clone(),
            };
            if let Ok(Response::Repl(faucets_store::ReplReply::Ok(pos))) =
                call_with(*addr, &req, &opts.call)
            {
                answers.push((i, pos));
            }
        }
        let quorum = if opts.min_quorum == 0 {
            replicas.len() / 2 + 1
        } else {
            opts.min_quorum
        };
        if answers.len() < quorum || answers.is_empty() {
            // Short of quorum this sentinel might be the partitioned
            // minority; promoting here risks dual primaries. Abort and
            // re-suspect on the next probe round.
            m_aborted.inc();
            continue;
        }
        let positions: Vec<ReplPosition> = answers.iter().map(|&(_, p)| p).collect();
        let Some(win) = pick_primary(&positions) else {
            m_aborted.inc();
            continue;
        };
        let (winner_idx, winner_pos) = answers[win];
        let winner_addr = replicas[winner_idx];
        let new_epoch = positions.iter().map(|p| p.epoch).max().unwrap_or(0) + 1;

        // Fence the deposed primary first (best effort: it may be dead,
        // which fences it more thoroughly than any RPC).
        let _ = call_with(
            primary,
            &Request::Fence {
                service: opts.service.clone(),
                epoch: new_epoch,
            },
            &opts.call,
        );

        // Release the winner's journal and promote it.
        let released = call_with(
            winner_addr,
            &Request::ReplRelease {
                service: opts.service.clone(),
            },
            &opts.call,
        );
        let dir = match released {
            Ok(Response::Released { dir }) => PathBuf::from(dir),
            _ => {
                m_aborted.inc();
                continue;
            }
        };
        if prepare_promotion(&dir, &opts.service, new_epoch).is_err() {
            m_aborted.inc();
            continue;
        }
        match promote(dir, new_epoch) {
            Ok(new_primary) => {
                let mttr = started.elapsed();
                m_failovers.inc();
                m_epoch.set(new_epoch as f64);
                let mut s = state.lock();
                s.replicas.retain(|a| *a != winner_addr);
                let from = s.primary;
                s.primary = new_primary;
                s.reigns.push((new_epoch, new_primary));
                s.events.push(FailoverEvent {
                    epoch: new_epoch,
                    from,
                    to: new_primary,
                    mttr,
                });
                drop(s);
                let _ = winner_pos; // election detail; position now lives on disk
                suspect_since = None;
                last_renewal = clamped_now(&mut clock, &opts.skew_ms);
            }
            Err(_) => {
                // The journal directory is released and epoch-raised but
                // nothing serves it; retrying promote would need the dir
                // back. Count it and keep watching — the operator path
                // (E24) still works on the prepared directory.
                m_aborted.inc();
            }
        }
    }
}
