//! `faucets` — the command-line client and service launcher.
//!
//! §2: *"The user interacts with the system using a web browser or a
//! command-line client or a GUI client."* This is the command-line client,
//! plus launchers for the three services, so a whole Figure-1 grid can be
//! assembled from shells:
//!
//! ```text
//! faucets fs         --addr 127.0.0.1:7700
//! faucets appspector --addr 127.0.0.1:7701 --fs 127.0.0.1:7700
//! faucets fd --addr 127.0.0.1:7710 --fs 127.0.0.1:7700 \
//!            --appspector 127.0.0.1:7701 --name turing --pes 256 \
//!            --policy equipartition --strategy util-interp
//! faucets register --fs 127.0.0.1:7700 --user alice --password pw
//! faucets submit --fs 127.0.0.1:7700 --appspector 127.0.0.1:7701 \
//!            --user alice --password pw --app namd --minpe 8 --maxpe 32 \
//!            --cpu-seconds 7200 --deadline-hours 2 --file input.psf
//! ```
//!
//! Every service accepts `--speedup <x>` to run its scheduler clock at x
//! simulated seconds per wall second (demos in seconds instead of hours).
//! Note that each process starts its own clock at launch, so start the
//! services before submitting when using large speedups.

use faucets_core::appspector::render_submission_form;
use faucets_core::daemon::FaucetsDaemon;
use faucets_core::ids::ClusterId;
use faucets_core::money::Money;
use faucets_core::qos::{PayoffFn, QosBuilder};
use faucets_net::prelude::*;
use faucets_sched::adaptive::ResizeCostModel;
use faucets_sched::cluster::Cluster;
use faucets_sched::machine::MachineSpec;
use faucets_sim::time::SimDuration;
use std::net::SocketAddr;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: faucets <fs|appspector|fd|register|submit|watch> [--flag value ...]\n\
         run `faucets help` or see the module docs for the full flag list"
    );
    std::process::exit(2);
}

struct Args(Vec<String>);

impl Args {
    fn get(&self, name: &str) -> Option<String> {
        self.0
            .iter()
            .position(|a| a == &format!("--{name}"))
            .and_then(|i| self.0.get(i + 1).cloned())
    }
    fn req(&self, name: &str) -> String {
        self.get(name).unwrap_or_else(|| {
            eprintln!("missing required flag --{name}");
            std::process::exit(2);
        })
    }
    fn parse<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
    fn addr(&self, name: &str) -> SocketAddr {
        self.req(name).parse().unwrap_or_else(|e| {
            eprintln!("bad --{name}: {e}");
            std::process::exit(2);
        })
    }
}

fn block_forever() -> ! {
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first().cloned() else {
        usage()
    };
    let args = Args(argv[1..].to_vec());
    let speedup: f64 = args.parse("speedup", 1.0);
    let clock = Clock::new(speedup);

    match cmd.as_str() {
        "fs" => {
            let addr = args.get("addr").unwrap_or_else(|| "127.0.0.1:7700".into());
            let seed: u64 = args.parse("seed", 7);
            let h = spawn_fs(&addr, clock, seed).expect("bind FS");
            println!("Faucets Central Server listening on {}", h.service.addr);
            block_forever();
        }
        "appspector" => {
            let addr = args.get("addr").unwrap_or_else(|| "127.0.0.1:7701".into());
            let fs = args.addr("fs");
            let h = spawn_appspector(&addr, fs, args.parse("buffer", 64)).expect("bind AppSpector");
            println!("AppSpector server listening on {}", h.service.addr);
            block_forever();
        }
        "fd" => {
            let addr = args.get("addr").unwrap_or_else(|| "127.0.0.1:0".into());
            let fs = args.addr("fs");
            let aspect = args.addr("appspector");
            let name = args.get("name").unwrap_or_else(|| "cluster".into());
            let pes: u32 = args.parse("pes", 128);
            let id: u64 = args.parse("cluster-id", 1);
            let policy = args.get("policy").unwrap_or_else(|| "equipartition".into());
            let strategy = args.get("strategy").unwrap_or_else(|| "baseline".into());
            let apps = args.get("apps").unwrap_or_else(|| "namd,cfd,qmc".into());
            let cost = Money::from_units_f64(args.parse("cost-per-cpusec", 0.01));

            let machine = MachineSpec::commodity(ClusterId(id), name.clone(), pes);
            let daemon = FaucetsDaemon::new(
                machine.server_info("127.0.0.1", 0),
                apps.split(',').map(str::to_string),
                faucets_core::market::strategy::by_name(&strategy),
                cost,
            );
            let cluster = Cluster::new(
                machine,
                faucets_sched::policy::by_name(&policy),
                ResizeCostModel::default(),
            );
            let h = spawn_fd(&addr, daemon, cluster, fs, aspect, clock).expect("bind FD");
            println!(
                "Faucets Daemon '{name}' ({pes} PEs, {policy}/{strategy}) on {} — registered with {fs}",
                h.service.addr
            );
            block_forever();
        }
        "register" => {
            let fs = args.addr("fs");
            let r = call(
                fs,
                &Request::CreateUser {
                    user: args.req("user"),
                    password: args.req("password"),
                },
            );
            match r {
                Ok(Response::Verified { user }) => println!("account created: {user}"),
                other => {
                    eprintln!("registration failed: {other:?}");
                    std::process::exit(1);
                }
            }
        }
        "submit" => {
            let fs = args.addr("fs");
            let aspect = args.addr("appspector");
            let mut client = FaucetsClient::login(
                fs,
                aspect,
                clock.clone(),
                &args.req("user"),
                &args.req("password"),
            )
            .unwrap_or_else(|e| {
                eprintln!("login failed: {e}");
                std::process::exit(1);
            });

            let cpu: f64 = args.parse("cpu-seconds", 3600.0);
            let deadline_h: f64 = args.parse("deadline-hours", 4.0);
            let payoff: i64 = args.parse("payoff", 100);
            let qos = QosBuilder::new(
                args.get("app").unwrap_or_else(|| "namd".into()),
                args.parse("minpe", 8),
                args.parse("maxpe", 32),
                cpu,
            )
            .efficiency(0.95, 0.8)
            .adaptive()
            .payoff(PayoffFn::hard_only(
                clock
                    .now()
                    .saturating_add(SimDuration::from_secs_f64(deadline_h * 3600.0)),
                Money::from_units(payoff),
                Money::from_units(payoff / 5),
            ))
            .build()
            .unwrap_or_else(|e| {
                eprintln!("invalid job: {e}");
                std::process::exit(1);
            });

            // Stage files named on the command line.
            let mut inputs = vec![];
            let mut names = vec![];
            let mut it = args.0.iter();
            while let Some(a) = it.next() {
                if a == "--file" {
                    if let Some(path) = it.next() {
                        let data = std::fs::read(path).unwrap_or_else(|e| {
                            eprintln!("cannot read {path}: {e}");
                            std::process::exit(1);
                        });
                        names.push(path.clone());
                        inputs.push((path.clone(), data));
                    }
                }
            }
            print!("{}", render_submission_form(&qos, &names));

            match client.submit(qos, &inputs) {
                Ok(sub) => {
                    println!(
                        "{} awarded to {} for {} ({} bids, promised by {})",
                        sub.job, sub.cluster, sub.price, sub.bids_received, sub.promised_completion
                    );
                    if args.get("no-wait").is_none() {
                        println!("waiting for completion (ctrl-c to stop watching)...");
                        match client.wait(
                            sub.job,
                            Duration::from_secs(args.parse("timeout-secs", 600)),
                        ) {
                            Ok(snap) => print!("{}", snap.render_display()),
                            Err(e) => eprintln!("{e}"),
                        }
                    } else {
                        println!("watch later with: faucets watch --job {}", sub.job.raw());
                    }
                }
                Err(e) => {
                    eprintln!("submission failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        "watch" => {
            let fs = args.addr("fs");
            let aspect = args.addr("appspector");
            let mut client =
                FaucetsClient::login(fs, aspect, clock, &args.req("user"), &args.req("password"))
                    .unwrap_or_else(|e| {
                        eprintln!("login failed: {e}");
                        std::process::exit(1);
                    });
            let job = faucets_core::ids::JobId(args.parse("job", 0));
            match client.watch(job) {
                Ok(snap) => print!("{}", snap.render_display()),
                Err(e) => {
                    eprintln!("watch failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        "help" | "--help" | "-h" => {
            println!(
                "faucets — compute power as a utility (ICPP 2004 reproduction)\n\n\
                 services:\n\
                 \x20 faucets fs         --addr A [--speedup X]\n\
                 \x20 faucets appspector --addr A --fs FS\n\
                 \x20 faucets fd         --addr A --fs FS --appspector AS --name N --pes P\n\
                 \x20                    [--policy fcfs|easy-backfill|equipartition|profit|intranet-priority]\n\
                 \x20                    [--strategy baseline|util-interp|deadline-aware|weather-aware]\n\
                 client:\n\
                 \x20 faucets register --fs FS --user U --password P\n\
                 \x20 faucets submit   --fs FS --appspector AS --user U --password P\n\
                 \x20                  [--app namd --minpe 8 --maxpe 32 --cpu-seconds 3600]\n\
                 \x20                  [--deadline-hours 4 --payoff 100 --file F ... --no-wait]\n\
                 \x20 faucets watch    --fs FS --appspector AS --user U --password P --job N"
            );
        }
        _ => usage(),
    }
}
