//! Thin, dependency-free epoll wrapper powering the readiness-driven
//! serve path ([`crate::service::serve_with`]).
//!
//! The repo's no-deps discipline rules out `mio`/`tokio`, so this module
//! declares the handful of syscalls it needs (`epoll_create1`, `epoll_ctl`,
//! `epoll_wait`, `eventfd`) directly via `extern "C"` — `std` already links
//! libc, so the symbols resolve without adding a crate. Three pieces live
//! here:
//!
//! - [`Epoll`]: level-triggered readiness polling over raw fds, each
//!   registered with a `u64` token that comes back on its events.
//! - [`Waker`]: an `eventfd` the executor pool and `ServiceHandle::stop`
//!   write to from other threads to pop the reactor out of `epoll_wait`.
//! - [`FrameBuf`]: an incremental decoder for the length-prefixed wire
//!   format (`u32` BE length + payload) that turns arbitrary read chunks
//!   into whole frames, enforcing [`crate::proto::MAX_FRAME`] so a garbage
//!   prefix cannot balloon the buffer.
//!
//! Everything here is serde-free and socket-type-agnostic on purpose: the
//! unit tests drive it with pipes and hand-rolled byte streams, and the
//! reactor loop in `service.rs` composes these primitives with the
//! executor pool.

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

// Raw syscall surface. Signatures mirror the glibc prototypes; `std`
// links libc so these resolve at link time without a `libc` crate dep.
#[repr(C)]
#[allow(dead_code)] // pointer-type only; records are marshaled as raw bytes
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

const EPOLL_CLOEXEC: i32 = 0x80000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EFD_NONBLOCK: i32 = 0x800;
const EFD_CLOEXEC: i32 = 0x80000;

/// NOTE: the kernel ABI packs `epoll_event` on x86-64 (12 bytes, u32 +
/// unaligned u64). Rather than fight `repr(packed)` reference rules, we
/// marshal through explicit little-endian byte buffers sized for the
/// target: 12 bytes on x86-64, 16 elsewhere.
#[cfg(target_arch = "x86_64")]
const EVENT_SIZE: usize = 12;
#[cfg(not(target_arch = "x86_64"))]
const EVENT_SIZE: usize = std::mem::size_of::<EpollEvent>();

#[cfg(target_arch = "x86_64")]
const DATA_OFFSET: usize = 4;
#[cfg(not(target_arch = "x86_64"))]
const DATA_OFFSET: usize = std::mem::offset_of!(EpollEvent, data);

fn last_os_error() -> io::Error {
    io::Error::last_os_error()
}

/// One readiness notification, decoded from the kernel's event record.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Data can be read (includes error/hangup so a `read()` surfaces the
    /// failure instead of the fd being silently ignored).
    pub readable: bool,
    /// The fd can accept writes again.
    pub writable: bool,
    /// The peer closed or the fd errored; the connection is done for.
    pub hangup: bool,
}

/// Which readiness directions to watch for a registered fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn mask(self) -> u32 {
        let mut m = EPOLLRDHUP;
        if self.readable {
            m |= EPOLLIN;
        }
        if self.writable {
            m |= EPOLLOUT;
        }
        m
    }
}

/// Level-triggered epoll instance. All methods are `&self`; the kernel
/// serializes `epoll_ctl` against `epoll_wait` internally, so `Waker`
/// writes and control calls are safe from other threads.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: plain syscall, no pointers.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        // The kernel ABI packs epoll_event on x86-64 (`data` at offset 4),
        // so marshal into an explicit byte buffer instead of passing an
        // aligned Rust struct.
        let mut raw = [0u8; 16];
        raw[..4].copy_from_slice(&interest.mask().to_ne_bytes());
        raw[DATA_OFFSET..DATA_OFFSET + 8].copy_from_slice(&token.to_ne_bytes());
        // SAFETY: `raw` holds one kernel-ABI event record; the kernel
        // copies it out on ADD/MOD and ignores it on DEL.
        let rc = unsafe { epoll_ctl(self.fd, op, fd, raw.as_mut_ptr() as *mut EpollEvent) };
        if rc < 0 {
            return Err(last_os_error());
        }
        Ok(())
    }

    /// Register `fd` with `token`; events for it report that token.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Change the watched directions for an already-registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Stop watching `fd`. Safe to call right before closing it.
    pub fn remove(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::READ)
    }

    /// Block until at least one registered fd is ready (or `timeout`
    /// expires; `None` blocks indefinitely). Decoded events are appended
    /// to `out` (which is cleared first). EINTR is retried internally.
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        out.clear();
        const MAX_EVENTS: usize = 1024;
        let mut raw = [0u8; EVENT_SIZE * MAX_EVENTS];
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
        };
        let n = loop {
            // SAFETY: `raw` holds MAX_EVENTS kernel-ABI event records.
            let rc = unsafe {
                epoll_wait(
                    self.fd,
                    raw.as_mut_ptr() as *mut EpollEvent,
                    MAX_EVENTS as i32,
                    timeout_ms,
                )
            };
            if rc >= 0 {
                break rc as usize;
            }
            let err = last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
            // EINTR with a finite timeout: retry with the same budget;
            // callers treat `wait` as "at most roughly timeout".
        };
        for i in 0..n {
            let rec = &raw[i * EVENT_SIZE..(i + 1) * EVENT_SIZE];
            let events = u32::from_ne_bytes(rec[..4].try_into().unwrap());
            let token = u64::from_ne_bytes(rec[DATA_OFFSET..DATA_OFFSET + 8].try_into().unwrap());
            let hangup = events & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0;
            out.push(Event {
                token,
                readable: events & EPOLLIN != 0 || hangup,
                writable: events & EPOLLOUT != 0,
                hangup,
            });
        }
        Ok(n)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: fd is owned by this struct and closed exactly once.
        unsafe {
            close(self.fd);
        }
    }
}

/// Cross-thread wakeup for a reactor parked in [`Epoll::wait`]. Backed by
/// a nonblocking `eventfd`: `wake()` writes a counter increment (cheap,
/// idempotent while pending), the reactor registers [`Waker::fd`] for
/// reads and calls [`Waker::drain`] when its token fires.
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    pub fn new() -> io::Result<Waker> {
        // SAFETY: plain syscall.
        let fd = unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) };
        if fd < 0 {
            return Err(last_os_error());
        }
        Ok(Waker { fd })
    }

    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Nudge the reactor. Never blocks: if the counter is already at its
    /// max (wakeup already pending) the EAGAIN is ignored.
    pub fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: writes 8 bytes from a stack value.
        unsafe {
            let _ = write(self.fd, one.to_ne_bytes().as_ptr(), 8);
        }
    }

    /// Clear pending wakeups so level-triggered polling doesn't spin.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // SAFETY: reads up to 8 bytes into a stack buffer.
        unsafe {
            let _ = read(self.fd, buf.as_mut_ptr(), 8);
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: fd is owned by this struct and closed exactly once.
        unsafe {
            close(self.fd);
        }
    }
}

// SAFETY: the waker is just an fd; write/read on it are thread-safe.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

/// Incremental decoder for the `u32` BE length-prefixed wire format.
///
/// Feed it whatever chunks the socket yields via [`FrameBuf::extend`],
/// then pull complete payloads with [`FrameBuf::next_frame`]. A length
/// prefix above the configured maximum is a protocol violation and
/// returns an error — the caller must drop the connection, since the
/// stream can no longer be re-synchronized.
pub struct FrameBuf {
    buf: Vec<u8>,
    /// Consumed prefix; compacted periodically instead of per-frame so a
    /// burst of pipelined frames costs one memmove, not one per frame.
    start: usize,
    max_frame: usize,
}

impl FrameBuf {
    pub fn new(max_frame: usize) -> FrameBuf {
        FrameBuf {
            buf: Vec::new(),
            start: 0,
            max_frame,
        }
    }

    /// Append raw bytes read off the socket.
    pub fn extend(&mut self, chunk: &[u8]) {
        // Compact before growing if more than half the buffer is dead.
        if self.start > 0 && self.start >= self.buf.len() / 2 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Bytes currently buffered and not yet returned as frames.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Pop the next complete frame payload, if one is fully buffered.
    ///
    /// `Ok(None)` means "need more bytes". `Err` means the stream is
    /// corrupt (oversized length prefix) and must be closed.
    pub fn next_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes(avail[..4].try_into().unwrap()) as usize;
        if len > self.max_frame {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds maximum {}", self.max_frame),
            ));
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let payload = avail[4..4 + len].to_vec();
        self.start += 4 + len;
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::sync::Arc;
    use std::time::Instant;

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut f = (payload.len() as u32).to_be_bytes().to_vec();
        f.extend_from_slice(payload);
        f
    }

    #[test]
    fn framebuf_reassembles_across_arbitrary_chunking() {
        let mut wire = Vec::new();
        let payloads: Vec<Vec<u8>> = (0..17u8)
            .map(|i| (0..=i).map(|j| i ^ j).collect::<Vec<u8>>())
            .collect();
        for p in &payloads {
            wire.extend_from_slice(&frame(p));
        }
        // Feed in every chunk size from 1 byte to the whole wire at once.
        for chunk in [1usize, 2, 3, 5, 7, 16, wire.len()] {
            let mut fb = FrameBuf::new(1 << 20);
            let mut got = Vec::new();
            for piece in wire.chunks(chunk) {
                fb.extend(piece);
                while let Some(p) = fb.next_frame().expect("well-formed wire") {
                    got.push(p);
                }
            }
            assert_eq!(got, payloads, "chunk size {chunk}");
            assert_eq!(fb.pending_bytes(), 0);
        }
    }

    #[test]
    fn framebuf_rejects_oversized_length_prefix() {
        let mut fb = FrameBuf::new(64);
        fb.extend(&(65u32).to_be_bytes());
        fb.extend(&[0u8; 10]);
        assert!(fb.next_frame().is_err(), "oversized prefix must error");
    }

    #[test]
    fn framebuf_zero_length_frames_round_trip() {
        let mut fb = FrameBuf::new(64);
        fb.extend(&frame(b""));
        fb.extend(&frame(b"x"));
        assert_eq!(fb.next_frame().unwrap(), Some(Vec::new()));
        assert_eq!(fb.next_frame().unwrap(), Some(b"x".to_vec()));
        assert_eq!(fb.next_frame().unwrap(), None);
    }

    #[test]
    fn epoll_reports_readiness_with_tokens() {
        use std::os::unix::io::AsRawFd;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(listener.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        // Nothing pending yet: a short wait times out with zero events.
        let n = ep
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);

        let client = TcpStream::connect(addr).unwrap();
        let n = ep.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        let (mut srv, _) = listener.accept().unwrap();
        srv.set_nonblocking(true).unwrap();
        ep.add(srv.as_raw_fd(), 9, Interest::READ).unwrap();
        drop(client); // EOF on the accepted side
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let n = ep
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if let Some(ev) = events.iter().find(|e| e.token == 9) {
                assert!(ev.readable, "EOF must surface as readable");
                let mut buf = [0u8; 8];
                assert_eq!(srv.read(&mut buf).unwrap(), 0, "read at EOF");
                break;
            }
            assert!(Instant::now() < deadline, "no EOF event after {n} events");
        }
        ep.remove(srv.as_raw_fd()).unwrap();
    }

    #[test]
    fn epoll_write_interest_tracks_buffer_space() {
        use std::os::unix::io::AsRawFd;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.set_nonblocking(true).unwrap();
        let (srv, _) = listener.accept().unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(client.as_raw_fd(), 1, Interest::WRITE).unwrap();
        let mut events = Vec::new();
        let n = ep.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(n >= 1 && events[0].writable, "fresh socket is writable");

        // Fill the socket until WouldBlock, then writability must clear.
        let chunk = [0u8; 64 * 1024];
        loop {
            match client.write(&chunk) {
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => panic!("unexpected write error: {e}"),
            }
        }
        let n = ep
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(
            !events.iter().any(|e| e.writable),
            "full socket must not report writable ({n} events)"
        );
        drop(srv);
    }

    #[test]
    fn waker_pops_a_blocked_wait_and_drains() {
        let ep = Arc::new(Epoll::new().unwrap());
        let waker = Arc::new(Waker::new().unwrap());
        ep.add(waker.fd(), 42, Interest::READ).unwrap();

        let w2 = Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            w2.wake();
            w2.wake(); // coalesces: still one readable event
        });
        let mut events = Vec::new();
        let start = Instant::now();
        let n = ep.wait(&mut events, Some(Duration::from_secs(10))).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 42);
        assert!(start.elapsed() < Duration::from_secs(5), "wake was prompt");
        waker.drain();
        // Drained: no residual readiness.
        let n = ep
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "drain must clear the eventfd");
        t.join().unwrap();
    }
}
