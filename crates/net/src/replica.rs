//! Control-plane replication over the wire: follower daemons, remote
//! replica links, and the [`Journal`] switch that lets the FS and FD run
//! their write-ahead journals either single-node or replicated.
//!
//! The `faucets_store::replicate` module defines the mechanics — frame
//! shipping, epoch fencing, snapshot catch-up, deterministic promotion —
//! against an abstract [`ReplicaLink`]. This module supplies the deployed
//! form of both ends:
//!
//! * [`spawn_replica`] runs a **follower daemon**: a TCP service answering
//!   [`Request::ReplAppend`] / [`Request::ReplSnapshot`] /
//!   [`Request::ReplStatus`] by persisting frames into per-service
//!   [`FollowerStore`]s. A follower's on-disk directory is byte-compatible
//!   with the primary's, so promotion is nothing more exotic than opening
//!   the directory with the normal recovery path. It also answers
//!   [`Request::ReplRelease`] — the sentinel's remote promotion hand-off,
//!   equivalent to [`ReplicaHandle::release`] over the wire.
//! * [`RemoteLink`] is a [`ReplicaLink`] speaking the same protocol from
//!   the primary side, through [`call_with`] — so replication traffic
//!   rides the existing retry, deadline, breaker, and pool stack, and is
//!   fault-injectable like every other Faucets RPC.
//! * [`Journal`] is what the FS/FD journal handle becomes: `Plain` wraps
//!   the PR-3 [`DurableStore`] unchanged; `Replicated` routes every commit
//!   through a [`ReplicatedStore`] built from a [`ReplicationConfig`].
//!
//! ## Failover contract
//!
//! Acknowledged-entry durability across failover is the point of the
//! design: in sync mode a client `Ok` implies the record is on the
//! required follower quorum, so *any* electable follower has it; in async
//! mode an `Ok` implies local durability only, and the published lag
//! (`repl_lag`) bounds what a failover may lose. Election is
//! deterministic — probe every survivor's [`ReplStatus`] position and pick
//! the maximum `(epoch, generation, acked)` (ties broken by list order,
//! see `faucets_store::pick_primary`) — and the deposed primary is fenced
//! by epoch the moment it talks to any follower that has seen the new
//! reign.
//!
//! One sizing caveat: frames travel as JSON inside [`MAX_FRAME`]-bounded
//! protocol frames, so a single journal record must stay well under the
//! frame bound once encoded (ample for the row-sized records the FS and
//! FD journal; [`RemoteLink`] batches small frames and never splits one).

use crate::proto::{Request, Response};
use crate::service::{call_with, serve_with, CallOptions, ServeOptions, ServiceHandle};
use faucets_store::{
    Durable, DurableStore, FollowerOptions, FollowerStore, RecoveryReport, ReplFrame, ReplOptions,
    ReplPosition, ReplReply, ReplicaLink, ReplicatedStore, ReplicationMode, SnapshotBlob,
    StoreError, StoreOptions,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Raw-payload budget per shipped [`Request::ReplAppend`] batch. JSON
/// encoding of `Vec<u8>` payloads expands them several-fold, so this is
/// set well under [`crate::proto::MAX_FRAME`].
const MAX_BATCH_PAYLOAD: usize = 2 * 1024 * 1024;

/// Frame-count bound per shipped batch, so a burst of tiny records still
/// produces reasonably sized RPCs.
const MAX_BATCH_FRAMES: usize = 1024;

/// Options for [`spawn_replica`].
#[derive(Clone, Default)]
pub struct ReplicaOptions {
    /// Serve-side options (timeouts, faults, admission limits).
    pub serve: ServeOptions,
    /// Skip fsync in follower stores (tests/benchmarks only; a follower
    /// that lies about durability voids the sync-mode loss contract).
    pub no_fsync: bool,
}

/// A running follower daemon hosting one [`FollowerStore`] per replicated
/// service name.
pub struct ReplicaHandle {
    /// The bound address (useful with port 0).
    pub addr: SocketAddr,
    stores: Arc<Mutex<HashMap<String, Arc<FollowerStore>>>>,
    dirs: HashMap<String, PathBuf>,
    service: Option<ServiceHandle>,
}

impl ReplicaHandle {
    /// The follower's current durable position for `service`, if hosted.
    pub fn position(&self, service: &str) -> Option<ReplPosition> {
        self.stores.lock().get(service).map(|s| s.position())
    }

    /// Detach `service` from this follower and return its journal
    /// directory — the promotion hand-off. After release the follower
    /// answers `NotFound` for the service, so a fenced ex-primary cannot
    /// keep feeding it behind the promoted node's back, and the caller may
    /// open the directory with [`DurableStore::open`] (or
    /// [`ReplicatedStore::open`]) to take over as primary.
    pub fn release(&self, service: &str) -> Option<PathBuf> {
        self.stores.lock().remove(service)?;
        self.dirs.get(service).cloned()
    }

    /// Graceful stop: the accept loop and workers exit; stores stay on
    /// disk.
    pub fn shutdown(mut self) {
        if let Some(s) = self.service.take() {
            s.shutdown();
        }
    }

    /// Simulate a crash: stop serving immediately, no goodbyes.
    pub fn kill(mut self) {
        if let Some(s) = self.service.take() {
            s.kill();
        }
    }
}

/// Spawn a follower daemon on `addr` hosting one [`FollowerStore`] per
/// `(service name, journal directory)` pair. Each store recovers whatever
/// the directory already holds, so a restarted follower resumes from its
/// durable position and asks the primary only for what it missed.
pub fn spawn_replica(
    addr: &str,
    services: &[(String, PathBuf)],
    opts: ReplicaOptions,
) -> io::Result<ReplicaHandle> {
    let mut map = HashMap::new();
    let mut dirs = HashMap::new();
    for (name, dir) in services {
        let store = FollowerStore::open(
            dir,
            FollowerOptions {
                service: name.clone(),
                no_fsync: opts.no_fsync,
            },
        )
        .map_err(io::Error::other)?;
        map.insert(name.clone(), Arc::new(store));
        dirs.insert(name.clone(), dir.clone());
    }
    let stores = Arc::new(Mutex::new(map));
    let st = Arc::clone(&stores);
    let release_dirs = dirs.clone();
    let service = serve_with(addr, "replica", opts.serve, move |req| {
        let lookup = |service: &str| st.lock().get(service).cloned();
        match req {
            Request::ReplAppend { service, frames } => match lookup(&service) {
                Some(store) => repl_response(store.offer(&frames)),
                None => Response::Error(format!("unknown replicated service {service:?}")),
            },
            Request::ReplSnapshot { service, blob } => match lookup(&service) {
                Some(store) => repl_response(store.install(&blob)),
                None => Response::Error(format!("unknown replicated service {service:?}")),
            },
            Request::ReplStatus { service } => match lookup(&service) {
                Some(store) => Response::Repl(ReplReply::Ok(store.position())),
                None => Response::Error(format!("unknown replicated service {service:?}")),
            },
            // The sentinel's promotion hand-off: detach the follower so a
            // fenced ex-primary cannot keep feeding it, and hand back the
            // journal directory for prepare_promotion + reopening.
            Request::ReplRelease { service } => {
                match (st.lock().remove(&service), release_dirs.get(&service)) {
                    (Some(_), Some(dir)) => Response::Released {
                        dir: dir.display().to_string(),
                    },
                    _ => Response::Error(format!("unknown replicated service {service:?}")),
                }
            }
            other => Response::Error(format!(
                "replica daemon does not serve {}",
                other.endpoint()
            )),
        }
    })?;
    Ok(ReplicaHandle {
        addr: service.addr,
        stores,
        dirs,
        service: Some(service),
    })
}

/// Render a follower-store result as a wire response.
fn repl_response(res: Result<ReplReply, StoreError>) -> Response {
    match res {
        Ok(reply) => Response::Repl(reply),
        Err(e) => Response::Error(format!("replica store: {e}")),
    }
}

/// A [`ReplicaLink`] that ships frames to a remote follower daemon over
/// the Faucets RPC stack.
pub struct RemoteLink {
    addr: SocketAddr,
    service: String,
    call: CallOptions,
}

impl RemoteLink {
    /// Link to the follower at `addr` for the named replicated service.
    pub fn new(addr: SocketAddr, service: impl Into<String>, call: CallOptions) -> RemoteLink {
        RemoteLink {
            addr,
            service: service.into(),
            call,
        }
    }

    /// One request/response round-trip, mapped into store-level errors:
    /// transport failures become [`StoreError::Io`] (retryable — the
    /// shipper re-plans), peer-reported errors become
    /// [`StoreError::Corrupt`].
    fn roundtrip(&self, req: &Request) -> Result<ReplReply, StoreError> {
        match call_with(self.addr, req, &self.call) {
            Ok(Response::Repl(reply)) => Ok(reply),
            Ok(Response::Error(e)) => Err(StoreError::Corrupt(format!("replica refused: {e}"))),
            Ok(other) => Err(StoreError::Corrupt(format!(
                "unexpected replica reply: {other:?}"
            ))),
            Err(e) => Err(StoreError::Io(e)),
        }
    }
}

impl ReplicaLink for RemoteLink {
    fn offer(&self, frames: &[ReplFrame]) -> Result<ReplReply, StoreError> {
        if frames.is_empty() {
            return self.status();
        }
        let mut last = None;
        for chunk in batch(frames) {
            let reply = self.roundtrip(&Request::ReplAppend {
                service: self.service.clone(),
                frames: chunk.to_vec(),
            })?;
            match reply {
                ReplReply::Ok(pos) => last = Some(ReplReply::Ok(pos)),
                // Fencing and snapshot demands end the batch run: the
                // shipper re-plans from the reply.
                other => return Ok(other),
            }
        }
        Ok(last.expect("at least one batch was shipped"))
    }

    fn install(&self, blob: &SnapshotBlob) -> Result<ReplReply, StoreError> {
        self.roundtrip(&Request::ReplSnapshot {
            service: self.service.clone(),
            blob: blob.clone(),
        })
    }

    fn status(&self) -> Result<ReplReply, StoreError> {
        self.roundtrip(&Request::ReplStatus {
            service: self.service.clone(),
        })
    }
}

/// Split `frames` into batches bounded by payload bytes and frame count.
/// A single frame is never split, whatever its size.
fn batch(frames: &[ReplFrame]) -> Vec<&[ReplFrame]> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut bytes = 0usize;
    for (i, f) in frames.iter().enumerate() {
        let grown = bytes + f.payload.len();
        if i > start && (grown > MAX_BATCH_PAYLOAD || i - start >= MAX_BATCH_FRAMES) {
            out.push(&frames[start..i]);
            start = i;
            bytes = 0;
        }
        bytes += f.payload.len();
    }
    out.push(&frames[start..]);
    out
}

/// How a service's journal is replicated; plugged into
/// [`crate::fd::FdOptions::replication`] and
/// [`crate::fs::FsOptions::replication`].
#[derive(Clone)]
pub struct ReplicationConfig {
    /// Follower daemon addresses ([`spawn_replica`]) that must host this
    /// service's name.
    pub followers: Vec<SocketAddr>,
    /// Sync (ack-before-confirm) or async (ship-behind) shipping.
    pub mode: ReplicationMode,
    /// Epoch to claim as primary. `0` means "resume": read the journal
    /// directory's persisted epoch, defaulting to 1 on a fresh directory.
    /// A promotion must pass the epoch from
    /// [`faucets_store::prepare_promotion`] — strictly above the old
    /// primary's — or the old reign is not fenced.
    pub epoch: u64,
    /// Sync mode: acks required per commit; `0` means every follower.
    pub sync_acks: usize,
    /// RPC options for replication traffic (retry, deadline, breakers,
    /// pooling all apply).
    pub call: CallOptions,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        ReplicationConfig {
            followers: Vec::new(),
            mode: ReplicationMode::Sync,
            epoch: 0,
            sync_acks: 0,
            call: CallOptions {
                // Replication is latency-sensitive and has its own
                // re-planning loop; keep the per-call budget tight.
                connect: Duration::from_secs(2),
                ..CallOptions::default()
            },
        }
    }
}

impl ReplicationConfig {
    /// Materialise the [`ReplOptions`] for one service's store.
    fn repl_options(
        &self,
        service: &str,
        dir: &std::path::Path,
        store: StoreOptions,
    ) -> ReplOptions {
        let epoch = if self.epoch == 0 {
            faucets_store::read_epoch(dir).max(1)
        } else {
            self.epoch
        };
        ReplOptions {
            store,
            mode: self.mode,
            links: self
                .followers
                .iter()
                .map(|addr| {
                    Arc::new(RemoteLink::new(*addr, service, self.call.clone()))
                        as Arc<dyn ReplicaLink>
                })
                .collect(),
            epoch,
            sync_acks: self.sync_acks,
        }
    }
}

/// A service's journal handle: the single-node [`DurableStore`] of PR 3,
/// or a [`ReplicatedStore`] shipping every commit to followers. The FS
/// and FD hold this instead of a bare store so replication is a
/// configuration choice, not a code path fork.
pub enum Journal<T: Durable> {
    /// Single-node journal (no replication).
    Plain(Arc<DurableStore<T>>),
    /// Replicated journal (primary role).
    Replicated(Arc<ReplicatedStore<T>>),
}

impl<T: Durable> Clone for Journal<T> {
    fn clone(&self) -> Self {
        match self {
            Journal::Plain(s) => Journal::Plain(Arc::clone(s)),
            Journal::Replicated(s) => Journal::Replicated(Arc::clone(s)),
        }
    }
}

impl<T: Durable + Send + 'static> Journal<T> {
    /// Open (and recover) the journal in `dir`: replicated when `repl`
    /// carries a [`ReplicationConfig`], single-node otherwise.
    pub fn open(
        dir: impl Into<PathBuf>,
        initial: T,
        service: &str,
        store_opts: StoreOptions,
        repl: Option<&ReplicationConfig>,
    ) -> Result<(Journal<T>, RecoveryReport), StoreError> {
        let dir = dir.into();
        match repl {
            None => {
                let (store, report) = DurableStore::open(&dir, initial, store_opts)?;
                Ok((Journal::Plain(Arc::new(store)), report))
            }
            Some(cfg) => {
                let opts = cfg.repl_options(service, &dir, store_opts);
                let (store, report) = ReplicatedStore::open(&dir, initial, opts)?;
                Ok((Journal::Replicated(store), report))
            }
        }
    }

    /// Journal `rec` durably and apply it; on a replicated journal this
    /// also ships it per the configured mode (see
    /// [`ReplicatedStore::commit`] for the sync/async contract).
    pub fn commit(&self, rec: &T::Record) -> Result<u64, StoreError> {
        match self {
            Journal::Plain(s) => s.commit(rec),
            Journal::Replicated(s) => s.commit(rec),
        }
    }

    /// Read the recovered/applied state under the store lock.
    pub fn read<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        match self {
            Journal::Plain(s) => s.read(f),
            Journal::Replicated(s) => s.read(f),
        }
    }

    /// The replicated store behind this journal, if it has one — for
    /// lag/position introspection and flush barriers in tests and
    /// experiments.
    pub fn replicated(&self) -> Option<&Arc<ReplicatedStore<T>>> {
        match self {
            Journal::Plain(_) => None,
            Journal::Replicated(s) => Some(s),
        }
    }

    /// Stop background shipping (async mode); a no-op on plain journals.
    pub fn shutdown(&self) {
        if let Journal::Replicated(s) = self {
            s.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faucets_store::{pick_primary, prepare_promotion, read_epoch};
    use serde::{Deserialize, Serialize};

    /// Minimal journal state machine for wire-level tests.
    #[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
    struct Log(Vec<String>);

    impl Durable for Log {
        type Record = String;
        type Snapshot = Vec<String>;
        fn apply(&mut self, rec: &String) {
            self.0.push(rec.clone());
        }
        fn snapshot(&self) -> Vec<String> {
            self.0.clone()
        }
        fn restore(snap: Vec<String>) -> Self {
            Log(snap)
        }
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "faucets-replica-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn no_fsync_store() -> StoreOptions {
        StoreOptions {
            no_fsync: true,
            compact_every: 0,
            ..StoreOptions::default()
        }
    }

    fn open_replicated(
        dir: &PathBuf,
        follower: &ReplicaHandle,
        mode: ReplicationMode,
    ) -> Journal<Log> {
        let cfg = ReplicationConfig {
            followers: vec![follower.addr],
            mode,
            ..ReplicationConfig::default()
        };
        Journal::open(dir, Log::default(), "svc", no_fsync_store(), Some(&cfg))
            .unwrap()
            .0
    }

    #[test]
    fn sync_commits_reach_a_remote_follower_and_survive_promotion() {
        let pdir = scratch("wire-p");
        let fdir = scratch("wire-f");
        let follower = spawn_replica(
            "127.0.0.1:0",
            &[("svc".into(), fdir.clone())],
            ReplicaOptions {
                no_fsync: true,
                ..ReplicaOptions::default()
            },
        )
        .unwrap();

        let journal = open_replicated(&pdir, &follower, ReplicationMode::Sync);
        for i in 0..20 {
            journal.commit(&format!("entry-{i}")).unwrap();
        }
        let pos = follower.position("svc").unwrap();
        assert_eq!(pos.acked, 20, "sync acks imply follower durability");
        journal.shutdown();

        // Promote: release the directory from the follower and open it as
        // a plain journal — every synced entry must be there.
        let dir = follower.release("svc").unwrap();
        let new_epoch = pos.epoch + 1;
        prepare_promotion(&dir, "svc", new_epoch).unwrap();
        assert_eq!(read_epoch(&dir), new_epoch);
        let (promoted, report) =
            Journal::<Log>::open(&dir, Log::default(), "svc", no_fsync_store(), None).unwrap();
        assert_eq!(report.replayed_records, 20);
        assert_eq!(promoted.read(|l| l.0.len()), 20);
        follower.shutdown();
    }

    #[test]
    fn async_journal_drains_through_the_wire_on_flush() {
        let pdir = scratch("async-p");
        let fdir = scratch("async-f");
        let follower = spawn_replica(
            "127.0.0.1:0",
            &[("svc".into(), fdir)],
            ReplicaOptions {
                no_fsync: true,
                ..ReplicaOptions::default()
            },
        )
        .unwrap();
        let journal = open_replicated(&pdir, &follower, ReplicationMode::Async);
        for i in 0..50 {
            journal.commit(&format!("entry-{i}")).unwrap();
        }
        let repl = journal.replicated().unwrap();
        assert!(
            repl.flush(Duration::from_secs(10)),
            "async backlog should drain"
        );
        assert_eq!(follower.position("svc").unwrap().acked, 50);
        journal.shutdown();
        follower.shutdown();
    }

    #[test]
    fn sync_commit_nacks_when_the_follower_daemon_is_down() {
        let pdir = scratch("down-p");
        let fdir = scratch("down-f");
        let follower = spawn_replica(
            "127.0.0.1:0",
            &[("svc".into(), fdir)],
            ReplicaOptions {
                no_fsync: true,
                ..ReplicaOptions::default()
            },
        )
        .unwrap();
        let journal = open_replicated(&pdir, &follower, ReplicationMode::Sync);
        journal.commit(&"acked".to_string()).unwrap();
        follower.kill();
        let err = journal.commit(&"orphan".to_string()).unwrap_err();
        assert!(
            matches!(err, StoreError::Unreplicated { .. }),
            "expected Unreplicated, got {err}"
        );
        // Locally durable either way: the at-least-once window, exactly
        // like a torn award.
        assert_eq!(journal.read(|l| l.0.len()), 2);
        journal.shutdown();
    }

    #[test]
    fn election_prefers_the_most_caught_up_follower() {
        let positions = [
            ReplPosition {
                epoch: 1,
                generation: 2,
                acked: 5,
            },
            ReplPosition {
                epoch: 1,
                generation: 3,
                acked: 1,
            },
            ReplPosition {
                epoch: 1,
                generation: 2,
                acked: 9,
            },
        ];
        // Higher generation beats higher in-generation offset.
        assert_eq!(pick_primary(&positions), Some(1));
    }

    #[test]
    fn unknown_service_and_foreign_requests_are_refused() {
        let fdir = scratch("refuse-f");
        let follower = spawn_replica(
            "127.0.0.1:0",
            &[("svc".into(), fdir)],
            ReplicaOptions {
                no_fsync: true,
                ..ReplicaOptions::default()
            },
        )
        .unwrap();
        let link = RemoteLink::new(follower.addr, "nope", CallOptions::default());
        assert!(matches!(link.status(), Err(StoreError::Corrupt(_))));
        match call_with(follower.addr, &Request::Metrics, &CallOptions::default()) {
            // The serve layer answers Metrics itself; anything else the
            // replica refuses. Either way it must not panic or hang.
            Ok(Response::Metrics(_)) | Ok(Response::Error(_)) => {}
            other => panic!("unexpected: {other:?}"),
        }
        follower.shutdown();
    }

    #[test]
    fn batching_never_splits_a_frame_and_covers_all() {
        let frames: Vec<ReplFrame> = (0..2500u64)
            .map(|i| ReplFrame {
                epoch: 1,
                generation: 1,
                seq: i,
                payload: vec![0u8; 1024],
            })
            .collect();
        let chunks = batch(&frames);
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(total, frames.len());
        assert!(chunks.len() >= 3, "count bound should split 2500 frames");
        for c in &chunks {
            assert!(!c.is_empty());
            assert!(c.len() <= MAX_BATCH_FRAMES);
        }
        // One oversized frame still ships alone rather than being split.
        let big = [ReplFrame {
            epoch: 1,
            generation: 1,
            seq: 0,
            payload: vec![0u8; MAX_BATCH_PAYLOAD + 1],
        }];
        assert_eq!(batch(&big).len(), 1);
    }
}
