//! The Faucets client library (the command-line/GUI client of §2, minus
//! pixels).
//!
//! Implements the full §2 submission walkthrough: authenticate to the FS,
//! fetch the matching Compute Servers, solicit bids from each FD, evaluate
//! them under a [`SelectionPolicy`], award the winner (falling back to the
//! runner-up if the daemon reneges — the two-phase protocol of §5.3),
//! stage input files, then monitor the job and download outputs through
//! AppSpector.
//!
//! ## Recovery
//!
//! Every wire interaction goes through [`call_with`] under the client's
//! [`RetryPolicy`], so transient drops and stalls are absorbed by bounded
//! backoff. A daemon that dies *mid-negotiation* (transport failure on
//! award or staging) costs only its bid: the client falls through the
//! ranked bid list, and when a whole round is exhausted it re-solicits
//! bids from scratch — the FS will have graded the dead daemon suspect by
//! then — up to [`FaucetsClient::max_rounds`] rounds. A bid naming a
//! server missing from the directory listing is skipped with a recorded
//! [`ClientError::UnlistedBidder`] rather than a panic.
//!
//! ## Overload
//!
//! A peer answering [`Response::Overloaded`] is healthy but saturated:
//! the client counts it as "no bid this round" (never as evidence the
//! daemon is dead), keeps its per-peer circuit breakers
//! ([`FaucetsClient::breakers`]) closed, and rides it out exactly like a
//! transient drop everywhere else.

use crate::fault::FaultPlan;
use crate::overload::BreakerSet;
use crate::pool::{ConnPool, PoolConfig};
use crate::proto::{Request, Response};
use crate::service::{call_many, call_with, CallOptions, Clock, RetryPolicy, Timeouts};
use faucets_core::appspector::MonitorSnapshot;
use faucets_core::auth::SessionToken;
use faucets_core::bid::{Bid, BidRequest};
use faucets_core::ids::{ClusterId, ContractId, JobId, UserId};
use faucets_core::job::JobSpec;
use faucets_core::market::SelectionPolicy;
use faucets_core::money::Money;
use faucets_core::qos::QosContract;
use faucets_sim::time::SimTime;
use faucets_telemetry::trace::{self, TraceId};
use faucets_telemetry::Counter;
use std::collections::HashSet;
use std::fmt;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything that can go wrong on the client side of the §2 walkthrough.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// The network failed (connect, send, receive) after all retries.
    Transport(String),
    /// The peer answered, but not with the expected response kind.
    Protocol(String),
    /// The FS rejected the operation (bad credentials, expired token, …).
    Rejected(String),
    /// No Compute Server matched the job's QoS.
    NoMatchingServers,
    /// Every matching server declined to bid.
    AllDeclined {
        /// How many servers were solicited.
        solicited: usize,
    },
    /// A bid arrived from a server absent from the directory listing
    /// (typically evicted between matching and bidding). The bid is
    /// skipped, never awarded.
    UnlistedBidder(ClusterId),
    /// Every negotiation round ended with all awards reneged or dead.
    NegotiationExhausted {
        /// Rounds attempted (each round = match + bid + award sweep).
        rounds: u32,
    },
    /// A watched job did not complete within the caller's deadline.
    TimedOut(JobId),
    /// The peer (or a tripped local circuit breaker) refused the call
    /// because it is saturated. Busy, not dead: treated as transient.
    Overloaded,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "transport failure: {e}"),
            ClientError::Protocol(e) => write!(f, "unexpected reply: {e}"),
            ClientError::Rejected(e) => write!(f, "rejected: {e}"),
            ClientError::NoMatchingServers => write!(f, "no matching Compute Servers"),
            ClientError::AllDeclined { solicited } => {
                write!(f, "all {solicited} Compute Servers declined")
            }
            ClientError::UnlistedBidder(c) => write!(f, "bid from unlisted server {c}"),
            ClientError::NegotiationExhausted { rounds } => {
                write!(
                    f,
                    "every award reneged or died across {rounds} negotiation rounds"
                )
            }
            ClientError::TimedOut(j) => write!(f, "timed out waiting for {j}"),
            ClientError::Overloaded => write!(f, "peer overloaded; retry later"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        if crate::proto::is_overload_error(&e) {
            ClientError::Overloaded
        } else {
            ClientError::Transport(e.to_string())
        }
    }
}

/// A successfully placed job.
#[derive(Debug, Clone, PartialEq)]
pub struct Submission {
    /// The job id (client-assigned, grid-unique per client).
    pub job: JobId,
    /// The winning Compute Server.
    pub cluster: ClusterId,
    /// The contracted price.
    pub price: Money,
    /// The completion the cluster promised.
    pub promised_completion: SimTime,
    /// How many servers bid (in the final, successful round).
    pub bids_received: usize,
    /// Negotiation rounds needed (1 = no daemon died on us).
    pub rounds: u32,
    /// Bids skipped because their server had left the directory.
    pub unlisted_skipped: usize,
}

/// Poll pacing for [`FaucetsClient::wait`]: exponential backoff from
/// [`WaitBackoff::initial`] doubling to a hard [`WaitBackoff::cap`].
///
/// The old fixed 10 ms poll was fine for one interactive client, but
/// thousands of concurrently-waiting virtual users (the load harness)
/// would hammer AppSpector into its own overload gate with pure polling
/// traffic. Backoff keeps the first poll fast (short jobs still complete
/// in one or two polls) while long waits settle at `cap` per probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaitBackoff {
    /// First inter-poll delay.
    pub initial: Duration,
    /// Largest inter-poll delay; the schedule clamps here forever after.
    pub cap: Duration,
}

impl Default for WaitBackoff {
    /// 5 ms → 10 → 20 → … → 250 ms cap.
    fn default() -> Self {
        WaitBackoff {
            initial: Duration::from_millis(5),
            cap: Duration::from_millis(250),
        }
    }
}

impl WaitBackoff {
    /// The delay following `prev` (doubling, clamped to the cap). A zero
    /// `initial` degenerates to constant-`cap` polling rather than a
    /// zero-sleep busy loop.
    pub fn next(&self, prev: Duration) -> Duration {
        let floor = self.initial.max(Duration::from_millis(1));
        let cap = self.cap.max(floor);
        prev.checked_mul(2).unwrap_or(cap).clamp(floor, cap)
    }
}

/// A connected, authenticated Faucets client.
pub struct FaucetsClient {
    fs: SocketAddr,
    appspector: SocketAddr,
    clock: Clock,
    /// Alternative FS endpoints (federated shards). On a transport failure
    /// talking to the FS the client rotates to the next one — sticky: the
    /// endpoint that answered stays primary until it fails in turn.
    pub fs_fallbacks: Vec<SocketAddr>,
    /// Alternative AppSpector endpoints. Same sticky rotation as
    /// [`FaucetsClient::fs_fallbacks`]: a monitoring call that fails at
    /// the transport layer rotates to the next endpoint, so a watch/wait
    /// loop survives an AppSpector restart or shard failover without the
    /// caller noticing anything but latency.
    pub appspector_fallbacks: Vec<SocketAddr>,
    /// Stored at login so the client can re-authenticate by itself when
    /// its session dies with the shard that minted it.
    credentials: Option<(String, String)>,
    /// The session token (§2.2: embedded in every FD interaction).
    pub token: SessionToken,
    /// The authenticated user.
    pub user: UserId,
    /// How bids are evaluated.
    pub selection: SelectionPolicy,
    /// Transport retry policy applied to every call.
    pub retry: RetryPolicy,
    /// Socket deadlines applied to every call.
    pub timeouts: Timeouts,
    /// Maximum negotiation rounds before giving up on a submission.
    pub max_rounds: u32,
    /// Optional fault injection on this client's own traffic.
    pub faults: Option<Arc<FaultPlan>>,
    /// Per-peer circuit breakers applied to every call (default on). An
    /// [`Response::Overloaded`] answer counts as a breaker *success*, so
    /// a healthy-but-busy cluster is never fast-failed.
    pub breakers: Arc<BreakerSet>,
    /// Persistent connection pool applied to every call (default on): the
    /// FS, each FD, and AppSpector are all talked to over warm,
    /// health-checked sockets instead of a fresh connect per request.
    pub pool: Arc<ConnPool>,
    /// Optional multiplexed connections (default off): when set, calls
    /// share warm sockets with many requests in flight at once, matched
    /// back by `request_id` — the bid fan-out pipelines on a handful of
    /// sockets instead of checking one out per concurrent worker. Takes
    /// precedence over [`FaucetsClient::pool`].
    pub mux: Option<Arc<crate::pool::MuxPool>>,
    /// Concurrent connections used by the bid-solicitation fan-out
    /// ([`crate::service::call_many`]).
    pub fan_out: usize,
    /// Optional wall-clock budget per call: stamped on the wire as
    /// `deadline_ms` (so servers can shed doomed work) and capping the
    /// retry loop's total backoff.
    pub call_deadline: Option<Duration>,
    /// Poll pacing for [`FaucetsClient::wait`] (exponential, capped).
    pub wait_backoff: WaitBackoff,
    /// The trace id of the most recent [`FaucetsClient::submit`] call, for
    /// reconstructing that job's end-to-end path from the span log.
    pub last_trace: Option<TraceId>,
    next_job: u64,
    m_rounds: Counter,
    m_bids: Counter,
    m_awards: Counter,
    m_resolicits: Counter,
    m_overloaded: Counter,
    m_failovers: Counter,
    m_as_failovers: Counter,
}

impl FaucetsClient {
    /// Create an account and log in.
    pub fn register(
        fs: SocketAddr,
        appspector: SocketAddr,
        clock: Clock,
        name: &str,
        password: &str,
    ) -> Result<Self, ClientError> {
        let opts = CallOptions::default();
        match call_with(
            fs,
            &Request::CreateUser {
                user: name.into(),
                password: password.into(),
            },
            &opts,
        ) {
            Ok(Response::Verified { .. }) => {}
            Ok(Response::Error(e)) => return Err(ClientError::Rejected(e)),
            Ok(other) => {
                return Err(ClientError::Protocol(format!(
                    "account creation: {other:?}"
                )))
            }
            Err(e) => return Err(e.into()),
        }
        Self::login(fs, appspector, clock, name, password)
    }

    /// Log in to an existing account.
    pub fn login(
        fs: SocketAddr,
        appspector: SocketAddr,
        clock: Clock,
        name: &str,
        password: &str,
    ) -> Result<Self, ClientError> {
        let opts = CallOptions::default();
        match call_with(
            fs,
            &Request::Login {
                user: name.into(),
                password: password.into(),
            },
            &opts,
        ) {
            Ok(Response::Session { user, token }) => {
                let reg = faucets_telemetry::global();
                Ok(FaucetsClient {
                    fs,
                    appspector,
                    clock,
                    fs_fallbacks: vec![],
                    appspector_fallbacks: vec![],
                    credentials: Some((name.into(), password.into())),
                    token,
                    user,
                    selection: SelectionPolicy::LeastCost,
                    retry: RetryPolicy::standard(user.raw()),
                    timeouts: Timeouts::default(),
                    max_rounds: 3,
                    faults: None,
                    breakers: Arc::new(BreakerSet::default()),
                    pool: Arc::new(ConnPool::new("client", PoolConfig::default())),
                    mux: None,
                    fan_out: 8,
                    call_deadline: None,
                    wait_backoff: WaitBackoff::default(),
                    last_trace: None,
                    next_job: (user.raw() << 32) + 1,
                    m_rounds: reg.counter("client_negotiation_rounds_total", &[]),
                    m_bids: reg.counter("client_bids_received_total", &[]),
                    m_awards: reg.counter("client_awards_confirmed_total", &[]),
                    m_resolicits: reg.counter("client_resolicitations_total", &[]),
                    m_overloaded: reg.counter("client_bids_overloaded_total", &[]),
                    m_failovers: reg.counter("client_fs_failovers_total", &[]),
                    m_as_failovers: reg.counter("client_as_failovers_total", &[]),
                })
            }
            Ok(Response::Error(e)) => Err(ClientError::Rejected(e)),
            Ok(other) => Err(ClientError::Protocol(format!("login: {other:?}"))),
            Err(e) => Err(e.into()),
        }
    }

    fn opts(&self) -> CallOptions {
        CallOptions {
            timeouts: self.timeouts,
            retry: self.retry,
            faults: self.faults.clone(),
            deadline: self.call_deadline,
            breakers: Some(Arc::clone(&self.breakers)),
            pool: Some(Arc::clone(&self.pool)),
            mux: self.mux.clone(),
            ..CallOptions::default()
        }
    }

    fn call(&self, addr: SocketAddr, req: &Request) -> Result<Response, ClientError> {
        call_with(addr, req, &self.opts()).map_err(ClientError::from)
    }

    /// Call the FS, rotating through [`FaucetsClient::fs_fallbacks`] on
    /// transport failure. Rotation is sticky: the endpoint that answers
    /// becomes (or stays) the primary, so a healthy shard is not re-probed
    /// through a dead one on every call.
    fn fs_call(&mut self, req: &Request) -> Result<Response, ClientError> {
        let endpoints = 1 + self.fs_fallbacks.len();
        let mut last: Option<ClientError> = None;
        for _ in 0..endpoints {
            match self.call(self.fs, req) {
                Err(ClientError::Transport(e)) if !self.fs_fallbacks.is_empty() => {
                    let next = self.fs_fallbacks.remove(0);
                    self.fs_fallbacks.push(self.fs);
                    self.fs = next;
                    self.m_failovers.inc();
                    last = Some(ClientError::Transport(e));
                }
                other => return other,
            }
        }
        Err(last.unwrap_or_else(|| ClientError::Transport("no FS endpoint".into())))
    }

    /// Call AppSpector, rotating through
    /// [`FaucetsClient::appspector_fallbacks`] on transport failure —
    /// the same sticky rotation as [`FaucetsClient::fs_call`].
    fn as_call(&mut self, req: &Request) -> Result<Response, ClientError> {
        let endpoints = 1 + self.appspector_fallbacks.len();
        let mut last: Option<ClientError> = None;
        for _ in 0..endpoints {
            match self.call(self.appspector, req) {
                Err(ClientError::Transport(e)) if !self.appspector_fallbacks.is_empty() => {
                    let next = self.appspector_fallbacks.remove(0);
                    self.appspector_fallbacks.push(self.appspector);
                    self.appspector = next;
                    self.m_as_failovers.inc();
                    last = Some(ClientError::Transport(e));
                }
                other => return other,
            }
        }
        Err(last.unwrap_or_else(|| ClientError::Transport("no AppSpector endpoint".into())))
    }

    /// Re-authenticate after the session died (typically with the shard
    /// that minted it). Logs in at the current FS; if the account itself
    /// lived on the dead shard, re-creates it there first.
    fn relogin(&mut self) -> Result<(), ClientError> {
        let Some((name, password)) = self.credentials.clone() else {
            return Err(ClientError::Rejected("no stored credentials".into()));
        };
        let login_req = Request::Login {
            user: name.clone(),
            password: password.clone(),
        };
        let resp = match self.fs_call(&login_req)? {
            Response::Error(_) => {
                // Accounts are shard-local: ours is gone with its shard.
                // Re-create it at the surviving FS and log in again.
                match self.fs_call(&Request::CreateUser {
                    user: name,
                    password,
                })? {
                    Response::Verified { .. } | Response::Error(_) => self.fs_call(&login_req)?,
                    other => {
                        return Err(ClientError::Protocol(format!(
                            "account recovery: {other:?}"
                        )))
                    }
                }
            }
            resp => resp,
        };
        match resp {
            Response::Session { user, token } => {
                self.user = user;
                self.token = token;
                Ok(())
            }
            Response::Error(e) => Err(ClientError::Rejected(e)),
            other => Err(ClientError::Protocol(format!("re-login: {other:?}"))),
        }
    }

    /// Submit a job: match → bid → select → award (with runner-up fallback)
    /// → stage inputs; re-solicits bids when a chosen daemon dies
    /// mid-negotiation, up to [`FaucetsClient::max_rounds`] rounds.
    pub fn submit(
        &mut self,
        qos: QosContract,
        inputs: &[(String, Vec<u8>)],
    ) -> Result<Submission, ClientError> {
        let job = JobId(self.next_job);
        self.next_job += 1;
        // Root span for the whole submission: every FS/FD/AS call below
        // inherits this trace, so the job's path across the grid can be
        // reconstructed from the span log afterwards.
        let span = trace::span("client", "submit");
        self.last_trace = Some(span.trace());
        let mut last: Option<ClientError> = None;
        for round in 1..=self.max_rounds.max(1) {
            self.m_rounds.inc();
            if round > 1 {
                // PR 1's re-solicitation path: the previous round's winner
                // reneged or died, so we go back to matching.
                self.m_resolicits.inc();
            }
            match self.negotiate_once(job, &qos, inputs) {
                Ok(mut sub) => {
                    sub.rounds = round;
                    return Ok(sub);
                }
                // Hard failures that another round cannot fix.
                Err(e @ (ClientError::Rejected(_) | ClientError::Protocol(_))) => return Err(e),
                Err(e) => last = Some(e),
            }
        }
        // Distinguish "nobody ever bid" from "winners kept dying".
        match last {
            Some(e @ (ClientError::NoMatchingServers | ClientError::AllDeclined { .. })) => Err(e),
            _ => Err(ClientError::NegotiationExhausted {
                rounds: self.max_rounds.max(1),
            }),
        }
    }

    /// One negotiation round: match, solicit, rank, award down the list.
    fn negotiate_once(
        &mut self,
        job: JobId,
        qos: &QosContract,
        inputs: &[(String, Vec<u8>)],
    ) -> Result<Submission, ClientError> {
        let now = self.clock.now();

        // 1. Matching servers from the FS. A rejection here may mean the
        // session died with the shard that minted it (the failover path
        // just rotated us to a survivor): re-authenticate once and retry
        // before giving up.
        let list_req = Request::ListServers {
            token: self.token.clone(),
            qos: qos.clone(),
        };
        let mut servers = match self.fs_call(&list_req)? {
            Response::Servers(s) => s,
            Response::Error(e) => {
                self.relogin()
                    .map_err(|_| ClientError::Rejected(e.clone()))?;
                match self.fs_call(&Request::ListServers {
                    token: self.token.clone(),
                    qos: qos.clone(),
                })? {
                    Response::Servers(s) => s,
                    Response::Error(e) => return Err(ClientError::Rejected(e)),
                    other => return Err(ClientError::Protocol(format!("matching: {other:?}"))),
                }
            }
            other => return Err(ClientError::Protocol(format!("matching: {other:?}"))),
        };
        // During a federated ring transition the same server can be listed
        // by two shards; it must only be solicited (and awarded) once.
        let mut seen = HashSet::new();
        servers.retain(|s| seen.insert(s.info.cluster));
        if servers.is_empty() {
            return Err(ClientError::NoMatchingServers);
        }

        // 2. Request-for-bids to every matching FD — one concurrent sweep
        // over warm pooled connections ([`call_many`]), so a round's
        // solicitation latency is the slowest daemon, not the sum of all
        // of them. A daemon that fails to answer simply contributes no
        // bid.
        let req = BidRequest {
            job,
            user: self.user,
            qos: qos.clone(),
            issued_at: now,
        };
        let addrs: Vec<SocketAddr> = servers
            .iter()
            .filter_map(|s| {
                format!("{}:{}", s.info.fd_addr, s.info.fd_port)
                    .parse()
                    .ok()
            })
            .collect();
        let bid_req = Request::RequestBid {
            token: self.token.clone(),
            request: req.clone(),
        };
        let mut bids: Vec<Bid> = vec![];
        for reply in call_many(&addrs, &bid_req, &self.opts(), self.fan_out.max(1)) {
            match reply {
                Ok(Response::BidReply(reply)) => {
                    if let Some(b) = reply.offer() {
                        bids.push(*b);
                    }
                }
                // A saturated daemon is healthy but shedding: no bid this
                // round. Counting it would be wrong twice over — it is not
                // a decline (the daemon never priced the job) and not a
                // death (the breaker must stay closed for busy clusters).
                Ok(Response::Overloaded { .. }) => {
                    self.m_overloaded.inc();
                }
                Err(e) if crate::proto::is_overload_error(&e) => {
                    self.m_overloaded.inc();
                }
                _ => {}
            }
        }
        self.m_bids.add(bids.len() as u64);
        if bids.is_empty() {
            return Err(ClientError::AllDeclined {
                solicited: servers.len(),
            });
        }

        // 3. Evaluate and award, falling back on renege or daemon death.
        let ranked: Vec<Bid> = self
            .selection
            .rank(&bids, &qos.payoff)
            .into_iter()
            .copied()
            .collect();
        let spec = JobSpec::new(job, self.user, qos.clone(), now)
            .map_err(|e| ClientError::Rejected(format!("invalid QoS: {e}")))?;
        let mut unlisted = 0usize;
        for bid in ranked {
            // The §5.3 window between matching and award is real: the
            // bidder may have been evicted meanwhile. Skip, don't panic.
            let Some(server) = servers.iter().find(|s| s.info.cluster == bid.cluster) else {
                unlisted += 1;
                continue;
            };
            let Ok(addr) =
                format!("{}:{}", server.info.fd_addr, server.info.fd_port).parse::<SocketAddr>()
            else {
                unlisted += 1;
                continue;
            };
            let contract = ContractId(job.raw());
            match self.call(
                addr,
                &Request::Award {
                    token: self.token.clone(),
                    spec: spec.clone(),
                    contract,
                    bid,
                },
            ) {
                Ok(Response::AwardReply {
                    confirmed: true, ..
                }) => {
                    self.m_awards.inc();
                    // 4. Stage input files. A daemon dying here is a
                    // mid-negotiation death: fall through to the next bid.
                    match self.stage_inputs(addr, job, inputs) {
                        Ok(()) => {}
                        Err(ClientError::Transport(_) | ClientError::Overloaded) => continue,
                        Err(e) => return Err(e),
                    }
                    return Ok(Submission {
                        job,
                        cluster: bid.cluster,
                        price: bid.price,
                        promised_completion: bid.promised_completion,
                        bids_received: bids.len(),
                        rounds: 0, // filled in by submit()
                        unlisted_skipped: unlisted,
                    });
                }
                Ok(Response::AwardReply {
                    confirmed: false, ..
                }) => continue, // renege
                // A daemon that errors the award (e.g. it cannot reach the
                // FS to re-verify us) costs only its bid.
                Ok(Response::Error(_)) => continue,
                Ok(other) => return Err(ClientError::Protocol(format!("award: {other:?}"))),
                Err(ClientError::Transport(_)) => continue, // daemon died; next bid
                Err(ClientError::Overloaded) => continue,   // daemon busy; next bid
                Err(e) => return Err(e),
            }
        }
        Err(ClientError::NegotiationExhausted { rounds: 1 })
    }

    fn stage_inputs(
        &self,
        addr: SocketAddr,
        job: JobId,
        inputs: &[(String, Vec<u8>)],
    ) -> Result<(), ClientError> {
        for (name, data) in inputs {
            match self.call(
                addr,
                &Request::UploadFile {
                    token: self.token.clone(),
                    job,
                    name: name.clone(),
                    data: data.clone(),
                },
            )? {
                Response::Ok => {}
                Response::Error(e) => {
                    return Err(ClientError::Rejected(format!("staging '{name}': {e}")))
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "staging '{name}': {other:?}"
                    )))
                }
            }
        }
        Ok(())
    }

    /// Fetch the current monitoring snapshot for a job.
    pub fn watch(&mut self, job: JobId) -> Result<MonitorSnapshot, ClientError> {
        match self.as_call(&Request::Watch {
            token: self.token.clone(),
            job,
        })? {
            Response::Snapshot(s) => Ok(s),
            Response::Error(e) => Err(ClientError::Rejected(e)),
            other => Err(ClientError::Protocol(format!("watch: {other:?}"))),
        }
    }

    /// Poll AppSpector until the job completes (or `timeout` wall time).
    /// Transient transport failures while polling are ridden out until the
    /// deadline — a daemon restart mid-wait looks like a long poll, not an
    /// error. Polls pace out under [`FaucetsClient::wait_backoff`]
    /// (exponential, capped), never sleeping past the deadline itself.
    pub fn wait(&mut self, job: JobId, timeout: Duration) -> Result<MonitorSnapshot, ClientError> {
        let deadline = Instant::now() + timeout;
        let mut pause = self.wait_backoff.next(Duration::ZERO);
        loop {
            match self.watch(job) {
                Ok(snap) if snap.completed => return Ok(snap),
                Ok(_) | Err(ClientError::Transport(_) | ClientError::Overloaded) => {}
                Err(e) => return Err(e),
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(ClientError::TimedOut(job));
            }
            std::thread::sleep(pause.min(deadline - now));
            pause = self.wait_backoff.next(pause);
        }
    }

    /// Fetch the AppSpector grid dashboard: every registered cluster's load
    /// plus per-service metrics snapshots.
    pub fn grid_view(&mut self) -> Result<faucets_core::appspector::GridView, ClientError> {
        match self.as_call(&Request::GridView {
            token: self.token.clone(),
        })? {
            Response::Grid(g) => Ok(*g),
            Response::Error(e) => Err(ClientError::Rejected(e)),
            other => Err(ClientError::Protocol(format!("grid view: {other:?}"))),
        }
    }

    /// Download one output file of a completed job.
    pub fn download(&mut self, job: JobId, name: &str) -> Result<Vec<u8>, ClientError> {
        match self.as_call(&Request::Download {
            token: self.token.clone(),
            job,
            name: name.into(),
        })? {
            Response::File { data, .. } => Ok(data),
            Response::Error(e) => Err(ClientError::Rejected(e)),
            other => Err(ClientError::Protocol(format!("download: {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::WaitBackoff;
    use std::time::Duration;

    #[test]
    fn wait_backoff_doubles_to_cap() {
        let b = WaitBackoff::default();
        let mut p = b.next(Duration::ZERO);
        assert_eq!(p, b.initial, "first pause is the configured floor");
        let mut schedule = vec![p];
        for _ in 0..8 {
            p = b.next(p);
            schedule.push(p);
        }
        assert!(
            schedule.windows(2).all(|w| w[1] >= w[0]),
            "monotone: {schedule:?}"
        );
        assert_eq!(*schedule.last().unwrap(), b.cap, "settles at the cap");
        assert_eq!(b.next(b.cap), b.cap, "cap is absorbing");
    }

    #[test]
    fn wait_backoff_degenerate_configs_stay_sane() {
        // Zero initial must not become a zero-sleep busy loop.
        let zero = WaitBackoff {
            initial: Duration::ZERO,
            cap: Duration::from_millis(50),
        };
        assert!(zero.next(Duration::ZERO) >= Duration::from_millis(1));
        // cap < initial clamps to a constant schedule, never panics.
        let inverted = WaitBackoff {
            initial: Duration::from_millis(100),
            cap: Duration::from_millis(10),
        };
        let p = inverted.next(Duration::ZERO);
        assert_eq!(p, Duration::from_millis(100));
        assert_eq!(inverted.next(p), Duration::from_millis(100));
    }
}
