//! The Faucets client library (the command-line/GUI client of §2, minus
//! pixels).
//!
//! Implements the full §2 submission walkthrough: authenticate to the FS,
//! fetch the matching Compute Servers, solicit bids from each FD, evaluate
//! them under a [`SelectionPolicy`], award the winner (falling back to the
//! runner-up if the daemon reneges — the two-phase protocol of §5.3),
//! stage input files, then monitor the job and download outputs through
//! AppSpector.

use crate::proto::{Request, Response};
use crate::service::{call, Clock};
use faucets_core::appspector::MonitorSnapshot;
use faucets_core::auth::SessionToken;
use faucets_core::bid::{Bid, BidRequest};
use faucets_core::ids::{ClusterId, ContractId, JobId, UserId};
use faucets_core::job::JobSpec;
use faucets_core::market::SelectionPolicy;
use faucets_core::money::Money;
use faucets_core::qos::QosContract;
use faucets_sim::time::SimTime;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// A successfully placed job.
#[derive(Debug, Clone, PartialEq)]
pub struct Submission {
    /// The job id (client-assigned, grid-unique per client).
    pub job: JobId,
    /// The winning Compute Server.
    pub cluster: ClusterId,
    /// The contracted price.
    pub price: Money,
    /// The completion the cluster promised.
    pub promised_completion: SimTime,
    /// How many servers bid.
    pub bids_received: usize,
}

/// A connected, authenticated Faucets client.
pub struct FaucetsClient {
    fs: SocketAddr,
    appspector: SocketAddr,
    clock: Clock,
    /// The session token (§2.2: embedded in every FD interaction).
    pub token: SessionToken,
    /// The authenticated user.
    pub user: UserId,
    /// How bids are evaluated.
    pub selection: SelectionPolicy,
    next_job: u64,
}

impl FaucetsClient {
    /// Create an account and log in.
    pub fn register(
        fs: SocketAddr,
        appspector: SocketAddr,
        clock: Clock,
        name: &str,
        password: &str,
    ) -> Result<Self, String> {
        match call(fs, &Request::CreateUser { user: name.into(), password: password.into() }) {
            Ok(Response::Verified { .. }) => {}
            Ok(other) => return Err(format!("account creation failed: {other:?}")),
            Err(e) => return Err(e.to_string()),
        }
        Self::login(fs, appspector, clock, name, password)
    }

    /// Log in to an existing account.
    pub fn login(
        fs: SocketAddr,
        appspector: SocketAddr,
        clock: Clock,
        name: &str,
        password: &str,
    ) -> Result<Self, String> {
        match call(fs, &Request::Login { user: name.into(), password: password.into() }) {
            Ok(Response::Session { user, token }) => Ok(FaucetsClient {
                fs,
                appspector,
                clock,
                token,
                user,
                selection: SelectionPolicy::LeastCost,
                next_job: (user.raw() << 32) + 1,
            }),
            Ok(other) => Err(format!("login failed: {other:?}")),
            Err(e) => Err(e.to_string()),
        }
    }

    /// Submit a job: match → bid → select → award (with runner-up fallback)
    /// → stage inputs.
    pub fn submit(
        &mut self,
        qos: QosContract,
        inputs: &[(String, Vec<u8>)],
    ) -> Result<Submission, String> {
        let job = JobId(self.next_job);
        self.next_job += 1;
        let now = self.clock.now();

        // 1. Matching servers from the FS.
        let servers = match call(self.fs, &Request::ListServers { token: self.token.clone(), qos: qos.clone() }) {
            Ok(Response::Servers(s)) => s,
            Ok(other) => return Err(format!("matching failed: {other:?}")),
            Err(e) => return Err(e.to_string()),
        };
        if servers.is_empty() {
            return Err("no matching Compute Servers".into());
        }

        // 2. Request-for-bids to every matching FD.
        let req = BidRequest { job, user: self.user, qos: qos.clone(), issued_at: now };
        let mut bids: Vec<Bid> = vec![];
        for s in &servers {
            let addr: SocketAddr = format!("{}:{}", s.fd_addr, s.fd_port)
                .parse()
                .map_err(|e| format!("bad FD address for {}: {e}", s.name))?;
            if let Ok(Response::BidReply(reply)) =
                call(addr, &Request::RequestBid { token: self.token.clone(), request: req.clone() })
            {
                if let Some(b) = reply.offer() {
                    bids.push(*b);
                }
            }
        }
        if bids.is_empty() {
            return Err("all Compute Servers declined".into());
        }

        // 3. Evaluate and award, falling back on renege.
        let ranked: Vec<Bid> = self.selection.rank(&bids, &qos.payoff).into_iter().copied().collect();
        let spec = JobSpec::new(job, self.user, qos, now).map_err(|e| format!("invalid QoS: {e}"))?;
        for bid in ranked {
            let server = servers.iter().find(|s| s.cluster == bid.cluster).expect("bid from listed server");
            let addr: SocketAddr = format!("{}:{}", server.fd_addr, server.fd_port).parse().unwrap();
            let contract = ContractId(job.raw());
            match call(
                addr,
                &Request::Award { token: self.token.clone(), spec: spec.clone(), contract, bid },
            ) {
                Ok(Response::AwardReply { confirmed: true, .. }) => {
                    // 4. Stage input files.
                    for (name, data) in inputs {
                        let r = call(
                            addr,
                            &Request::UploadFile {
                                token: self.token.clone(),
                                job,
                                name: name.clone(),
                                data: data.clone(),
                            },
                        );
                        if !matches!(r, Ok(Response::Ok)) {
                            return Err(format!("staging '{name}' failed: {r:?}"));
                        }
                    }
                    return Ok(Submission {
                        job,
                        cluster: bid.cluster,
                        price: bid.price,
                        promised_completion: bid.promised_completion,
                        bids_received: bids.len(),
                    });
                }
                Ok(Response::AwardReply { confirmed: false, .. }) => continue, // runner-up
                Ok(other) => return Err(format!("award failed: {other:?}")),
                Err(e) => return Err(e.to_string()),
            }
        }
        Err("every awarded server reneged".into())
    }

    /// Fetch the current monitoring snapshot for a job.
    pub fn watch(&self, job: JobId) -> Result<MonitorSnapshot, String> {
        match call(self.appspector, &Request::Watch { token: self.token.clone(), job }) {
            Ok(Response::Snapshot(s)) => Ok(s),
            Ok(other) => Err(format!("watch failed: {other:?}")),
            Err(e) => Err(e.to_string()),
        }
    }

    /// Poll AppSpector until the job completes (or `timeout` wall time).
    pub fn wait(&self, job: JobId, timeout: Duration) -> Result<MonitorSnapshot, String> {
        let deadline = Instant::now() + timeout;
        loop {
            let snap = self.watch(job)?;
            if snap.completed {
                return Ok(snap);
            }
            if Instant::now() >= deadline {
                return Err(format!("timed out waiting for {job}"));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Download one output file of a completed job.
    pub fn download(&self, job: JobId, name: &str) -> Result<Vec<u8>, String> {
        match call(
            self.appspector,
            &Request::Download { token: self.token.clone(), job, name: name.into() },
        ) {
            Ok(Response::File { data, .. }) => Ok(data),
            Ok(other) => Err(format!("download failed: {other:?}")),
            Err(e) => Err(e.to_string()),
        }
    }
}
