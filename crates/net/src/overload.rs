//! Overload protection for the Figure-1 services.
//!
//! The paper claims the architecture scales to "hundreds of Compute
//! Servers" and "millions of jobs per day" (§5), which means every service
//! must keep answering *something* when offered load exceeds capacity —
//! degrade by shedding the least valuable work, never by letting queues
//! (and latency) grow without bound. This module holds the four primitives
//! the rest of the crate threads together:
//!
//! * [`ServiceLimits`] — a bounded per-endpoint inflight gate applied by
//!   [`crate::service::serve_with`]: a request over the bound is answered
//!   [`crate::proto::Response::Overloaded`] immediately instead of being
//!   accepted into an unbounded backlog.
//! * [`TokenBucket`] — a rate limiter (the FS uses one to throttle
//!   directory queries): admits at most `rate · elapsed + burst` requests
//!   over any window, runtime-retunable.
//! * [`CircuitBreaker`] / [`BreakerSet`] — per-peer closed → open →
//!   half-open breakers for the client/retry path of
//!   [`crate::service::call_with`], replacing blind retry storms against a
//!   dead peer with a fast local failure until a cooldown probe succeeds.
//! * [`PayoffGate`] — the Faucets Daemon's *payoff-aware* admission gate:
//!   over the inflight bound, bid solicitations queue (bounded) and are
//!   shed in ascending payoff-rate order, so the profit-maximizing
//!   contracts of §4 survive overload; a queued request whose propagated
//!   deadline expires is dropped as doomed work before any CPU is spent
//!   on it.
//!
//! Every limit is a runtime-configurable knob and every decision is
//! counted in the telemetry registry, so experiments (E22, `exp_overload`)
//! can assert on sheds, rejections, and breaker transitions instead of
//! timing.
//!
//! All four primitives are transport-agnostic: they sit above the socket,
//! so enabling connection pooling ([`crate::service::CallOptions::pool`])
//! changes none of their semantics — an `Overloaded` answer on a warm
//! socket is still a breaker success, and a poisoned pooled stream is
//! still just a transport failure to the retry loop.

use faucets_telemetry::metrics::Registry;
use faucets_telemetry::{Counter, Gauge};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Token bucket
// ---------------------------------------------------------------------------

/// A classic token bucket: starts full at `burst` tokens, refills at
/// `rate` tokens per second, each admitted request consumes one token.
/// Over any window of `t` seconds it therefore admits at most
/// `rate · t + burst` requests — the property `proptest_overload` checks.
///
/// Rate and burst are runtime-adjustable ([`TokenBucket::set_rate`],
/// [`TokenBucket::set_burst`]); the clock is injectable
/// ([`TokenBucket::try_admit_at`]) so tests are deterministic.
pub struct TokenBucket {
    /// Tokens per second, as `f64` bits (lock-free runtime knob).
    rate_bits: AtomicU64,
    /// Bucket capacity, as `f64` bits (lock-free runtime knob).
    burst_bits: AtomicU64,
    state: Mutex<BucketState>,
    epoch: Instant,
}

struct BucketState {
    tokens: f64,
    /// Microseconds since `epoch` of the last refill.
    last_micros: u64,
}

impl TokenBucket {
    /// A bucket refilling at `rate` tokens/second with capacity `burst`,
    /// starting full.
    pub fn new(rate: f64, burst: f64) -> Self {
        assert!(rate >= 0.0 && burst >= 0.0, "rate and burst must be ≥ 0");
        TokenBucket {
            rate_bits: AtomicU64::new(rate.to_bits()),
            burst_bits: AtomicU64::new(burst.to_bits()),
            state: Mutex::new(BucketState {
                tokens: burst,
                last_micros: 0,
            }),
            epoch: Instant::now(),
        }
    }

    /// The current refill rate (tokens/second).
    pub fn rate(&self) -> f64 {
        f64::from_bits(self.rate_bits.load(Ordering::Relaxed))
    }

    /// The current capacity.
    pub fn burst(&self) -> f64 {
        f64::from_bits(self.burst_bits.load(Ordering::Relaxed))
    }

    /// Retune the refill rate at runtime.
    pub fn set_rate(&self, rate: f64) {
        assert!(rate >= 0.0);
        self.rate_bits.store(rate.to_bits(), Ordering::Relaxed);
    }

    /// Retune the capacity at runtime (tokens above the new cap are
    /// forfeited on the next admit).
    pub fn set_burst(&self, burst: f64) {
        assert!(burst >= 0.0);
        self.burst_bits.store(burst.to_bits(), Ordering::Relaxed);
    }

    /// Try to admit one request at `now_micros` microseconds since the
    /// bucket's creation. Time injectable for deterministic tests; a clock
    /// that runs backwards is clamped, never panics.
    pub fn try_admit_at(&self, now_micros: u64) -> bool {
        let rate = self.rate();
        let burst = self.burst();
        let mut s = self.state.lock();
        let now = now_micros.max(s.last_micros);
        let dt = (now - s.last_micros) as f64 / 1e6;
        s.tokens = (s.tokens + rate * dt).min(burst);
        s.last_micros = now;
        if s.tokens >= 1.0 {
            s.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Try to admit one request now (wall clock).
    pub fn try_admit(&self) -> bool {
        self.try_admit_at(self.epoch.elapsed().as_micros() as u64)
    }
}

// ---------------------------------------------------------------------------
// Per-endpoint inflight limits (serve side)
// ---------------------------------------------------------------------------

/// Bounded per-endpoint inflight limits for [`crate::service::serve_with`]:
/// each endpoint may have at most `max_inflight` requests being handled at
/// once; the rest are answered [`crate::proto::Response::Overloaded`]
/// immediately (fast-fail instead of unbounded accept). `0` disables the
/// bound. Cloning shares the limit and the live counts.
#[derive(Clone)]
pub struct ServiceLimits {
    max_inflight: Arc<AtomicUsize>,
    counts: Arc<Mutex<HashMap<&'static str, Arc<AtomicUsize>>>>,
}

impl Default for ServiceLimits {
    /// A generous default bound (256 per endpoint): high enough that
    /// normal operation never notices it, low enough that a runaway
    /// caller cannot exhaust the thread supply.
    fn default() -> Self {
        ServiceLimits::new(256)
    }
}

impl ServiceLimits {
    /// Limits with the given per-endpoint inflight bound (`0` = unlimited).
    pub fn new(max_inflight: usize) -> Self {
        ServiceLimits {
            max_inflight: Arc::new(AtomicUsize::new(max_inflight)),
            counts: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Unbounded (the seed behaviour).
    pub fn unlimited() -> Self {
        ServiceLimits::new(0)
    }

    /// The current per-endpoint bound (`0` = unlimited).
    pub fn max_inflight(&self) -> usize {
        self.max_inflight.load(Ordering::Relaxed)
    }

    /// Retune the bound at runtime.
    pub fn set_max_inflight(&self, max: usize) {
        self.max_inflight.store(max, Ordering::Relaxed);
    }

    fn count_for(&self, endpoint: &'static str) -> Arc<AtomicUsize> {
        Arc::clone(
            self.counts
                .lock()
                .entry(endpoint)
                .or_insert_with(|| Arc::new(AtomicUsize::new(0))),
        )
    }

    /// Requests currently being handled for `endpoint`.
    pub fn inflight(&self, endpoint: &'static str) -> usize {
        self.count_for(endpoint).load(Ordering::SeqCst)
    }

    /// Try to take an inflight slot for `endpoint`. `None` means the
    /// endpoint is at its bound and the request must be rejected; the
    /// returned permit releases the slot on drop.
    pub fn try_enter(&self, endpoint: &'static str) -> Option<InflightPermit> {
        let max = self.max_inflight();
        let count = self.count_for(endpoint);
        loop {
            let cur = count.load(Ordering::SeqCst);
            if max > 0 && cur >= max {
                return None;
            }
            if count
                .compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return Some(InflightPermit { count });
            }
        }
    }
}

/// One occupied inflight slot; dropping it releases the slot.
pub struct InflightPermit {
    count: Arc<AtomicUsize>,
}

impl Drop for InflightPermit {
    fn drop(&mut self) {
        self.count.fetch_sub(1, Ordering::SeqCst);
    }
}

// ---------------------------------------------------------------------------
// Circuit breaker (call side)
// ---------------------------------------------------------------------------

/// Breaker tuning shared by every peer in a [`BreakerSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive transport failures that trip the breaker open.
    pub failures_to_open: u32,
    /// How long an open breaker fast-fails before letting one probe
    /// through (half-open).
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failures_to_open: 3,
            cooldown: Duration::from_millis(250),
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum BreakerState {
    Closed {
        fails: u32,
    },
    Open {
        since: Instant,
    },
    /// One probe is in flight; `since` lets a second probe through if the
    /// first one never reports back (its caller died mid-call).
    HalfOpen {
        since: Instant,
    },
}

/// A per-peer circuit breaker: closed (normal) → open after
/// `failures_to_open` consecutive transport failures (every call
/// fast-fails locally, no network) → half-open after `cooldown` (exactly
/// one probe goes through; success closes the breaker, failure re-opens
/// it). A received response — any response, including
/// [`crate::proto::Response::Overloaded`] — counts as success: a busy peer
/// is alive, and must not be evicted by its own load shedding.
///
/// All methods take an explicit `now` so tests can script time; the
/// wall-clock wrappers are what production code calls.
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: Mutex<BreakerState>,
}

/// Names of the three breaker states, used as the `to` label on
/// `net_breaker_transitions_total`.
pub mod breaker_state {
    /// Normal operation.
    pub const CLOSED: &str = "closed";
    /// Fast-failing locally.
    pub const OPEN: &str = "open";
    /// Cooldown elapsed; one probe in flight.
    pub const HALF_OPEN: &str = "half_open";
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            state: Mutex::new(BreakerState::Closed { fails: 0 }),
        }
    }

    /// The current state's name (see [`breaker_state`]).
    pub fn state_name(&self) -> &'static str {
        match *self.state.lock() {
            BreakerState::Closed { .. } => breaker_state::CLOSED,
            BreakerState::Open { .. } => breaker_state::OPEN,
            BreakerState::HalfOpen { .. } => breaker_state::HALF_OPEN,
        }
    }

    /// May a call proceed at `now`? Returns the transition this decision
    /// caused, if any (open → half-open when the cooldown has elapsed).
    pub fn allow_at(&self, now: Instant) -> (bool, Option<&'static str>) {
        let mut s = self.state.lock();
        match *s {
            BreakerState::Closed { .. } => (true, None),
            BreakerState::Open { since } => {
                if now.saturating_duration_since(since) >= self.cfg.cooldown {
                    *s = BreakerState::HalfOpen { since: now };
                    (true, Some(breaker_state::HALF_OPEN))
                } else {
                    (false, None)
                }
            }
            BreakerState::HalfOpen { since } => {
                // The probe's caller may have died without reporting; after
                // another full cooldown of silence, let a new probe through.
                if now.saturating_duration_since(since) >= self.cfg.cooldown {
                    *s = BreakerState::HalfOpen { since: now };
                    (true, None)
                } else {
                    (false, None)
                }
            }
        }
    }

    /// Record a successful call (any received response). Returns the
    /// transition, if any (anything → closed).
    pub fn on_success_at(&self, _now: Instant) -> Option<&'static str> {
        let mut s = self.state.lock();
        let was_closed = matches!(*s, BreakerState::Closed { .. });
        *s = BreakerState::Closed { fails: 0 };
        (!was_closed).then_some(breaker_state::CLOSED)
    }

    /// Record a transport failure. Returns the transition, if any
    /// (closed → open at the threshold, half-open → open on a failed
    /// probe).
    pub fn on_failure_at(&self, now: Instant) -> Option<&'static str> {
        let mut s = self.state.lock();
        match *s {
            BreakerState::Closed { fails } => {
                let fails = fails + 1;
                if fails >= self.cfg.failures_to_open.max(1) {
                    *s = BreakerState::Open { since: now };
                    Some(breaker_state::OPEN)
                } else {
                    *s = BreakerState::Closed { fails };
                    None
                }
            }
            BreakerState::HalfOpen { .. } => {
                *s = BreakerState::Open { since: now };
                Some(breaker_state::OPEN)
            }
            BreakerState::Open { .. } => None,
        }
    }

    /// [`CircuitBreaker::allow_at`] on the wall clock.
    pub fn allow(&self) -> (bool, Option<&'static str>) {
        self.allow_at(Instant::now())
    }

    /// [`CircuitBreaker::on_success_at`] on the wall clock.
    pub fn on_success(&self) -> Option<&'static str> {
        self.on_success_at(Instant::now())
    }

    /// [`CircuitBreaker::on_failure_at`] on the wall clock.
    pub fn on_failure(&self) -> Option<&'static str> {
        self.on_failure_at(Instant::now())
    }
}

/// A family of [`CircuitBreaker`]s keyed by peer address, sharing one
/// [`BreakerConfig`]. Transitions are counted in the process-global
/// telemetry registry as `net_breaker_transitions_total{peer,to}`.
pub struct BreakerSet {
    cfg: BreakerConfig,
    peers: Mutex<HashMap<SocketAddr, Arc<CircuitBreaker>>>,
}

impl Default for BreakerSet {
    fn default() -> Self {
        BreakerSet::new(BreakerConfig::default())
    }
}

impl BreakerSet {
    /// An empty set; breakers are created closed on first use.
    pub fn new(cfg: BreakerConfig) -> Self {
        BreakerSet {
            cfg,
            peers: Mutex::new(HashMap::new()),
        }
    }

    /// The tuning shared by every peer in this set.
    pub fn config(&self) -> BreakerConfig {
        self.cfg
    }

    /// The breaker for `peer` (created closed on first use).
    pub fn breaker(&self, peer: SocketAddr) -> Arc<CircuitBreaker> {
        Arc::clone(
            self.peers
                .lock()
                .entry(peer)
                .or_insert_with(|| Arc::new(CircuitBreaker::new(self.cfg))),
        )
    }

    fn record(reg: &Registry, peer: SocketAddr, transition: Option<&'static str>) {
        if let Some(to) = transition {
            let peer = peer.to_string();
            reg.counter(
                "net_breaker_transitions_total",
                &[("peer", peer.as_str()), ("to", to)],
            )
            .inc();
        }
    }

    /// May a call to `peer` proceed? Transitions are counted in `reg`.
    pub fn allow(&self, peer: SocketAddr, reg: &Registry) -> bool {
        let (ok, transition) = self.breaker(peer).allow();
        Self::record(reg, peer, transition);
        ok
    }

    /// Record a received response from `peer`.
    pub fn on_success(&self, peer: SocketAddr, reg: &Registry) {
        Self::record(reg, peer, self.breaker(peer).on_success());
    }

    /// Record a transport failure against `peer`.
    pub fn on_failure(&self, peer: SocketAddr, reg: &Registry) {
        Self::record(reg, peer, self.breaker(peer).on_failure());
    }
}

// ---------------------------------------------------------------------------
// Payoff-aware admission gate (FD side)
// ---------------------------------------------------------------------------

/// [`PayoffGate`] tuning; both knobs are runtime-adjustable via
/// [`PayoffGate::set_config`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateConfig {
    /// Bid solicitations evaluated concurrently.
    pub max_inflight: usize,
    /// Solicitations allowed to wait for a slot; beyond this, the lowest
    /// payoff-rate request (queued or incoming) is shed.
    pub max_queue: usize,
}

impl Default for GateConfig {
    /// Generous defaults: wide enough that the existing test suite never
    /// sheds, tight enough to bound a genuine storm.
    fn default() -> Self {
        GateConfig {
            max_inflight: 64,
            max_queue: 256,
        }
    }
}

/// The outcome of [`PayoffGate::enter`].
pub enum GateVerdict {
    /// A slot was granted; hold the permit for the duration of the work.
    Served(GatePermit),
    /// Shed: the gate was full and this request's payoff-rate lost the
    /// comparison (ascending payoff-rate order, §4's profit maximization
    /// under overload).
    Shed,
    /// The request's propagated deadline expired before a slot opened —
    /// doomed work, dropped before any CPU was spent on it.
    Doomed,
}

#[derive(Clone, Copy)]
struct Waiter {
    id: u64,
    rate: f64,
}

#[derive(Default)]
struct GateState {
    inflight: usize,
    next_id: u64,
    waiting: Vec<Waiter>,
    /// Waiter ids shed by a higher-rate arrival; owners notice on wake.
    shed: Vec<u64>,
    /// Waiter ids granted a slot (inflight already counts them).
    granted: Vec<u64>,
    /// Peak queue depth since creation (reported as a gauge).
    peak_queue: usize,
}

/// The Faucets Daemon's payoff-aware admission gate for bid solicitations.
///
/// Up to `max_inflight` requests are evaluated at once; up to `max_queue`
/// more may wait. When both are full, the *lowest payoff-rate* request —
/// queued or incoming — is shed, so under overload the daemon's capacity
/// goes to the contracts worth the most per CPU-second (§4). A queued
/// request whose deadline passes is dropped as doomed. Freed slots go to
/// the highest-rate waiter.
pub struct PayoffGate {
    cfg: Mutex<GateConfig>,
    state: Mutex<GateState>,
    cond: Condvar,
    m_sheds: Counter,
    m_doomed: Counter,
    m_served: Counter,
    g_queue: Gauge,
    g_queue_peak: Gauge,
}

impl PayoffGate {
    /// A gate with the given tuning, reporting telemetry under
    /// `cluster` (`fd_bid_sheds_total`, `fd_doomed_sheds_total`,
    /// `fd_bids_admitted_total`, `fd_bid_queue_depth`,
    /// `fd_bid_queue_peak`).
    pub fn new(cfg: GateConfig, cluster: &str, reg: &Registry) -> Arc<Self> {
        let labels = [("cluster", cluster)];
        Arc::new(PayoffGate {
            cfg: Mutex::new(cfg),
            state: Mutex::new(GateState::default()),
            cond: Condvar::new(),
            m_sheds: reg.counter("fd_bid_sheds_total", &labels),
            m_doomed: reg.counter("fd_doomed_sheds_total", &labels),
            m_served: reg.counter("fd_bids_admitted_total", &labels),
            g_queue: reg.gauge("fd_bid_queue_depth", &labels),
            g_queue_peak: reg.gauge("fd_bid_queue_peak", &labels),
        })
    }

    /// The current tuning.
    pub fn config(&self) -> GateConfig {
        *self.cfg.lock()
    }

    /// Retune the gate at runtime (applies to subsequent admissions).
    pub fn set_config(&self, cfg: GateConfig) {
        *self.cfg.lock() = cfg;
        self.cond.notify_all();
    }

    fn note_queue(&self, s: &mut GateState) {
        let depth = s.waiting.len();
        s.peak_queue = s.peak_queue.max(depth);
        self.g_queue.set(depth as f64);
        self.g_queue_peak.set(s.peak_queue as f64);
    }

    /// Ask for an evaluation slot for a request worth `rate` (payoff per
    /// CPU-second), giving up at `deadline` if one is set. Blocks while
    /// queued; returns the verdict.
    pub fn enter(self: &Arc<Self>, rate: f64, deadline: Option<Instant>) -> GateVerdict {
        let cfg = self.config();
        let mut s = self.state.lock();
        if deadline.is_some_and(|d| Instant::now() >= d) {
            self.m_doomed.inc();
            return GateVerdict::Doomed;
        }
        if cfg.max_inflight == 0 || s.inflight < cfg.max_inflight {
            s.inflight += 1;
            self.m_served.inc();
            return GateVerdict::Served(GatePermit {
                gate: Arc::clone(self),
            });
        }
        // Inflight full: queue if there is room, otherwise shed the lowest
        // payoff-rate request among the queue and this arrival.
        if s.waiting.len() >= cfg.max_queue {
            let min_idx = s
                .waiting
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.rate.total_cmp(&b.rate))
                .map(|(i, _)| i);
            match min_idx {
                Some(i) if s.waiting[i].rate < rate => {
                    // The incoming request outbids the cheapest waiter:
                    // shed the waiter, take its queue slot.
                    let victim = s.waiting.swap_remove(i);
                    s.shed.push(victim.id);
                    self.m_sheds.inc();
                    self.cond.notify_all();
                }
                _ => {
                    // Queue empty (max_queue = 0) or the incoming request
                    // is the cheapest: shed it.
                    self.m_sheds.inc();
                    return GateVerdict::Shed;
                }
            }
        }
        let id = s.next_id;
        s.next_id += 1;
        s.waiting.push(Waiter { id, rate });
        self.note_queue(&mut s);

        loop {
            if let Some(i) = s.granted.iter().position(|g| *g == id) {
                s.granted.swap_remove(i);
                self.note_queue(&mut s);
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    // Granted too late: release the slot we were handed.
                    drop(s);
                    drop(GatePermit {
                        gate: Arc::clone(self),
                    });
                    self.m_doomed.inc();
                    return GateVerdict::Doomed;
                }
                self.m_served.inc();
                return GateVerdict::Served(GatePermit {
                    gate: Arc::clone(self),
                });
            }
            if let Some(i) = s.shed.iter().position(|g| *g == id) {
                s.shed.swap_remove(i);
                self.note_queue(&mut s);
                return GateVerdict::Shed;
            }
            match deadline {
                Some(d) => {
                    if Instant::now() >= d || self.cond.wait_until(&mut s, d).timed_out() {
                        // Doomed while queued: remove ourselves (unless a
                        // grant or shed raced in, handled on next loop).
                        if let Some(i) = s.waiting.iter().position(|w| w.id == id) {
                            s.waiting.swap_remove(i);
                            self.note_queue(&mut s);
                            self.m_doomed.inc();
                            return GateVerdict::Doomed;
                        }
                        continue;
                    }
                }
                None => self.cond.wait(&mut s),
            }
        }
    }

    /// Peak queue depth observed since creation.
    pub fn peak_queue(&self) -> usize {
        self.state.lock().peak_queue
    }

    fn release(&self) {
        let mut s = self.state.lock();
        s.inflight -= 1;
        // Hand the freed slot to the highest payoff-rate waiter.
        let max_idx = s
            .waiting
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.rate.total_cmp(&b.rate))
            .map(|(i, _)| i);
        if let Some(i) = max_idx {
            let w = s.waiting.swap_remove(i);
            s.granted.push(w.id);
            s.inflight += 1;
            self.note_queue(&mut s);
        }
        drop(s);
        self.cond.notify_all();
    }
}

/// One occupied [`PayoffGate`] slot; dropping it releases the slot to the
/// highest payoff-rate waiter.
pub struct GatePermit {
    gate: Arc<PayoffGate>,
}

impl Drop for GatePermit {
    fn drop(&mut self) {
        self.gate.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // ---- token bucket ----

    #[test]
    fn bucket_admits_burst_then_refills() {
        let b = TokenBucket::new(10.0, 3.0);
        // The initial burst.
        assert!(b.try_admit_at(0));
        assert!(b.try_admit_at(0));
        assert!(b.try_admit_at(0));
        assert!(!b.try_admit_at(0), "burst exhausted");
        // 100 ms at 10/s refills exactly one token.
        assert!(b.try_admit_at(100_000));
        assert!(!b.try_admit_at(100_000));
    }

    #[test]
    fn bucket_never_exceeds_burst_after_idle() {
        let b = TokenBucket::new(10.0, 2.0);
        // A long idle period must not bank unlimited tokens.
        let t = 60_000_000; // one minute
        assert!(b.try_admit_at(t));
        assert!(b.try_admit_at(t));
        assert!(!b.try_admit_at(t), "capped at burst");
    }

    #[test]
    fn bucket_knobs_are_live() {
        let b = TokenBucket::new(0.0, 1.0);
        assert!(b.try_admit_at(0));
        assert!(!b.try_admit_at(1_000_000), "rate 0 never refills");
        b.set_rate(1000.0);
        b.set_burst(10.0);
        assert!(b.try_admit_at(2_000_000), "retuned rate refills");
        assert_eq!(b.rate(), 1000.0);
        assert_eq!(b.burst(), 10.0);
    }

    #[test]
    fn bucket_tolerates_backwards_clock() {
        let b = TokenBucket::new(1.0, 1.0);
        assert!(b.try_admit_at(5_000_000));
        // Clock runs backwards: clamped, no refill, no panic.
        assert!(!b.try_admit_at(1_000_000));
    }

    // ---- inflight limits ----

    #[test]
    fn limits_bound_and_release() {
        let l = ServiceLimits::new(2);
        let a = l.try_enter("Bid").expect("slot 1");
        let _b = l.try_enter("Bid").expect("slot 2");
        assert!(l.try_enter("Bid").is_none(), "at the bound");
        // Other endpoints are independent.
        assert!(l.try_enter("Match").is_some());
        assert_eq!(l.inflight("Bid"), 2);
        drop(a);
        assert_eq!(l.inflight("Bid"), 1);
        assert!(l.try_enter("Bid").is_some(), "released slot reusable");
    }

    #[test]
    fn limits_zero_means_unlimited() {
        let l = ServiceLimits::unlimited();
        let permits: Vec<_> = (0..1000).map(|_| l.try_enter("X").unwrap()).collect();
        assert_eq!(l.inflight("X"), 1000);
        drop(permits);
        assert_eq!(l.inflight("X"), 0);
    }

    #[test]
    fn limits_knob_is_live() {
        let l = ServiceLimits::new(1);
        let _a = l.try_enter("X").unwrap();
        assert!(l.try_enter("X").is_none());
        l.set_max_inflight(2);
        assert!(l.try_enter("X").is_some(), "raised bound takes effect");
    }

    // ---- circuit breaker ----

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failures_to_open: 3,
            cooldown: Duration::from_millis(100),
        }
    }

    #[test]
    fn breaker_opens_after_consecutive_failures() {
        let t0 = Instant::now();
        let b = CircuitBreaker::new(cfg());
        assert_eq!(b.on_failure_at(t0), None);
        assert_eq!(b.on_failure_at(t0), None);
        assert_eq!(b.on_failure_at(t0), Some(breaker_state::OPEN));
        assert_eq!(b.state_name(), breaker_state::OPEN);
        assert!(!b.allow_at(t0).0, "open fast-fails");
        assert!(
            !b.allow_at(t0 + Duration::from_millis(99)).0,
            "still cooling down"
        );
    }

    #[test]
    fn breaker_success_resets_failure_streak() {
        let t0 = Instant::now();
        let b = CircuitBreaker::new(cfg());
        b.on_failure_at(t0);
        b.on_failure_at(t0);
        assert_eq!(b.on_success_at(t0), None, "already closed, no transition");
        // The streak restarted: two more failures don't open it.
        b.on_failure_at(t0);
        assert_eq!(b.on_failure_at(t0), None);
        assert_eq!(b.state_name(), breaker_state::CLOSED);
    }

    /// The half-open chaos scenario the issue calls for: a breaker in
    /// half-open closes after one success and re-opens after one failure —
    /// scripted against injected instants, so no sleeps and no flake.
    #[test]
    fn half_open_closes_on_one_success_reopens_on_one_failure() {
        let t0 = Instant::now();
        let b = CircuitBreaker::new(cfg());
        for _ in 0..3 {
            b.on_failure_at(t0);
        }
        // Cooldown elapses: exactly one probe is allowed through.
        let t1 = t0 + Duration::from_millis(100);
        let (ok, tr) = b.allow_at(t1);
        assert!(ok, "cooldown elapsed: the probe goes");
        assert_eq!(tr, Some(breaker_state::HALF_OPEN));
        assert!(!b.allow_at(t1).0, "only one probe at a time");
        // One success closes it.
        assert_eq!(b.on_success_at(t1), Some(breaker_state::CLOSED));
        assert!(b.allow_at(t1).0);

        // Trip it again, probe again — this time the probe fails.
        for _ in 0..3 {
            b.on_failure_at(t1);
        }
        let t2 = t1 + Duration::from_millis(100);
        assert!(b.allow_at(t2).0);
        assert_eq!(
            b.on_failure_at(t2),
            Some(breaker_state::OPEN),
            "one failed probe re-opens"
        );
        assert!(!b.allow_at(t2).0);
        // And the re-opened cooldown starts from the probe failure.
        assert!(b.allow_at(t2 + Duration::from_millis(100)).0);
    }

    #[test]
    fn half_open_allows_fresh_probe_if_first_never_reports() {
        let t0 = Instant::now();
        let b = CircuitBreaker::new(cfg());
        for _ in 0..3 {
            b.on_failure_at(t0);
        }
        let t1 = t0 + Duration::from_millis(100);
        assert!(b.allow_at(t1).0);
        // The probe's caller dies silently. After another cooldown the
        // breaker lets a new probe through instead of wedging open.
        let t2 = t1 + Duration::from_millis(100);
        assert!(b.allow_at(t2).0, "stuck probe does not wedge the breaker");
    }

    #[test]
    fn breaker_set_counts_transitions() {
        let reg = Registry::new();
        let set = BreakerSet::new(cfg());
        let peer: SocketAddr = "127.0.0.1:9999".parse().unwrap();
        for _ in 0..3 {
            set.on_failure(peer, &reg);
        }
        assert!(!set.allow(peer, &reg));
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter_sum("net_breaker_transitions_total", &[("to", "open")]),
            1
        );
        // An unrelated peer is unaffected.
        let other: SocketAddr = "127.0.0.1:9998".parse().unwrap();
        assert!(set.allow(other, &reg));
    }

    // ---- payoff gate ----

    #[test]
    fn gate_serves_under_the_bound() {
        let reg = Registry::new();
        let g = PayoffGate::new(
            GateConfig {
                max_inflight: 2,
                max_queue: 2,
            },
            "t",
            &reg,
        );
        let a = g.enter(1.0, None);
        let b = g.enter(1.0, None);
        assert!(matches!(a, GateVerdict::Served(_)));
        assert!(matches!(b, GateVerdict::Served(_)));
    }

    #[test]
    fn gate_sheds_lowest_payoff_rate_first() {
        let reg = Registry::new();
        let g = PayoffGate::new(
            GateConfig {
                max_inflight: 1,
                max_queue: 0,
            },
            "t",
            &reg,
        );
        let held = g.enter(1.0, None);
        assert!(matches!(held, GateVerdict::Served(_)));
        // Queue of zero: the incoming request is shed immediately.
        assert!(matches!(g.enter(5.0, None), GateVerdict::Shed));
        let snap = reg.snapshot();
        assert_eq!(snap.counter_sum("fd_bid_sheds_total", &[]), 1);
    }

    #[test]
    fn gate_queue_full_sheds_cheapest_waiter_for_richer_arrival() {
        let reg = Registry::new();
        let g = PayoffGate::new(
            GateConfig {
                max_inflight: 1,
                max_queue: 1,
            },
            "t",
            &reg,
        );
        let GateVerdict::Served(held) = g.enter(1.0, None) else {
            panic!("first enter must be served")
        };
        // A cheap request queues (in a helper thread, since enter blocks).
        let g2 = Arc::clone(&g);
        let cheap = std::thread::spawn(move || g2.enter(0.1, None));
        // Wait until it is actually queued.
        while g.state.lock().waiting.is_empty() {
            std::thread::sleep(Duration::from_millis(1));
        }
        // A richer request arrives: the cheap waiter is shed, the rich one
        // takes its queue slot.
        let g3 = Arc::clone(&g);
        let rich = std::thread::spawn(move || g3.enter(2.0, None));
        let cheap_verdict = cheap.join().unwrap();
        assert!(
            matches!(cheap_verdict, GateVerdict::Shed),
            "ascending payoff-rate order: the cheapest goes first"
        );
        // Releasing the held slot grants the rich waiter.
        drop(held);
        assert!(matches!(rich.join().unwrap(), GateVerdict::Served(_)));
        assert_eq!(reg.snapshot().counter_sum("fd_bid_sheds_total", &[]), 1);
        assert!(g.peak_queue() >= 1);
    }

    #[test]
    fn gate_dooms_expired_deadlines() {
        let reg = Registry::new();
        let g = PayoffGate::new(
            GateConfig {
                max_inflight: 1,
                max_queue: 4,
            },
            "t",
            &reg,
        );
        let _held = g.enter(1.0, None);
        // Already expired on arrival.
        let past = Instant::now() - Duration::from_millis(1);
        assert!(matches!(g.enter(1.0, Some(past)), GateVerdict::Doomed));
        // Expires while queued.
        let soon = Instant::now() + Duration::from_millis(30);
        assert!(matches!(g.enter(1.0, Some(soon)), GateVerdict::Doomed));
        let snap = reg.snapshot();
        assert_eq!(snap.counter_sum("fd_doomed_sheds_total", &[]), 2);
    }

    #[test]
    fn gate_grants_freed_slots_to_highest_rate_waiter() {
        let reg = Registry::new();
        let g = PayoffGate::new(
            GateConfig {
                max_inflight: 1,
                max_queue: 4,
            },
            "t",
            &reg,
        );
        let GateVerdict::Served(held) = g.enter(1.0, None) else {
            panic!()
        };
        let spawn_enter = |rate: f64| {
            let g = Arc::clone(&g);
            std::thread::spawn(move || match g.enter(rate, None) {
                GateVerdict::Served(p) => {
                    drop(p);
                    rate
                }
                _ => f64::NAN,
            })
        };
        let low = spawn_enter(0.5);
        while g.state.lock().waiting.is_empty() {
            std::thread::sleep(Duration::from_millis(1));
        }
        let high = spawn_enter(3.0);
        while g.state.lock().waiting.len() < 2 {
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(held); // frees one slot: must go to rate 3.0 first
        assert_eq!(high.join().unwrap(), 3.0);
        assert_eq!(low.join().unwrap(), 0.5, "then the low-rate waiter");
    }
}
