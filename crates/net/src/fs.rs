//! The Central Faucets Server (FS) as a TCP service.
//!
//! Wraps [`faucets_core::server::FaucetsServer`] behind the wire protocol:
//! account creation, login, FD registration, heartbeats, token
//! verification for daemons (§2.2), and server matching for clients (§5.1).

use crate::proto::{Request, Response};
use crate::service::{serve_with, Clock, ServeOptions, ServiceHandle};
use faucets_core::directory::ServerListing;
use faucets_core::server::FaucetsServer;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io;
use std::sync::Arc;

/// A running FS service.
pub struct FsHandle {
    /// The TCP service (address, shutdown).
    pub service: ServiceHandle,
    /// The shared server state (inspectable by tests/tools).
    pub state: Arc<Mutex<FaucetsServer>>,
}

/// Spawn the FS on `addr` (use port 0 to pick a free port).
pub fn spawn_fs(addr: &str, clock: Clock, seed: u64) -> io::Result<FsHandle> {
    spawn_fs_with(addr, clock, seed, ServeOptions::default())
}

/// [`spawn_fs`], with explicit timeouts and optional fault injection on
/// the service side.
pub fn spawn_fs_with(
    addr: &str,
    clock: Clock,
    seed: u64,
    opts: ServeOptions,
) -> io::Result<FsHandle> {
    let state = Arc::new(Mutex::new(FaucetsServer::with_defaults()));
    let rng = Arc::new(Mutex::new(StdRng::seed_from_u64(seed)));
    let st = Arc::clone(&state);

    let service = serve_with(addr, "fs", opts, move |req| {
        let now = clock.now();
        let mut s = st.lock();
        match req {
            Request::CreateUser { user, password } => {
                match s.create_user(&user, &password, &mut *rng.lock()) {
                    Ok(id) => Response::Verified { user: id },
                    Err(e) => Response::Error(e.to_string()),
                }
            }
            Request::Login { user, password } => {
                match s.login(&user, &password, now, &mut *rng.lock()) {
                    Ok((id, token)) => Response::Session { user: id, token },
                    Err(e) => Response::Error(e.to_string()),
                }
            }
            Request::VerifyToken { token } => match s.verify_token(&token, now) {
                Ok(user) => Response::Verified { user },
                Err(e) => Response::Error(e.to_string()),
            },
            Request::RegisterCluster { info, apps } => {
                s.register_cluster(info, apps, now);
                Response::Ok
            }
            Request::Heartbeat { cluster, status } => {
                if s.heartbeat(cluster, status, now) {
                    Response::Ok
                } else {
                    Response::Error(format!("unknown cluster {cluster}"))
                }
            }
            Request::ListServers { token, qos } => match s.match_servers(&token, &qos, now) {
                Ok(ids) => {
                    let listings = ids
                        .iter()
                        .filter_map(|c| {
                            s.directory.get(*c).map(|e| ServerListing {
                                info: e.info.clone(),
                                status: e.status,
                            })
                        })
                        .collect();
                    Response::Servers(listings)
                }
                Err(e) => Response::Error(e.to_string()),
            },
            Request::ListClusters { token } => match s.verify_token(&token, now) {
                Ok(_) => Response::Clusters(s.directory.rows(now)),
                Err(e) => Response::Error(e.to_string()),
            },
            other => Response::Error(format!("FS cannot handle {other:?}")),
        }
    })?;

    Ok(FsHandle { service, state })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::call;
    use faucets_core::directory::{ServerInfo, ServerStatus};
    use faucets_core::ids::ClusterId;
    use faucets_core::qos::QosBuilder;

    fn info(id: u64) -> ServerInfo {
        ServerInfo {
            cluster: ClusterId(id),
            name: format!("cs{id}"),
            total_pes: 64,
            mem_per_pe_mb: 1024,
            cpu_type: "x86-64".into(),
            flops_per_pe_sec: 1.0,
            fd_addr: "127.0.0.1".into(),
            fd_port: 1,
        }
    }

    #[test]
    fn account_login_verify_flow() {
        let fs = spawn_fs("127.0.0.1:0", Clock::realtime(), 1).unwrap();
        let addr = fs.service.addr;
        let r = call(
            addr,
            &Request::CreateUser {
                user: "alice".into(),
                password: "pw".into(),
            },
        )
        .unwrap();
        assert!(matches!(r, Response::Verified { .. }));
        // Wrong password fails.
        let r = call(
            addr,
            &Request::Login {
                user: "alice".into(),
                password: "xx".into(),
            },
        )
        .unwrap();
        assert!(matches!(r, Response::Error(_)));
        // Correct login mints a token the FD can verify (the §2.2 re-check).
        let Response::Session { user, token } = call(
            addr,
            &Request::Login {
                user: "alice".into(),
                password: "pw".into(),
            },
        )
        .unwrap() else {
            panic!("expected session");
        };
        let r = call(addr, &Request::VerifyToken { token }).unwrap();
        assert_eq!(r, Response::Verified { user });
    }

    #[test]
    fn registration_and_matching_over_wire() {
        let fs = spawn_fs("127.0.0.1:0", Clock::realtime(), 2).unwrap();
        let addr = fs.service.addr;
        call(
            addr,
            &Request::CreateUser {
                user: "u".into(),
                password: "p".into(),
            },
        )
        .unwrap();
        let Response::Session { token, .. } = call(
            addr,
            &Request::Login {
                user: "u".into(),
                password: "p".into(),
            },
        )
        .unwrap() else {
            panic!()
        };
        call(
            addr,
            &Request::RegisterCluster {
                info: info(1),
                apps: vec!["namd".into()],
            },
        )
        .unwrap();
        call(
            addr,
            &Request::RegisterCluster {
                info: info(2),
                apps: vec!["cfd".into()],
            },
        )
        .unwrap();
        call(
            addr,
            &Request::Heartbeat {
                cluster: ClusterId(1),
                status: ServerStatus {
                    free_pes: 48,
                    queue_len: 2,
                    accepting: true,
                    utilization: 0.25,
                    running: 4,
                },
            },
        )
        .unwrap();

        let qos = QosBuilder::new("namd", 4, 16, 100.0).build().unwrap();
        let Response::Servers(servers) = call(
            addr,
            &Request::ListServers {
                token: token.clone(),
                qos,
            },
        )
        .unwrap() else {
            panic!("expected server list")
        };
        // Static filter: only cs1 exports namd — and the match response now
        // carries the load the last heartbeat reported.
        assert_eq!(servers.len(), 1);
        assert_eq!(servers[0].info.cluster, ClusterId(1));
        assert_eq!(servers[0].status.utilization, 0.25);
        assert_eq!(servers[0].status.running, 4);

        // The dashboard view lists every registered cluster, graded.
        let Response::Clusters(rows) = call(addr, &Request::ListClusters { token }).unwrap() else {
            panic!("expected cluster rows")
        };
        assert_eq!(rows.len(), 2);
        assert!(rows
            .iter()
            .any(|r| r.info.cluster == ClusterId(1) && r.status.queue_len == 2));
    }

    #[test]
    fn cluster_listing_requires_valid_token() {
        let fs = spawn_fs("127.0.0.1:0", Clock::realtime(), 7).unwrap();
        let r = call(
            fs.service.addr,
            &Request::ListClusters {
                token: faucets_core::auth::SessionToken("bogus".into()),
            },
        )
        .unwrap();
        assert!(matches!(r, Response::Error(_)));
    }

    #[test]
    fn unknown_heartbeat_is_error() {
        let fs = spawn_fs("127.0.0.1:0", Clock::realtime(), 3).unwrap();
        let r = call(
            fs.service.addr,
            &Request::Heartbeat {
                cluster: ClusterId(9),
                status: ServerStatus::default(),
            },
        )
        .unwrap();
        assert!(matches!(r, Response::Error(_)));
    }
}
