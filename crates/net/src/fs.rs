//! The Central Faucets Server (FS) as a TCP service.
//!
//! Wraps [`faucets_core::server::FaucetsServer`] behind the wire protocol:
//! account creation, login, FD registration, heartbeats, token
//! verification for daemons (§2.2), and server matching for clients (§5.1).
//!
//! ## Durability
//!
//! With [`FsOptions::store`] set, cluster registrations are journaled to a
//! [`DurableStore`] *before* the directory is mutated, so a `RegisterCluster`
//! that was answered `Ok` survives an FS crash: on restart the journal is
//! replayed and every registered cluster reappears with its recorded
//! `last_heard`. If the journal append fails the registration is NACKed
//! (`Response::Error`) and the in-memory directory is left untouched —
//! "registered" means "durable". Heartbeats are deliberately *not*
//! journaled: `last_heard`/`ServerStatus` are soft state that the next
//! heartbeat refreshes, and a daemon restored with a stale `last_heard`
//! that has since died is simply re-graded dead and swept. Evictions are
//! journaled best-effort (they compact the journal but are re-derivable
//! from silence). User accounts and session tokens stay in-memory: daemons
//! re-verify tokens against the FS, so an FS restart invalidates sessions
//! and clients must log in again.
//!
//! ## Federation
//!
//! With [`FsOptions::federation`] set, this FS becomes one shard of a
//! federated directory (see [`crate::federation`]): the consistent-hash
//! ring assigns each cluster id an owning shard, `RegisterCluster` and
//! `Heartbeat` arriving at the wrong shard are forwarded to the owner
//! (whose journal — replicated or not — is the one that records them),
//! and directory-wide queries (`ListServers`, `ListClusters`) merge the
//! local shard with a [`crate::proto::FedQuery`] scatter-gather across
//! every alive peer. Accounts and session tokens remain shard-local;
//! `VerifyToken` checks locally first and then asks the peers, so a
//! daemon pointed at any shard can verify a token minted by any other.
//! A `FedQuery` is always answered from local state only — the receiver
//! never re-scatters — so cross-shard request chains are at most one hop
//! deep and shard worker pools cannot deadlock on each other.

use crate::federation::{Federation, FederationOptions};
use crate::overload::TokenBucket;
use crate::proto::{FedQuery, Request, Response};
use crate::replica::{Journal, ReplicationConfig};
use crate::service::{serve_with, Clock, ServeOptions, ServiceHandle};
use faucets_core::auth::SessionToken;
use faucets_core::directory::{ServerInfo, ServerListing};
use faucets_core::ids::{ClusterId, UserId};
use faucets_core::qos::QosContract;
use faucets_core::server::FaucetsServer;
use faucets_sim::time::SimTime;
use faucets_store::{Durable, RecoveryReport, StoreOptions};
use faucets_telemetry::{Counter, Gauge};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;

/// One journaled directory mutation (see [`DirJournal`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum DirRecord {
    /// A Compute Server registered (or re-registered) with the FS.
    Register {
        /// Static description of the cluster.
        info: ServerInfo,
        /// Applications it exports ("Known Applications", §2.2).
        apps: Vec<String>,
        /// When the registration arrived; restored as `last_heard`.
        at: SimTime,
    },
    /// A cluster was evicted after missing its liveness window.
    Evict {
        /// The evicted cluster.
        cluster: ClusterId,
    },
}

/// One durable registration row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DirRow {
    /// Static description of the cluster.
    pub info: ServerInfo,
    /// Applications it exports.
    pub apps: Vec<String>,
    /// Last contact recorded in the journal (registration time; heartbeats
    /// are soft state and not journaled).
    pub last_heard: SimTime,
}

/// The durable state machine behind the FS directory: the set of live
/// registrations, keyed by cluster. Registrations are few, so rows are a
/// plain `Vec` (which also keeps the JSON snapshot free of non-string map
/// keys).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DirJournal {
    /// Registered clusters, in registration order.
    pub rows: Vec<DirRow>,
}

impl Durable for DirJournal {
    type Record = DirRecord;
    type Snapshot = DirJournal;

    fn apply(&mut self, rec: &DirRecord) {
        match rec {
            DirRecord::Register { info, apps, at } => {
                self.rows.retain(|r| r.info.cluster != info.cluster);
                self.rows.push(DirRow {
                    info: info.clone(),
                    apps: apps.clone(),
                    last_heard: *at,
                });
            }
            DirRecord::Evict { cluster } => {
                self.rows.retain(|r| r.info.cluster != *cluster);
            }
        }
    }

    fn snapshot(&self) -> DirJournal {
        self.clone()
    }

    fn restore(snap: DirJournal) -> Self {
        snap
    }
}

/// Options for [`spawn_fs_durable`].
#[derive(Clone)]
pub struct FsOptions {
    /// Service-side timeouts, fault injection, metrics registry, and the
    /// worker-pool bound ([`ServeOptions::workers`]) that caps how many
    /// pooled client connections the FS serves concurrently.
    pub serve: ServeOptions,
    /// Directory for the durable registration journal. `None` keeps the
    /// directory purely in memory (the seed behaviour).
    pub store: Option<PathBuf>,
    /// Store tuning: telemetry label, compaction cadence, fsync, injected
    /// write faults. Only consulted when `store` is set.
    pub store_opts: StoreOptions,
    /// Replicate the registration journal to follower daemons
    /// ([`crate::replica::spawn_replica`]). Only consulted when `store` is
    /// set. The service name the followers must host is `fs`.
    pub replication: Option<ReplicationConfig>,
    /// Directory-query (`ListServers`/`ListClusters`) throttle: sustained
    /// queries per second. Queries over the budget are answered
    /// [`Response::Overloaded`] so a scanning client cannot starve
    /// registrations and heartbeats. Retunable at runtime via
    /// [`FsHandle::query_bucket`]. Federation-internal frames
    /// (`Gossip`/`FedQuery`) are exempt.
    pub query_rate: f64,
    /// Directory-query burst capacity (tokens banked while idle).
    pub query_burst: f64,
    /// Run this FS as one shard of a federated directory
    /// ([`crate::federation`]). `None` keeps the single-process behaviour.
    pub federation: Option<FederationOptions>,
}

impl Default for FsOptions {
    fn default() -> Self {
        FsOptions {
            serve: ServeOptions::default(),
            store: None,
            store_opts: StoreOptions {
                service: "fs".into(),
                ..StoreOptions::default()
            },
            replication: None,
            // Generous: far above anything the test suite or a sane client
            // generates, low enough to cap a runaway scanner.
            query_rate: 1000.0,
            query_burst: 2000.0,
            federation: None,
        }
    }
}

/// A running FS service.
pub struct FsHandle {
    /// The TCP service (address, shutdown).
    pub service: ServiceHandle,
    /// The shared server state (inspectable by tests/tools).
    pub state: Arc<Mutex<FaucetsServer>>,
    /// The registration journal, when durability is enabled — single-node
    /// or replicated per [`FsOptions::replication`].
    pub store: Option<Journal<DirJournal>>,
    /// What recovery found on startup, when durability is enabled.
    pub recovery: Option<RecoveryReport>,
    /// The directory-query throttle (live `set_rate`/`set_burst` knobs).
    pub query_bucket: Arc<TokenBucket>,
    /// The federation runtime, when this FS is a shard (ring/membership
    /// readouts for tests and experiments).
    pub federation: Option<Arc<Federation>>,
}

impl FsHandle {
    /// Graceful stop: silence the federation gossip (if any), then shut
    /// the TCP service down and wait for its workers to exit. (The
    /// `Drop` impl below makes `FsHandle` a guard type, which also means
    /// callers can no longer move `service` out to call
    /// [`ServiceHandle::shutdown`] directly — this is the replacement.)
    pub fn shutdown(self) {
        drop(self);
    }
}

impl Drop for FsHandle {
    fn drop(&mut self) {
        // Stop gossiping before the listener goes away: a killed shard must
        // fall silent so its peers' failure detectors grade it dead.
        if let Some(fed) = &self.federation {
            fed.stop();
        }
    }
}

/// Spawn the FS on `addr` (use port 0 to pick a free port).
pub fn spawn_fs(addr: &str, clock: Clock, seed: u64) -> io::Result<FsHandle> {
    spawn_fs_with(addr, clock, seed, ServeOptions::default())
}

/// [`spawn_fs`], with explicit timeouts and optional fault injection on
/// the service side (no durability; kept for existing callers).
pub fn spawn_fs_with(
    addr: &str,
    clock: Clock,
    seed: u64,
    opts: ServeOptions,
) -> io::Result<FsHandle> {
    spawn_fs_durable(
        addr,
        clock,
        seed,
        FsOptions {
            serve: opts,
            ..FsOptions::default()
        },
    )
}

/// Evictions are re-derivable (a stale registration restored after a crash
/// is graded dead and swept on the next request), so journaling them only
/// compacts the journal and must never NACK the request that noticed them.
fn journal_evictions(store: &Option<Journal<DirJournal>>, evicted: &[ClusterId]) {
    if let Some(store) = store {
        for cluster in evicted {
            let _ = store.commit(&DirRecord::Evict { cluster: *cluster });
        }
    }
}

/// Everything one FS request handler needs, shared across worker threads.
/// Splitting this out of the serve closure is what lets the federated
/// paths take and *release* the state lock around network hops (scatters
/// happen with no lock held).
struct FsCore {
    state: Arc<Mutex<FaucetsServer>>,
    rng: Arc<Mutex<StdRng>>,
    journal: Option<Journal<DirJournal>>,
    clock: Clock,
    bucket: Arc<TokenBucket>,
    fed: Option<Arc<Federation>>,
    m_throttled: Counter,
    g_dir_size: Gauge,
}

impl FsCore {
    /// Publish this shard's directory size: the dashboard gauge, and (when
    /// federated) the load digest piggybacked on gossip.
    fn publish_dir_size(&self, n: usize) {
        self.g_dir_size.set(n as f64);
        if let Some(fed) = &self.fed {
            fed.set_local_load(n as u64);
        }
    }

    /// Verify a token: locally first, then (federated only) by asking the
    /// peers — accounts are shard-local, so a token minted by another shard
    /// is only verifiable there.
    fn verify_federated(&self, token: &SessionToken, now: SimTime) -> Result<UserId, Response> {
        let local = self.state.lock().verify_token(token, now);
        match local {
            Ok(user) => Ok(user),
            Err(e) => match &self.fed {
                Some(fed) => match fed.scatter_verify(token) {
                    Response::Verified { user } => Ok(user),
                    _ => Err(Response::Error(e.to_string())),
                },
                None => Err(Response::Error(e.to_string())),
            },
        }
    }

    /// This shard's matching servers for a QoS contract (sweeps and
    /// journals evictions as a side effect, like the pre-federation path).
    fn local_listings(&self, qos: &QosContract, now: SimTime) -> Vec<ServerListing> {
        let mut s = self.state.lock();
        let evicted = s.sweep_dead(now);
        journal_evictions(&self.journal, &evicted);
        let level = s.filter_level;
        let ids = s.directory.candidates(qos, level, now);
        let listings = ids
            .iter()
            .filter_map(|c| {
                s.directory.get(*c).map(|e| ServerListing {
                    info: e.info.clone(),
                    status: e.status,
                })
            })
            .collect();
        self.publish_dir_size(s.directory.len());
        listings
    }

    /// This shard's directory rows, stamped with shard name + ring epoch
    /// when federated.
    fn local_rows(&self, now: SimTime) -> Vec<faucets_core::directory::ClusterRow> {
        let mut rows = self.state.lock().directory.rows(now);
        if let Some(fed) = &self.fed {
            let epoch = fed.ring_epoch();
            for r in &mut rows {
                r.shard = Some(fed.name().to_string());
                r.ring_epoch = epoch;
            }
        }
        rows
    }

    /// Answer a peer shard's [`FedQuery`] from local state only (never
    /// re-scatter — see the module docs on bounded forwarding depth).
    fn handle_fed_query(&self, query: &FedQuery) -> Response {
        let now = self.clock.now();
        match query {
            FedQuery::Match { qos } => Response::Servers(self.local_listings(qos, now)),
            FedQuery::Rows => Response::Clusters(self.local_rows(now)),
            FedQuery::Verify { token } => match self.state.lock().verify_token(token, now) {
                Ok(user) => Response::Verified { user },
                Err(e) => Response::Error(e.to_string()),
            },
        }
    }

    fn handle(&self, req: Request) -> Response {
        // Shard-internal frames first: exempt from the client query
        // throttle, and meaningless without a federation.
        if let Some(fed) = &self.fed {
            match &req {
                Request::Gossip { view, .. } => return fed.handle_gossip(view),
                Request::FedQuery { query, .. } => return self.handle_fed_query(query),
                // Ownership routing: registrations and heartbeats belong to
                // the ring owner's shard (and its journal).
                Request::RegisterCluster { info, .. } => {
                    if let Some((shard, addr)) = fed.forward_addr(info.cluster) {
                        return fed.forward(&shard, addr, &req);
                    }
                }
                Request::Heartbeat { cluster, .. } => {
                    if let Some((shard, addr)) = fed.forward_addr(*cluster) {
                        return fed.forward(&shard, addr, &req);
                    }
                }
                _ => {}
            }
        }
        // Directory queries are throttled before touching the lock, so a
        // scanning client cannot starve registrations and heartbeats.
        if matches!(
            req,
            Request::ListServers { .. } | Request::ListClusters { .. }
        ) && !self.bucket.try_admit()
        {
            self.m_throttled.inc();
            return Response::Overloaded { retry_after_ms: 25 };
        }
        let now = self.clock.now();
        match req {
            Request::VerifyToken { token } => match self.verify_federated(&token, now) {
                Ok(user) => Response::Verified { user },
                Err(resp) => resp,
            },
            Request::ListServers { token, qos } => {
                if let Err(resp) = self.verify_federated(&token, now) {
                    return resp;
                }
                let mut listings = self.local_listings(&qos, now);
                if let Some(fed) = &self.fed {
                    for resp in fed.scatter(FedQuery::Match { qos }) {
                        if let Response::Servers(more) = resp {
                            listings.extend(more);
                        }
                    }
                    // A server reachable via two shards during a ring
                    // transition must be listed once.
                    let mut seen = HashSet::new();
                    listings.retain(|l| seen.insert(l.info.cluster));
                }
                Response::Servers(listings)
            }
            Request::ListClusters { token } => {
                if let Err(resp) = self.verify_federated(&token, now) {
                    return resp;
                }
                let mut rows = self.local_rows(now);
                if let Some(fed) = &self.fed {
                    for resp in fed.scatter(FedQuery::Rows) {
                        if let Response::Clusters(more) = resp {
                            rows.extend(more);
                        }
                    }
                    // Local rows come first, so during a handoff the owning
                    // shard's stamp wins the dedupe.
                    let mut seen = HashSet::new();
                    rows.retain(|r| seen.insert(r.info.cluster));
                }
                Response::Clusters(rows)
            }
            other => self.handle_local(other, now),
        }
    }

    /// The single-shard request paths (identical to the pre-federation FS).
    fn handle_local(&self, req: Request, now: SimTime) -> Response {
        let mut s = self.state.lock();
        match req {
            Request::CreateUser { user, password } => {
                match s.create_user(&user, &password, &mut *self.rng.lock()) {
                    Ok(id) => Response::Verified { user: id },
                    Err(e) => Response::Error(e.to_string()),
                }
            }
            Request::Login { user, password } => {
                match s.login(&user, &password, now, &mut *self.rng.lock()) {
                    Ok((id, token)) => Response::Session { user: id, token },
                    Err(e) => Response::Error(e.to_string()),
                }
            }
            Request::RegisterCluster { info, apps } => {
                // Journal first: `Ok` must mean the registration survives a
                // crash. On a store failure the request is NACKed and the
                // in-memory directory is left untouched.
                if let Some(store) = &self.journal {
                    if let Err(e) = store.commit(&DirRecord::Register {
                        info: info.clone(),
                        apps: apps.clone(),
                        at: now,
                    }) {
                        return Response::Error(format!("registration not durable: {e}"));
                    }
                }
                s.register_cluster(info, apps, now);
                self.publish_dir_size(s.directory.len());
                Response::Ok
            }
            Request::Heartbeat { cluster, status } => {
                // Sweep explicitly (rather than inside `heartbeat`) so the
                // evicted ids can be journaled.
                let evicted = s.sweep_dead(now);
                journal_evictions(&self.journal, &evicted);
                let known = s.heartbeat(cluster, status, now);
                self.publish_dir_size(s.directory.len());
                if known {
                    Response::Ok
                } else {
                    Response::Error(format!("unknown cluster {cluster}"))
                }
            }
            other => Response::Error(format!("FS cannot handle {other:?}")),
        }
    }
}

/// [`spawn_fs`], with a durable registration journal: registrations are
/// journaled before they are acknowledged, and replayed on restart.
pub fn spawn_fs_durable(
    addr: &str,
    clock: Clock,
    seed: u64,
    opts: FsOptions,
) -> io::Result<FsHandle> {
    let state = Arc::new(Mutex::new(FaucetsServer::with_defaults()));
    let rng = Arc::new(Mutex::new(StdRng::seed_from_u64(seed)));

    // Recover the journal and replay registrations before taking traffic.
    let (store, recovery) = match &opts.store {
        Some(dir) => {
            let (store, report) = Journal::open(
                dir,
                DirJournal::default(),
                "fs",
                opts.store_opts.clone(),
                opts.replication.as_ref(),
            )
            .map_err(io::Error::other)?;
            {
                let mut s = state.lock();
                store.read(|j| {
                    for row in &j.rows {
                        s.register_cluster(row.info.clone(), row.apps.clone(), row.last_heard);
                    }
                });
            }
            (Some(store), Some(report))
        }
        None => (None, None),
    };

    let federation = opts
        .federation
        .clone()
        .map(|f| Arc::new(Federation::new(f)));
    let shard_label = federation
        .as_ref()
        .map(|f| f.name().to_string())
        .unwrap_or_else(|| "fs".into());
    let reg = faucets_telemetry::global();
    let query_bucket = Arc::new(TokenBucket::new(opts.query_rate, opts.query_burst));
    let core = Arc::new(FsCore {
        state: Arc::clone(&state),
        rng,
        journal: store.clone(),
        clock,
        bucket: Arc::clone(&query_bucket),
        fed: federation.clone(),
        m_throttled: reg.counter("fs_query_throttled_total", &[("shard", &shard_label)]),
        g_dir_size: reg.gauge("fs_directory_size", &[("shard", &shard_label)]),
    });
    let service = serve_with(addr, "fs", opts.serve, move |req| core.handle(req))?;
    if let Some(fed) = &federation {
        // The bound address is only known now (port 0 picks one): fix the
        // advertised self entry, then start gossiping.
        fed.activate(service.addr);
    }

    Ok(FsHandle {
        service,
        state,
        store,
        recovery,
        query_bucket,
        federation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::call;
    use faucets_core::directory::{ServerInfo, ServerStatus};
    use faucets_core::ids::ClusterId;
    use faucets_core::qos::QosBuilder;

    fn info(id: u64) -> ServerInfo {
        ServerInfo {
            cluster: ClusterId(id),
            name: format!("cs{id}"),
            total_pes: 64,
            mem_per_pe_mb: 1024,
            cpu_type: "x86-64".into(),
            flops_per_pe_sec: 1.0,
            fd_addr: "127.0.0.1".into(),
            fd_port: 1,
            replicas: vec![],
        }
    }

    #[test]
    fn account_login_verify_flow() {
        let fs = spawn_fs("127.0.0.1:0", Clock::realtime(), 1).unwrap();
        let addr = fs.service.addr;
        let r = call(
            addr,
            &Request::CreateUser {
                user: "alice".into(),
                password: "pw".into(),
            },
        )
        .unwrap();
        assert!(matches!(r, Response::Verified { .. }));
        // Wrong password fails.
        let r = call(
            addr,
            &Request::Login {
                user: "alice".into(),
                password: "xx".into(),
            },
        )
        .unwrap();
        assert!(matches!(r, Response::Error(_)));
        // Correct login mints a token the FD can verify (the §2.2 re-check).
        let Response::Session { user, token } = call(
            addr,
            &Request::Login {
                user: "alice".into(),
                password: "pw".into(),
            },
        )
        .unwrap() else {
            panic!("expected session");
        };
        let r = call(addr, &Request::VerifyToken { token }).unwrap();
        assert_eq!(r, Response::Verified { user });
    }

    #[test]
    fn registration_and_matching_over_wire() {
        let fs = spawn_fs("127.0.0.1:0", Clock::realtime(), 2).unwrap();
        let addr = fs.service.addr;
        call(
            addr,
            &Request::CreateUser {
                user: "u".into(),
                password: "p".into(),
            },
        )
        .unwrap();
        let Response::Session { token, .. } = call(
            addr,
            &Request::Login {
                user: "u".into(),
                password: "p".into(),
            },
        )
        .unwrap() else {
            panic!()
        };
        call(
            addr,
            &Request::RegisterCluster {
                info: info(1),
                apps: vec!["namd".into()],
            },
        )
        .unwrap();
        call(
            addr,
            &Request::RegisterCluster {
                info: info(2),
                apps: vec!["cfd".into()],
            },
        )
        .unwrap();
        call(
            addr,
            &Request::Heartbeat {
                cluster: ClusterId(1),
                status: ServerStatus {
                    free_pes: 48,
                    queue_len: 2,
                    accepting: true,
                    utilization: 0.25,
                    running: 4,
                },
            },
        )
        .unwrap();

        let qos = QosBuilder::new("namd", 4, 16, 100.0).build().unwrap();
        let Response::Servers(servers) = call(
            addr,
            &Request::ListServers {
                token: token.clone(),
                qos,
            },
        )
        .unwrap() else {
            panic!("expected server list")
        };
        // Static filter: only cs1 exports namd — and the match response now
        // carries the load the last heartbeat reported.
        assert_eq!(servers.len(), 1);
        assert_eq!(servers[0].info.cluster, ClusterId(1));
        assert_eq!(servers[0].status.utilization, 0.25);
        assert_eq!(servers[0].status.running, 4);

        // The dashboard view lists every registered cluster, graded.
        let Response::Clusters(rows) = call(addr, &Request::ListClusters { token }).unwrap() else {
            panic!("expected cluster rows")
        };
        assert_eq!(rows.len(), 2);
        assert!(rows
            .iter()
            .any(|r| r.info.cluster == ClusterId(1) && r.status.queue_len == 2));
        // A single-process FS stamps no shard on its rows.
        assert!(rows.iter().all(|r| r.shard.is_none() && r.ring_epoch == 0));
    }

    #[test]
    fn cluster_listing_requires_valid_token() {
        let fs = spawn_fs("127.0.0.1:0", Clock::realtime(), 7).unwrap();
        let r = call(
            fs.service.addr,
            &Request::ListClusters {
                token: faucets_core::auth::SessionToken("bogus".into()),
            },
        )
        .unwrap();
        assert!(matches!(r, Response::Error(_)));
    }

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("faucets-fs-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn registration_survives_fs_restart() {
        let dir = scratch("restart");
        let opts = FsOptions {
            store: Some(dir.clone()),
            ..FsOptions::default()
        };
        let fs = spawn_fs_durable("127.0.0.1:0", Clock::realtime(), 4, opts.clone()).unwrap();
        let r = call(
            fs.service.addr,
            &Request::RegisterCluster {
                info: info(1),
                apps: vec!["namd".into()],
            },
        )
        .unwrap();
        assert_eq!(r, Response::Ok);
        drop(fs); // crash: no deregistration, nothing flushed beyond the WAL

        let fs = spawn_fs_durable("127.0.0.1:0", Clock::realtime(), 4, opts).unwrap();
        let report = fs.recovery.as_ref().expect("durable FS reports recovery");
        assert!(report.replayed_records >= 1, "report: {report:?}");
        let s = fs.state.lock();
        let e = s
            .directory
            .get(ClusterId(1))
            .expect("registration recovered");
        assert_eq!(e.info.name, "cs1");
        assert!(e.exported_apps.contains("namd"));
        drop(s);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unjournaled_registration_is_nacked() {
        use faucets_store::{StoreOptions, WriteFault};
        let dir = scratch("nack");
        let opts = FsOptions {
            store: Some(dir.clone()),
            store_opts: StoreOptions {
                service: "fs".into(),
                fault: Some(std::sync::Arc::new(|_: &[u8]| WriteFault::Fail)),
                ..StoreOptions::default()
            },
            ..FsOptions::default()
        };
        let fs = spawn_fs_durable("127.0.0.1:0", Clock::realtime(), 5, opts).unwrap();
        let r = call(
            fs.service.addr,
            &Request::RegisterCluster {
                info: info(1),
                apps: vec!["namd".into()],
            },
        )
        .unwrap();
        // The append failed, so the client is NACKed and the directory does
        // NOT list the cluster — "registered" always means "durable".
        assert!(matches!(r, Response::Error(_)), "got {r:?}");
        assert!(fs.state.lock().directory.get(ClusterId(1)).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn directory_queries_throttle_but_heartbeats_do_not() {
        let fs = spawn_fs("127.0.0.1:0", Clock::realtime(), 8).unwrap();
        call(
            fs.service.addr,
            &Request::RegisterCluster {
                info: info(1),
                apps: vec!["namd".into()],
            },
        )
        .unwrap();
        // Choke the query bucket at runtime: zero refill, zero capacity.
        fs.query_bucket.set_rate(0.0);
        fs.query_bucket.set_burst(0.0);
        let r = call(
            fs.service.addr,
            &Request::ListClusters {
                token: faucets_core::auth::SessionToken("x".into()),
            },
        )
        .unwrap();
        assert!(matches!(r, Response::Overloaded { .. }), "got {r:?}");
        // Heartbeats and registrations are exempt from the query throttle.
        let r = call(
            fs.service.addr,
            &Request::Heartbeat {
                cluster: ClusterId(1),
                status: ServerStatus::default(),
            },
        )
        .unwrap();
        assert_eq!(r, Response::Ok);
    }

    #[test]
    fn unknown_heartbeat_is_error() {
        let fs = spawn_fs("127.0.0.1:0", Clock::realtime(), 3).unwrap();
        let r = call(
            fs.service.addr,
            &Request::Heartbeat {
                cluster: ClusterId(9),
                status: ServerStatus::default(),
            },
        )
        .unwrap();
        assert!(matches!(r, Response::Error(_)));
    }

    #[test]
    fn gossip_frames_are_rejected_without_federation() {
        let fs = spawn_fs("127.0.0.1:0", Clock::realtime(), 9).unwrap();
        let r = call(
            fs.service.addr,
            &Request::FedQuery {
                from: "stranger".into(),
                query: FedQuery::Rows,
            },
        )
        .unwrap();
        assert!(matches!(r, Response::Error(_)), "got {r:?}");
    }
}
