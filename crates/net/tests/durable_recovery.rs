//! E21 satellite: a *simultaneous* FS + FD crash mid-negotiation.
//!
//! The client wins an award, then both the Central Server and the daemon
//! die before the job finishes. Each restarts from its own durable store:
//! the FS directory comes back from the registration journal (no
//! re-registration needed — the daemon is still down when we check), the
//! FD resubmits the journaled contract to its scheduler, and the job runs
//! to completion. Sessions are in-memory by design, so the client logs in
//! again — but the *award* it was acknowledged is never lost.

use faucets_core::daemon::FaucetsDaemon;
use faucets_core::ids::ClusterId;
use faucets_core::money::Money;
use faucets_core::qos::{PayoffFn, QosBuilder};
use faucets_net::fd::{spawn_fd_with, FdHandle, FdOptions};
use faucets_net::fs::{spawn_fs_durable, FsOptions};
use faucets_net::prelude::*;
use faucets_sched::adaptive::ResizeCostModel;
use faucets_sched::cluster::Cluster;
use faucets_sched::equipartition::Equipartition;
use faucets_sched::machine::MachineSpec;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Duration;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("faucets-durable-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spawn_daemon(
    store: Option<PathBuf>,
    fs: SocketAddr,
    aspect: SocketAddr,
    clock: Clock,
) -> FdHandle {
    let machine = MachineSpec::commodity(ClusterId(1), "turing", 64);
    let daemon = FaucetsDaemon::new(
        machine.server_info("127.0.0.1", 0),
        ["namd".to_string()],
        Box::new(faucets_core::market::Baseline),
        Money::from_units_f64(0.01),
    );
    let cluster = Cluster::new(machine, Box::new(Equipartition), ResizeCostModel::default());
    spawn_fd_with(
        "127.0.0.1:0",
        daemon,
        cluster,
        fs,
        aspect,
        clock,
        FdOptions {
            store,
            ..FdOptions::default()
        },
    )
    .expect("FD")
}

fn durable_fs(addr: &str, clock: Clock, store: PathBuf) -> faucets_net::fs::FsHandle {
    spawn_fs_durable(
        addr,
        clock,
        61,
        FsOptions {
            store: Some(store),
            ..FsOptions::default()
        },
    )
    .expect("FS")
}

#[test]
fn award_survives_fs_and_fd_restart() {
    let clock = Clock::new(2_000.0);
    let fs_store = scratch("fs");
    let fd_store = scratch("fd");

    let fs = durable_fs("127.0.0.1:0", clock.clone(), fs_store.clone());
    let fs_addr = fs.service.addr;
    let aspect = spawn_appspector("127.0.0.1:0", fs_addr, 16).unwrap();
    let fd = spawn_daemon(
        Some(fd_store.clone()),
        fs_addr,
        aspect.service.addr,
        clock.clone(),
    );

    let mut client =
        FaucetsClient::register(fs_addr, aspect.service.addr, clock.clone(), "erin", "pw").unwrap();
    client.retry = RetryPolicy::standard(61);

    // ~7200 simulated seconds of work: the double crash lands mid-run.
    let qos = QosBuilder::new("namd", 8, 32, 64.0 * 3_600.0)
        .efficiency(0.95, 0.8)
        .adaptive()
        .payoff(PayoffFn::hard_only(
            clock
                .now()
                .saturating_add(faucets_sim::time::SimDuration::from_hours(24)),
            Money::from_units(100),
            Money::from_units(10),
        ))
        .build()
        .unwrap();
    let sub = client
        .submit(qos, &[("in.dat".into(), vec![0u8; 64])])
        .expect("placed");
    assert_eq!(fd.active_contracts(), 1, "award acknowledged");

    // Both Figure-1 services die. Nothing deregisters, nothing says
    // goodbye; only the two journal directories survive.
    fd.kill();
    drop(fs);

    // The FS restarts on the SAME port (so the AppSpector's verification
    // calls keep working) from its registration journal. The daemon is
    // still down, so the directory entry it finds can only have come from
    // the journal.
    let fs2 = durable_fs(&fs_addr.to_string(), clock.clone(), fs_store.clone());
    let report = fs2.recovery.as_ref().expect("durable FS");
    assert!(
        report.replayed_records >= 1 || report.snapshot_loaded,
        "recovery found the journaled registration: {report:?}"
    );
    assert!(
        fs2.state.lock().directory.get(ClusterId(1)).is_some(),
        "cluster registration survived the FS restart without re-registration"
    );

    // The FD restarts from its contract journal and resumes the award.
    let fd2 = spawn_daemon(
        Some(fd_store.clone()),
        fs_addr,
        aspect.service.addr,
        clock.clone(),
    );
    assert_eq!(
        fd2.active_contracts(),
        1,
        "accepted contract restored from the WAL"
    );

    // Sessions are in-memory by design: the old token died with the FS.
    // The client logs in afresh and watches the SAME job id complete.
    let mut client2 =
        FaucetsClient::register(fs_addr, aspect.service.addr, clock.clone(), "erin", "pw")
            .expect("re-login after FS restart");
    let snap = client2
        .wait(sub.job, Duration::from_secs(40))
        .expect("the acknowledged award completes despite the double crash");
    assert!(snap.completed);
    assert_eq!(
        fd2.active_contracts(),
        0,
        "contract pruned after completion"
    );

    fd2.shutdown();
    let _ = std::fs::remove_dir_all(&fs_store);
    let _ = std::fs::remove_dir_all(&fd_store);
}
