//! Connection-pool integration tests: real sockets, fixed seeds.
//!
//! Covers the three pool behaviours the unit tests can't reach end-to-end:
//! frame faults poisoning a warm socket (and the next call recovering on a
//! fresh one), per-call connection churn staying bounded by the live
//! client count, and a many-client stress run where the shared pool keeps
//! the hit rate high and every counter visible through the server's own
//! `Metrics` endpoint.

use faucets_net::prelude::*;
use faucets_telemetry::metrics::Registry;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A truncated or garbled frame on a pooled connection must poison the
/// warm socket — the stream may be desynchronised, and the next caller
/// must not be paid the previous caller's reply. The retry loop then
/// checks a *fresh* socket out of the pool and the call succeeds.
#[test]
fn faulty_frames_poison_the_pooled_socket_and_calls_recover() {
    let h = serve_with(
        "127.0.0.1:0",
        "chaos",
        ServeOptions {
            // Short read deadline so a truncated request releases the
            // worker (and closes the wedged connection) quickly.
            timeouts: Timeouts::both(Duration::from_millis(300)),
            ..ServeOptions::default()
        },
        |_| Response::Ok,
    )
    .unwrap();

    let pool = Arc::new(ConnPool::new("chaos", PoolConfig::default()));
    let reg = Arc::new(Registry::new());
    let plan = Arc::new(FaultPlan::new(
        0xC0FFEE,
        FaultConfig {
            truncate: 0.2,
            garble: 0.3,
            ..FaultConfig::none()
        },
    ));
    let opts = CallOptions {
        pool: Some(Arc::clone(&pool)),
        registry: Some(Arc::clone(&reg)),
        faults: Some(Arc::clone(&plan)),
        timeouts: Timeouts::both(Duration::from_millis(500)),
        retry: RetryPolicy {
            attempts: 8,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(20),
            jitter: 0.5,
            seed: 7,
        },
        ..CallOptions::default()
    };

    let req = Request::VerifyToken {
        token: faucets_core::auth::SessionToken("t".into()),
    };
    let mut ok = 0;
    for _ in 0..40 {
        if matches!(call_with(h.addr, &req, &opts), Ok(Response::Ok)) {
            ok += 1;
        }
    }

    let snap = reg.snapshot();
    let poisoned = snap.counter_sum("net_pool_poisoned_total", &[("pool", "chaos")]);
    let misses = snap.counter_sum("net_pool_misses_total", &[("pool", "chaos")]);
    let hits = snap.counter_sum("net_pool_hits_total", &[("pool", "chaos")]);
    assert!(ok >= 20, "retries recover most calls under faults: {ok}/40");
    assert!(
        poisoned >= 1,
        "at least one faulted frame poisoned a socket"
    );
    assert!(
        misses >= poisoned,
        "every poisoned socket was replaced by a fresh connect \
         (misses {misses} < poisoned {poisoned})"
    );
    assert!(hits >= 1, "clean stretches reused the warm socket");
    assert!(
        pool.open_connections() <= 1,
        "poisoned sockets were closed, not leaked: {} open",
        pool.open_connections()
    );
    h.shutdown();
}

/// Per-call connections from many concurrent clients: the reactor keeps
/// open connections bounded by the live client count (connections are
/// parked state, not threads, so churn never accumulates handles), the
/// gauge drains back to zero, and shutdown stays prompt (no poll loop, no
/// per-connection threads to orphan).
#[test]
fn connection_churn_keeps_handles_bounded() {
    const WORKERS: usize = 4;
    const CLIENTS: usize = 8;
    const CALLS: usize = 20;
    let server_reg = Arc::new(Registry::new());
    let h = serve_with(
        "127.0.0.1:0",
        "churn",
        ServeOptions {
            registry: Some(Arc::clone(&server_reg)),
            workers: WORKERS,
            ..ServeOptions::default()
        },
        |_| Response::Ok,
    )
    .unwrap();

    let addr = h.addr;
    let max_open = std::thread::scope(|s| {
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let clients: Vec<_> = (0..CLIENTS)
            .map(|_| {
                s.spawn(move || {
                    let req = Request::VerifyToken {
                        token: faucets_core::auth::SessionToken("t".into()),
                    };
                    for _ in 0..CALLS {
                        // No pool: every call opens and closes its own socket.
                        call(addr, &req).expect("per-call connection served");
                    }
                })
            })
            .collect();
        let reg = Arc::clone(&server_reg);
        let flag = Arc::clone(&done);
        let sampler = s.spawn(move || {
            let mut max = 0.0f64;
            while !flag.load(std::sync::atomic::Ordering::Relaxed) {
                let open = reg
                    .snapshot()
                    .gauge_sum("net_open_conns", &[("service", "churn")]);
                max = max.max(open);
                std::thread::sleep(Duration::from_millis(1));
            }
            max
        });
        for c in clients {
            c.join().unwrap();
        }
        done.store(true, std::sync::atomic::Ordering::Relaxed);
        sampler.join().unwrap()
    });

    // Each client runs one call at a time on its own socket, so the
    // reactor can never be tracking more connections than live clients
    // (the old worker-pool serve path bounded this at WORKERS; the
    // reactor holds connections as parked state instead, bounded by the
    // sockets that actually exist).
    assert!(
        max_open <= CLIENTS as f64,
        "live connection handles never exceeded the client count: \
         saw {max_open}, clients {CLIENTS}"
    );
    let snap = server_reg.snapshot();
    assert_eq!(
        snap.counter_sum("net_conns_accepted_total", &[("service", "churn")]),
        (CLIENTS * CALLS) as u64,
        "every per-call connection was accepted exactly once"
    );
    // The gauge drains once the churn stops — no leaked handles.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let open = server_reg
            .snapshot()
            .gauge_sum("net_open_conns", &[("service", "churn")]);
        if open == 0.0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "open-connection gauge never drained: {open}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // Blocking accept must not stall shutdown: the stop path wakes it.
    let t = Instant::now();
    h.shutdown();
    assert!(
        t.elapsed() < Duration::from_secs(2),
        "shutdown stayed prompt: {:?}",
        t.elapsed()
    );
}

/// Sixteen clients hammer one FS through a shared pool: zero transport
/// errors, a hit rate over 0.9, bounded open connections — and because
/// everything runs on the process-global registry, the pool counters are
/// visible through the FS's own `Metrics` endpoint, exactly as an
/// operator would see them.
#[test]
fn sixteen_pooled_clients_stress_one_fs() {
    const CLIENTS: usize = 16;
    const CALLS: usize = 100;
    let fs = spawn_fs("127.0.0.1:0", Clock::realtime(), 11).unwrap();
    call(
        fs.service.addr,
        &Request::CreateUser {
            user: "stress".into(),
            password: "pw".into(),
        },
    )
    .unwrap();
    let Response::Session { token, .. } = call(
        fs.service.addr,
        &Request::Login {
            user: "stress".into(),
            password: "pw".into(),
        },
    )
    .unwrap() else {
        panic!("expected session");
    };

    // One pool shared by all sixteen clients; the idle cap is raised to
    // the client count so the steady state keeps one warm socket each.
    let pool = Arc::new(ConnPool::new(
        "stress",
        PoolConfig {
            max_idle_per_peer: CLIENTS,
            ..PoolConfig::default()
        },
    ));
    let opts = CallOptions {
        pool: Some(Arc::clone(&pool)),
        ..CallOptions::default()
    };

    let addr = fs.service.addr;
    std::thread::scope(|s| {
        for _ in 0..CLIENTS {
            let opts = opts.clone();
            let token = token.clone();
            s.spawn(move || {
                for i in 0..CALLS {
                    let r = call_with(
                        addr,
                        &Request::VerifyToken {
                            token: token.clone(),
                        },
                        &opts,
                    )
                    .unwrap_or_else(|e| panic!("call {i} failed: {e}"));
                    assert!(matches!(r, Response::Verified { .. }), "call {i} got {r:?}");
                }
            });
        }
    });

    // The pool counters ran on the global registry, so they surface
    // through the server's Metrics endpoint like any other metric.
    let Response::Metrics(snap) = call(addr, &Request::Metrics).unwrap() else {
        panic!("expected metrics");
    };
    let hits = snap.counter_sum("net_pool_hits_total", &[("pool", "stress")]);
    let misses = snap.counter_sum("net_pool_misses_total", &[("pool", "stress")]);
    assert_eq!(
        hits + misses,
        (CLIENTS * CALLS) as u64,
        "every call checked out of the pool"
    );
    let hit_rate = hits as f64 / (hits + misses) as f64;
    assert!(
        hit_rate > 0.9,
        "warm sockets served the steady state: hit rate {hit_rate:.3} \
         ({hits} hits / {misses} misses)"
    );
    assert!(
        pool.open_connections() <= CLIENTS,
        "open connections bounded by the client count: {}",
        pool.open_connections()
    );
    assert_eq!(
        snap.counter_sum("net_pool_poisoned_total", &[("pool", "stress")]),
        0,
        "a healthy service never poisons"
    );
    fs.shutdown();
}
