//! Property tests for the overload-protection primitives behind E22:
//! the token bucket's admission bound and the circuit breaker's state
//! machine, both driven with injected clocks so every case is
//! deterministic.

use faucets_net::overload::{breaker_state, BreakerConfig, CircuitBreaker, TokenBucket};
use proptest::prelude::*;
use std::time::{Duration, Instant};

proptest! {
    /// The defining property of a token bucket: over *any* schedule of
    /// admission attempts, the number admitted never exceeds
    /// `rate * elapsed + burst` (the bucket starts full, hence `+ burst`).
    #[test]
    fn token_bucket_never_admits_more_than_rate_times_elapsed_plus_burst(
        rate in 0.0f64..500.0,
        burst in 0.0f64..50.0,
        steps in prop::collection::vec(0u64..50_000, 1..200),
    ) {
        let bucket = TokenBucket::new(rate, burst);
        let mut now = 0u64;
        let mut admitted = 0u64;
        for dt in &steps {
            now += dt;
            if bucket.try_admit_at(now) {
                admitted += 1;
            }
        }
        let elapsed = now as f64 / 1e6;
        prop_assert!(
            admitted as f64 <= rate * elapsed + burst + 1e-6,
            "admitted {} > rate {} * {}s + burst {}",
            admitted, rate, elapsed, burst
        );
    }

    /// A clock running backwards is clamped: it refills nothing, so a
    /// drained bucket stays drained no matter how far back time jumps.
    #[test]
    fn token_bucket_backwards_clock_mints_no_tokens(
        rate in 0.0f64..1000.0,
        earlier in prop::collection::vec(0u64..1_000_000, 1..50),
    ) {
        let bucket = TokenBucket::new(rate, 1.0);
        prop_assert!(bucket.try_admit_at(1_000_000)); // drain the one banked token
        for t in &earlier {
            prop_assert!(!bucket.try_admit_at(*t), "minted a token at rewound t={t}");
        }
    }

    /// Whatever the breaker's history — failures, probes, time passing —
    /// a single success closes it and calls flow again. This is the
    /// recovery half of the chaos invariant: one good probe is enough.
    #[test]
    fn breaker_any_history_then_one_success_closes(
        ops in prop::collection::vec(0u8..3u8, 0..64),
    ) {
        let b = CircuitBreaker::new(BreakerConfig {
            failures_to_open: 3,
            cooldown: Duration::from_millis(100),
        });
        let mut t = Instant::now();
        for op in &ops {
            match op {
                0 => {
                    let _ = b.allow_at(t);
                }
                1 => {
                    let _ = b.on_failure_at(t);
                }
                _ => t += Duration::from_millis(37),
            }
        }
        b.on_success_at(t);
        prop_assert_eq!(b.state_name(), breaker_state::CLOSED);
        prop_assert!(b.allow_at(t).0);
    }

    /// A closed breaker tolerates exactly `failures_to_open - 1`
    /// consecutive failures; the next one trips it, and the cooldown then
    /// lets exactly one half-open probe through.
    #[test]
    fn breaker_opens_exactly_at_threshold(threshold in 1u32..8) {
        let cooldown = Duration::from_millis(50);
        let b = CircuitBreaker::new(BreakerConfig {
            failures_to_open: threshold,
            cooldown,
        });
        let t = Instant::now();
        for i in 1..threshold {
            prop_assert_eq!(b.on_failure_at(t), None, "opened early at failure {}", i);
            prop_assert!(b.allow_at(t).0);
        }
        prop_assert_eq!(b.on_failure_at(t), Some(breaker_state::OPEN));
        prop_assert!(!b.allow_at(t).0);
        let after = t + cooldown;
        let (ok, transition) = b.allow_at(after);
        prop_assert!(ok);
        prop_assert_eq!(transition, Some(breaker_state::HALF_OPEN));
        // Only one probe per cooldown window.
        prop_assert!(!b.allow_at(after).0);
    }
}
