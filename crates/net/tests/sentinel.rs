//! Sentinel end-to-end: automatic failover with nobody driving.
//!
//! The replication chaos suite (`tests/replication.rs`) proves the
//! *mechanism* — here the test harness deliberately does **not** elect,
//! fence, or promote anything. The sentinel must notice the kill through
//! missed lease renewals, run the quorum-gated election, fence the
//! corpse, promote the follower's journal, and respawn the FD — and
//! every acknowledged award must complete on the promoted primary.
//!
//! The companion tests pin the two ways a sentinel can be *wrong*:
//! promoting without quorum (dual-primary factory) and deposing a
//! healthy primary because the wall clock jumped.

use faucets_core::daemon::FaucetsDaemon;
use faucets_core::ids::ClusterId;
use faucets_core::money::Money;
use faucets_core::qos::{PayoffFn, QosBuilder};
use faucets_net::fd::{spawn_fd_with, FdHandle, FdOptions};
use faucets_net::prelude::*;
use faucets_net::replica::{spawn_replica, ReplicaHandle, ReplicaOptions};
use faucets_net::sentinel::{spawn_sentinel, SentinelOptions};
use faucets_sched::adaptive::ResizeCostModel;
use faucets_sched::cluster::Cluster;
use faucets_sched::equipartition::Equipartition;
use faucets_sched::machine::MachineSpec;
use faucets_store::ReplicationMode;
use parking_lot::Mutex;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("faucets-sentinel-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spawn_primary_fd(
    cluster_id: u64,
    store: PathBuf,
    replication: Option<ReplicationConfig>,
    fs: SocketAddr,
    aspect: SocketAddr,
    clock: Clock,
) -> FdHandle {
    let machine = MachineSpec::commodity(ClusterId(cluster_id), "turing", 64);
    let daemon = FaucetsDaemon::new(
        machine.server_info("127.0.0.1", 0),
        ["namd".to_string()],
        Box::new(faucets_core::market::Baseline),
        Money::from_units_f64(0.01),
    );
    let cluster = Cluster::new(machine, Box::new(Equipartition), ResizeCostModel::default());
    spawn_fd_with(
        "127.0.0.1:0",
        daemon,
        cluster,
        fs,
        aspect,
        clock,
        FdOptions {
            store: Some(store),
            replication,
            ..FdOptions::default()
        },
    )
    .expect("FD")
}

fn follower_daemon(service: &str, dir: PathBuf) -> ReplicaHandle {
    spawn_replica(
        "127.0.0.1:0",
        &[(service.to_string(), dir)],
        ReplicaOptions::default(),
    )
    .expect("replica daemon")
}

fn qos_for(clock: &Clock) -> faucets_core::qos::QosContract {
    QosBuilder::new("namd", 8, 32, 64.0 * 3_600.0)
        .efficiency(0.95, 0.8)
        .adaptive()
        .payoff(PayoffFn::hard_only(
            clock
                .now()
                .saturating_add(faucets_sim::time::SimDuration::from_hours(24)),
            Money::from_units(100),
            Money::from_units(10),
        ))
        .build()
        .unwrap()
}

fn fast_sentinel(service: &str) -> SentinelOptions {
    SentinelOptions {
        service: service.into(),
        lease_ttl: Duration::from_millis(400),
        probe_every: Duration::from_millis(40),
        call: CallOptions {
            retry: RetryPolicy::none(),
            ..CallOptions::default()
        },
        ..SentinelOptions::default()
    }
}

/// kill -9 the sync primary with no operator: the sentinel elects,
/// fences, promotes, and respawns; every acked award completes.
#[test]
fn sentinel_promotes_automatically_after_primary_kill() {
    let clock = Clock::new(2_000.0);
    let fd_store = scratch("auto-primary");
    let follower_store = scratch("auto-follower");
    const SVC: &str = "fd-1";

    let fs = spawn_fs("127.0.0.1:0", clock.clone(), 71).unwrap();
    let fs_addr = fs.service.addr;
    let aspect = spawn_appspector("127.0.0.1:0", fs_addr, 16).unwrap();
    let follower = follower_daemon(SVC, follower_store.clone());

    let fd = spawn_primary_fd(
        1,
        fd_store.clone(),
        Some(ReplicationConfig {
            followers: vec![follower.addr],
            mode: ReplicationMode::Sync,
            ..ReplicationConfig::default()
        }),
        fs_addr,
        aspect.service.addr,
        clock.clone(),
    );

    let mut client =
        FaucetsClient::register(fs_addr, aspect.service.addr, clock.clone(), "ana", "pw").unwrap();
    client.retry = RetryPolicy::standard(71);
    let mut acked = Vec::new();
    for i in 0..3 {
        let sub = client
            .submit(qos_for(&clock), &[("in.dat".into(), vec![i as u8; 32])])
            .expect("award acked");
        acked.push(sub.job);
    }

    // The promote callback is the only "operator": respawn the FD from
    // the released, promotion-prepared journal. The respawn re-registers
    // with the FS, flipping the directory row to the new address.
    let promoted: Arc<Mutex<Vec<FdHandle>>> = Arc::new(Mutex::new(Vec::new()));
    let promoted_cb = Arc::clone(&promoted);
    let (cb_fs, cb_as, cb_clock) = (fs_addr, aspect.service.addr, clock.clone());
    let sentinel = spawn_sentinel(
        fd.service.addr,
        vec![follower.addr],
        fast_sentinel(SVC),
        move |dir, _epoch| {
            let fd2 = spawn_primary_fd(1, dir, None, cb_fs, cb_as, cb_clock.clone());
            let addr = fd2.service.addr;
            promoted_cb.lock().push(fd2);
            Ok(addr)
        },
    )
    .unwrap();

    // Let the sentinel observe at least one healthy renewal, then kill.
    let warm = Instant::now() + Duration::from_secs(10);
    while Instant::now() < warm
        && faucets_telemetry::global()
            .snapshot()
            .counter_sum("sentinel_probes_total", &[("service", SVC)])
            < 2
    {
        std::thread::sleep(Duration::from_millis(3));
    }
    fd.kill();

    assert!(
        sentinel.await_failovers(1, Duration::from_secs(30)),
        "sentinel never completed an automatic failover"
    );
    let events = sentinel.events();
    assert_eq!(events.len(), 1);
    assert!(events[0].mttr > Duration::ZERO);
    assert_eq!(
        sentinel.primary(),
        events[0].to,
        "sentinel now trusts the promoted FD"
    );

    // Zero acked-award loss with nobody in the loop.
    for job in &acked {
        let snap = client
            .wait(*job, Duration::from_secs(40))
            .expect("acked award completes on the auto-promoted backup");
        assert!(snap.completed, "job {job:?} must complete after failover");
    }

    // One primary per epoch, in the sentinel's own reign log.
    let reigns = sentinel.reigns();
    for (i, &(epoch, addr)) in reigns.iter().enumerate() {
        assert!(
            !reigns[..i].iter().any(|&(e, a)| e == epoch && a != addr),
            "epoch {epoch} observed with two primaries: {reigns:?}"
        );
    }

    sentinel.shutdown();
    for fd2 in promoted.lock().drain(..) {
        fd2.shutdown();
    }
    follower.shutdown();
    let _ = std::fs::remove_dir_all(&fd_store);
    let _ = std::fs::remove_dir_all(&follower_store);
}

/// With the whole replica set unreachable the sentinel must abort the
/// election — promoting without quorum is how dual primaries are born.
#[test]
fn sentinel_aborts_election_short_of_quorum() {
    let clock = Clock::new(2_000.0);
    let fd_store = scratch("quorum-primary");
    let follower_store = scratch("quorum-follower");
    const SVC: &str = "fd-2";

    let fs = spawn_fs("127.0.0.1:0", clock.clone(), 72).unwrap();
    let aspect = spawn_appspector("127.0.0.1:0", fs.service.addr, 16).unwrap();
    let follower = follower_daemon(SVC, follower_store.clone());
    let fd = spawn_primary_fd(
        2,
        fd_store.clone(),
        Some(ReplicationConfig {
            followers: vec![follower.addr],
            mode: ReplicationMode::Sync,
            ..ReplicationConfig::default()
        }),
        fs.service.addr,
        aspect.service.addr,
        clock.clone(),
    );

    let sentinel = spawn_sentinel(
        fd.service.addr,
        vec![follower.addr],
        fast_sentinel(SVC),
        move |_dir, _epoch| {
            panic!("must not promote without quorum");
        },
    )
    .unwrap();

    // Kill BOTH: the primary stops renewing and the only replica cannot
    // answer the position probe — a total partition from the sentinel's
    // seat. It must keep aborting, never promote.
    fd.kill();
    follower.shutdown();
    let deadline = Instant::now() + Duration::from_secs(15);
    while Instant::now() < deadline
        && faucets_telemetry::global()
            .snapshot()
            .counter_sum("sentinel_aborted_elections_total", &[("service", SVC)])
            < 3
    {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        faucets_telemetry::global()
            .snapshot()
            .counter_sum("sentinel_aborted_elections_total", &[("service", SVC)])
            >= 3,
        "sentinel should repeatedly abort short-of-quorum elections"
    );
    assert!(sentinel.events().is_empty(), "no promotion without quorum");

    sentinel.shutdown();
    let _ = std::fs::remove_dir_all(&fd_store);
    let _ = std::fs::remove_dir_all(&follower_store);
}

/// Clock skew alone — either direction — must never depose a primary
/// that is still answering probes.
#[test]
fn clock_skew_does_not_depose_a_healthy_primary() {
    let clock = Clock::new(2_000.0);
    let fd_store = scratch("skew-primary");
    let follower_store = scratch("skew-follower");
    const SVC: &str = "fd-3";

    let fs = spawn_fs("127.0.0.1:0", clock.clone(), 73).unwrap();
    let aspect = spawn_appspector("127.0.0.1:0", fs.service.addr, 16).unwrap();
    let follower = follower_daemon(SVC, follower_store.clone());
    let fd = spawn_primary_fd(
        3,
        fd_store.clone(),
        Some(ReplicationConfig {
            followers: vec![follower.addr],
            mode: ReplicationMode::Sync,
            ..ReplicationConfig::default()
        }),
        fs.service.addr,
        aspect.service.addr,
        clock.clone(),
    );

    let opts = fast_sentinel(SVC);
    let skew = Arc::clone(&opts.skew_ms);
    let sentinel = spawn_sentinel(
        fd.service.addr,
        vec![follower.addr],
        opts,
        move |_dir, _epoch| {
            panic!("healthy primary must not be deposed by clock skew");
        },
    )
    .unwrap();

    let probes = || {
        faucets_telemetry::global()
            .snapshot()
            .counter_sum("sentinel_probes_total", &[("service", SVC)])
    };
    let await_probes = |n: u64| {
        let deadline = Instant::now() + Duration::from_secs(15);
        while Instant::now() < deadline && probes() < n {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(probes() >= n, "sentinel stopped probing");
    };

    // Healthy baseline, then a big forward jump, then a jump far behind:
    // several probe cycles under each regime, zero failovers throughout.
    await_probes(2);
    skew.store(3_600_000, Ordering::Relaxed); // +1 h
    let after_forward = probes() + 4;
    await_probes(after_forward);
    assert!(sentinel.events().is_empty(), "forward skew deposed primary");
    skew.store(-3_600_000, Ordering::Relaxed); // −1 h (clamped clock holds)
    let after_backward = probes() + 4;
    await_probes(after_backward);
    assert!(
        sentinel.events().is_empty(),
        "backward skew deposed primary"
    );

    sentinel.shutdown();
    fd.shutdown();
    follower.shutdown();
    let _ = std::fs::remove_dir_all(&fd_store);
    let _ = std::fs::remove_dir_all(&follower_store);
}
