//! Multiplexing correctness under arbitrary interleavings: whatever order
//! responses come back in — permuted, partially lost, or the connection
//! failing mid-flight — every completion reaches exactly the caller that
//! registered its `request_id`, or surfaces as a typed error. A crossed
//! wire (caller A paid caller B's reply) is the one catastrophic failure
//! mode of request pipelining, so it gets the property treatment, both on
//! the bare [`PendingMap`] and over real sockets with a permuted reply
//! schedule.

use faucets_net::pool::PendingMap;
use faucets_net::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Build the response payload only request `id` may legitimately receive.
fn payload_for(id: u64) -> Response {
    Response::Error(format!("payload-{id}"))
}

/// Derive a permutation of `0..n` from proptest-chosen swap indices, so
/// shrinking stays meaningful (fewer/smaller swaps → closer to identity).
fn permute(n: usize, swaps: &[(usize, usize)]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    for &(a, b) in swaps {
        order.swap(a % n, b % n);
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Complete registered requests in an arbitrary order: every waiter
    /// observes exactly its own payload, no matter the interleaving.
    #[test]
    fn out_of_order_completions_reach_their_registrants(
        n in 1usize..24,
        swaps in prop::collection::vec((0usize..24, 0usize..24), 0..48),
    ) {
        let map = Arc::new(PendingMap::new());
        let tickets: Vec<_> = (0..n as u64).map(|id| map.register(id)).collect();
        let order = permute(n, &swaps);

        let completer = {
            let map = Arc::clone(&map);
            std::thread::spawn(move || {
                for idx in order {
                    assert!(
                        map.complete(idx as u64, payload_for(idx as u64)),
                        "registered id {idx} must find its waiter"
                    );
                }
            })
        };
        for (id, ticket) in tickets.into_iter().enumerate() {
            let got = map
                .wait(ticket, Duration::from_secs(5))
                .expect("completed request must succeed");
            prop_assert_eq!(got, payload_for(id as u64), "crossed wire at id {}", id);
        }
        completer.join().unwrap();
        prop_assert!(map.is_empty(), "all slots consumed");
    }

    /// Complete only a subset, then fail the connection: completed
    /// requests get exactly their payload, the rest get a typed
    /// disconnect error — never silence, never someone else's bytes.
    #[test]
    fn partial_completion_then_failure_never_crosses_wires(
        n in 1usize..24,
        swaps in prop::collection::vec((0usize..24, 0usize..24), 0..48),
        keep in 0usize..24,
    ) {
        let map = Arc::new(PendingMap::new());
        let tickets: Vec<_> = (0..n as u64).map(|id| map.register(id)).collect();
        // An arbitrary subset (prefix of a permutation) completes before
        // the "connection" dies under everyone else.
        let order = permute(n, &swaps);
        let completed: Vec<usize> = order[..keep.min(n)].to_vec();
        for &idx in &completed {
            prop_assert!(map.complete(idx as u64, payload_for(idx as u64)));
        }
        map.fail_all("mux connection lost");

        for (id, ticket) in tickets.into_iter().enumerate() {
            match map.wait(ticket, Duration::from_secs(5)) {
                Ok(got) => {
                    prop_assert!(
                        completed.contains(&id),
                        "id {} succeeded without being completed", id
                    );
                    prop_assert_eq!(got, payload_for(id as u64), "crossed wire at id {}", id);
                }
                Err(e) => {
                    prop_assert!(
                        !completed.contains(&id),
                        "completed id {} surfaced an error: {}", id, e
                    );
                    prop_assert_eq!(
                        e.kind(),
                        std::io::ErrorKind::ConnectionAborted,
                        "failure is the typed disconnect"
                    );
                }
            }
        }
    }

    /// A late completion for an abandoned (timed-out) id is an orphan:
    /// `complete` reports no waiter, and the abandoned caller saw a typed
    /// timeout — not a stale or foreign payload.
    #[test]
    fn abandoned_ids_turn_late_replies_into_orphans(
        n in 1usize..16,
        abandon_mask in 0u32..65536,
    ) {
        let map = Arc::new(PendingMap::new());
        let tickets: Vec<_> = (0..n as u64).map(|id| map.register(id)).collect();
        let mut abandoned = Vec::new();
        for (id, ticket) in tickets.into_iter().enumerate() {
            if abandon_mask & (1u32 << id) != 0 {
                // Zero timeout: the caller gives up before any reply.
                let e = map.wait(ticket, Duration::ZERO).unwrap_err();
                prop_assert_eq!(e.kind(), std::io::ErrorKind::TimedOut);
                abandoned.push(id);
            } else {
                map.abandon(ticket.id());
                abandoned.push(id);
            }
        }
        for id in abandoned {
            prop_assert!(
                !map.complete(id as u64, payload_for(id as u64)),
                "late reply for abandoned id {} must be an orphan", id
            );
        }
        prop_assert!(map.is_empty());
    }
}

/// A ticket dropped without `wait` (caller panicked or bailed early)
/// deregisters its id immediately: the map does not leak the slot, and a
/// late reply for it is an orphan — never a mis-delivery.
#[test]
fn dropped_tickets_abandon_their_ids() {
    let map = Arc::new(PendingMap::new());
    let t1 = map.register(1);
    let t2 = map.register(2);
    assert_eq!(map.len(), 2);
    drop(t1);
    assert_eq!(map.len(), 1, "dropped ticket deregistered its id");
    assert!(
        !map.complete(1, payload_for(1)),
        "late reply for a dropped ticket is an orphan"
    );
    assert!(map.complete(2, payload_for(2)));
    let got = map.wait(t2, Duration::from_secs(1)).unwrap();
    assert_eq!(got, payload_for(2));
    assert!(map.is_empty());
}

/// End-to-end: a real server whose handler stalls each request by a
/// proptest-chosen amount, so replies come back in an adversarial order
/// over one shared mux socket — every batched caller still gets the
/// response to its own request.
#[test]
fn permuted_reply_schedules_match_batch_slots_over_real_sockets() {
    // Deterministic-seeded schedule sweep, kept short: three schedules of
    // sixteen stalls each (the proptest cases above cover the state
    // space; this pins the socket plumbing).
    for seed in [3u64, 17, 40] {
        let h = serve_with(
            "127.0.0.1:0",
            "permuted",
            ServeOptions::default(),
            move |req| {
                let Request::Login { user, .. } = req else {
                    return Response::Error("unexpected".into());
                };
                let n: u64 = user.trim_start_matches('u').parse().unwrap_or(0);
                // A seed-keyed stall permutes completion order vs arrival
                // order (requests run concurrently on the executor pool).
                let stall = (n * seed + seed) % 40;
                std::thread::sleep(Duration::from_millis(stall));
                Response::Error(format!("u{n}"))
            },
        )
        .unwrap();

        let mux = Arc::new(MuxPool::new(
            "permuted",
            MuxConfig {
                conns_per_peer: 1,
                ..MuxConfig::default()
            },
        ));
        let opts = CallOptions {
            mux: Some(mux),
            timeouts: Timeouts::both(Duration::from_secs(5)),
            retry: RetryPolicy::none(),
            ..CallOptions::default()
        };
        let reqs: Vec<Request> = (0..16)
            .map(|i| Request::Login {
                user: format!("u{i}"),
                password: String::new(),
            })
            .collect();
        let results = call_batch(h.addr, &reqs, &opts);
        for (i, r) in results.into_iter().enumerate() {
            match r.unwrap_or_else(|e| panic!("seed {seed} slot {i}: {e}")) {
                Response::Error(tag) => assert_eq!(
                    tag,
                    format!("u{i}"),
                    "seed {seed}: slot {i} was paid someone else's reply"
                ),
                other => panic!("seed {seed} slot {i}: unexpected {other:?}"),
            }
        }
        h.shutdown();
    }
}
