//! Replication chaos suite (extends E21's crash discipline to failover).
//!
//! The headline scenario kill-9s a sync-replicated FD mid-negotiation and
//! proves the acked-entry loss contract end to end: every award the client
//! was acknowledged completes on the backup promoted from the follower's
//! journal — zero acknowledged entries lost, no matter where the kill
//! lands. The companion tests cover epoch fencing of a deposed primary
//! over the wire and a lagging follower catching up through a snapshot
//! transfer.
//!
//! Determinism note: the kill deliberately races an in-flight submission,
//! but every outcome of that race satisfies the same invariant — an award
//! acknowledged in sync mode is on the follower by definition, and an
//! unacknowledged one is allowed to die with the primary — so the
//! assertions never depend on where the kill lands.

use faucets_core::daemon::FaucetsDaemon;
use faucets_core::ids::ClusterId;
use faucets_core::money::Money;
use faucets_core::qos::{PayoffFn, QosBuilder};
use faucets_net::fd::{spawn_fd_with, FdHandle, FdOptions};
use faucets_net::prelude::*;
use faucets_net::replica::{spawn_replica, Journal, ReplicaHandle, ReplicaOptions};
use faucets_sched::adaptive::ResizeCostModel;
use faucets_sched::cluster::Cluster;
use faucets_sched::equipartition::Equipartition;
use faucets_sched::machine::MachineSpec;
use faucets_store::{
    pick_primary, prepare_promotion, read_epoch, Durable, ReplicationMode, StoreError, StoreOptions,
};
use serde::{Deserialize, Serialize};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Duration;

fn scratch(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("faucets-repl-chaos-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The FD replication service name for ClusterId(1).
const FD_SVC: &str = "fd-1";

fn spawn_primary_fd(
    store: PathBuf,
    replication: Option<ReplicationConfig>,
    fs: SocketAddr,
    aspect: SocketAddr,
    clock: Clock,
) -> FdHandle {
    let machine = MachineSpec::commodity(ClusterId(1), "turing", 64);
    let daemon = FaucetsDaemon::new(
        machine.server_info("127.0.0.1", 0),
        ["namd".to_string()],
        Box::new(faucets_core::market::Baseline),
        Money::from_units_f64(0.01),
    );
    let cluster = Cluster::new(machine, Box::new(Equipartition), ResizeCostModel::default());
    spawn_fd_with(
        "127.0.0.1:0",
        daemon,
        cluster,
        fs,
        aspect,
        clock,
        FdOptions {
            store: Some(store),
            replication,
            ..FdOptions::default()
        },
    )
    .expect("FD")
}

fn follower_daemon(service: &str, dir: PathBuf) -> ReplicaHandle {
    spawn_replica(
        "127.0.0.1:0",
        &[(service.to_string(), dir)],
        ReplicaOptions::default(),
    )
    .expect("replica daemon")
}

fn qos_for(clock: &Clock) -> faucets_core::qos::QosContract {
    QosBuilder::new("namd", 8, 32, 64.0 * 3_600.0)
        .efficiency(0.95, 0.8)
        .adaptive()
        .payoff(PayoffFn::hard_only(
            clock
                .now()
                .saturating_add(faucets_sim::time::SimDuration::from_hours(24)),
            Money::from_units(100),
            Money::from_units(10),
        ))
        .build()
        .unwrap()
}

/// kill -9 the primary FD mid-negotiation; every acknowledged award must
/// complete on the backup promoted from the follower's journal.
#[test]
fn acked_awards_survive_primary_kill_and_promotion() {
    let clock = Clock::new(2_000.0);
    let fd_store = scratch("primary");
    let follower_store = scratch("follower");

    let fs = spawn_fs("127.0.0.1:0", clock.clone(), 71).unwrap();
    let fs_addr = fs.service.addr;
    let aspect = spawn_appspector("127.0.0.1:0", fs_addr, 16).unwrap();
    let follower = follower_daemon(FD_SVC, follower_store.clone());

    let fd = spawn_primary_fd(
        fd_store.clone(),
        Some(ReplicationConfig {
            followers: vec![follower.addr],
            mode: ReplicationMode::Sync,
            ..ReplicationConfig::default()
        }),
        fs_addr,
        aspect.service.addr,
        clock.clone(),
    );
    // The directory row advertises the replica set, so failover tooling
    // can find the follower without out-of-band configuration.
    {
        let s = fs.state.lock();
        let row = s.directory.get(ClusterId(1)).expect("registered");
        assert_eq!(row.info.replicas, vec![follower.addr.to_string()]);
    }

    let mut client =
        FaucetsClient::register(fs_addr, aspect.service.addr, clock.clone(), "dana", "pw").unwrap();
    client.retry = RetryPolicy::standard(71);

    // Three acknowledged awards, then one submission racing the kill.
    let mut acked = Vec::new();
    for i in 0..3 {
        let sub = client
            .submit(qos_for(&clock), &[("in.dat".into(), vec![i as u8; 32])])
            .expect("award acked");
        acked.push(sub.job);
    }
    let rounds_before = faucets_telemetry::global()
        .snapshot()
        .counter("client_negotiation_rounds_total");
    let racer = {
        let fs_addr = fs_addr;
        let aspect_addr = aspect.service.addr;
        let clock = clock.clone();
        std::thread::spawn(move || {
            let mut c =
                FaucetsClient::register(fs_addr, aspect_addr, clock.clone(), "eve", "pw").ok()?;
            c.retry = RetryPolicy::none();
            c.submit(qos_for(&clock), &[("in.dat".into(), vec![9u8; 32])])
                .ok()
        })
    };
    // Land the kill while the racer negotiates: gate on the racer's first
    // negotiation round actually starting (the global round counter moving
    // past its pre-spawn baseline) instead of a bare sleep, so a slow CI
    // box can't fire the kill before the racer even logs in. Whatever the
    // interleaving after that: an acked award is follower-durable (sync
    // mode), an unacked one may legitimately die with the primary — and
    // per the invariant above, even a kill landing outside the race window
    // (the bounded poll expiring) leaves the assertions valid.
    let gate = std::time::Instant::now() + Duration::from_secs(5);
    while std::time::Instant::now() < gate
        && faucets_telemetry::global()
            .snapshot()
            .counter("client_negotiation_rounds_total")
            <= rounds_before
    {
        std::thread::sleep(Duration::from_millis(1));
    }
    fd.kill();
    if let Ok(Some(sub)) = racer.join() {
        acked.push(sub.job);
    }
    assert!(acked.len() >= 3);

    // Deterministic election and promotion from the follower's journal.
    let pos = follower.position(FD_SVC).expect("follower hosts the FD");
    assert_eq!(pick_primary(&[pos]), Some(0));
    let promoted_dir = follower.release(FD_SVC).expect("release for promotion");
    prepare_promotion(&promoted_dir, FD_SVC, pos.epoch + 1).unwrap();
    assert_eq!(read_epoch(&promoted_dir), pos.epoch + 1);

    let fd2 = spawn_primary_fd(
        promoted_dir,
        None,
        fs_addr,
        aspect.service.addr,
        clock.clone(),
    );
    // Zero acked-entry loss, end to end: every acknowledged award runs to
    // completion on the promoted backup.
    for job in &acked {
        let snap = client
            .wait(*job, Duration::from_secs(40))
            .expect("acked award completes on the promoted backup");
        assert!(snap.completed, "job {job:?} must complete after failover");
    }

    fd2.shutdown();
    follower.shutdown();
    let _ = std::fs::remove_dir_all(&fd_store);
    let _ = std::fs::remove_dir_all(&follower_store);
}

/// Minimal journal state machine for wire-level fencing/catch-up tests.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
struct Log(Vec<String>);

impl Durable for Log {
    type Record = String;
    type Snapshot = Vec<String>;
    fn apply(&mut self, rec: &String) {
        self.0.push(rec.clone());
    }
    fn snapshot(&self) -> Vec<String> {
        self.0.clone()
    }
    fn restore(snap: Vec<String>) -> Self {
        Log(snap)
    }
}

fn log_store_opts(compact_every: u64) -> StoreOptions {
    StoreOptions {
        service: "chaos-log".into(),
        compact_every,
        no_fsync: true,
        ..StoreOptions::default()
    }
}

fn open_log_journal(
    dir: &PathBuf,
    followers: Vec<SocketAddr>,
    mode: ReplicationMode,
    compact_every: u64,
) -> Journal<Log> {
    let cfg = ReplicationConfig {
        followers,
        mode,
        ..ReplicationConfig::default()
    };
    Journal::open(
        dir,
        Log::default(),
        "svc",
        log_store_opts(compact_every),
        Some(&cfg),
    )
    .expect("journal")
    .0
}

/// A deposed primary is fenced by epoch the moment it talks to a follower
/// that has seen the new reign — over the real wire.
#[test]
fn deposed_primary_is_fenced_over_the_wire() {
    let p1_dir = scratch("fence-p1");
    let f1_dir = scratch("fence-f1");
    let f2_dir = scratch("fence-f2");
    let f1 = follower_daemon("svc", f1_dir);
    let f2 = follower_daemon("svc", f2_dir.clone());

    // Reign 1: P1 replicates to both followers.
    let p1 = open_log_journal(&p1_dir, vec![f1.addr, f2.addr], ReplicationMode::Sync, 0);
    for i in 0..5 {
        p1.commit(&format!("old-{i}")).unwrap();
    }
    assert_eq!(f1.position("svc").unwrap().acked, 5);
    assert_eq!(f2.position("svc").unwrap().acked, 5);

    // P1 "dies" (we keep its journal directory to resurrect a zombie).
    p1.shutdown();
    drop(p1);

    // Elect the most caught-up follower; F1 wins the tie by order.
    let positions = [f1.position("svc").unwrap(), f2.position("svc").unwrap()];
    let winner = pick_primary(&positions).unwrap();
    assert_eq!(winner, 0, "deterministic tie-break by list order");

    // Promote F1: release its directory, raise the epoch, reopen it as
    // the reign-2 primary replicating to the surviving follower F2.
    let promoted_dir = f1.release("svc").unwrap();
    prepare_promotion(&promoted_dir, "svc", positions[winner].epoch + 1).unwrap();
    let p2 = open_log_journal(&promoted_dir, vec![f2.addr], ReplicationMode::Sync, 0);
    p2.commit(&"new-reign".to_string()).unwrap();
    assert_eq!(
        f2.position("svc").unwrap().epoch,
        positions[winner].epoch + 1,
        "F2 adopted the new epoch"
    );

    // The zombie P1 comes back and tries to keep committing: the first
    // follower contact fences it, and it stays fenced.
    let zombie = open_log_journal(&p1_dir, vec![f2.addr], ReplicationMode::Sync, 0);
    let err = zombie.commit(&"zombie".to_string()).unwrap_err();
    assert!(
        matches!(err, StoreError::Fenced { .. }),
        "expected Fenced, got {err}"
    );
    assert!(zombie.replicated().unwrap().is_fenced());
    let err = zombie.commit(&"still-zombie".to_string()).unwrap_err();
    assert!(matches!(err, StoreError::Fenced { .. }));

    // The new reign is unaffected.
    p2.commit(&"still-new".to_string()).unwrap();
    assert_eq!(p2.read(|l| l.0.len()), 7);

    p2.shutdown();
    zombie.shutdown();
    f1.shutdown();
    f2.shutdown();
}

/// A follower that joins behind the primary's compaction horizon catches
/// up through a snapshot transfer, then resumes incremental shipping.
#[test]
fn lagging_follower_catches_up_via_snapshot_transfer() {
    let p_dir = scratch("snap-p");
    let f_dir = scratch("snap-f");

    // The follower daemon exists but its store is empty; the primary
    // compacts every 4 commits, so by the time the backlog ships, the
    // early generations are gone and only a snapshot can seed it.
    let follower = follower_daemon("svc", f_dir.clone());
    let journal = open_log_journal(&p_dir, vec![follower.addr], ReplicationMode::Async, 4);
    for i in 0..10 {
        journal.commit(&format!("entry-{i}")).unwrap();
    }
    let repl = journal.replicated().unwrap();
    assert!(
        repl.flush(Duration::from_secs(10)),
        "async backlog should drain"
    );
    let primary = repl.position();
    let follower_pos = follower.position("svc").unwrap();
    assert_eq!(follower_pos, primary, "follower converged to the primary");
    assert!(
        primary.generation > 1,
        "compaction must have advanced the generation (else this test \
         exercises nothing): {primary:?}"
    );

    // Promotion-grade check: the follower directory recovers the full
    // state even though it never saw generation 1.
    let dir = follower.release("svc").unwrap();
    let (check, _) = Journal::<Log>::open(&dir, Log::default(), "svc", log_store_opts(0), None)
        .expect("follower dir opens as a plain journal");
    assert_eq!(
        check.read(|l| l.0.clone()),
        (0..10).map(|i| format!("entry-{i}")).collect::<Vec<_>>()
    );

    journal.shutdown();
    follower.shutdown();
}
