//! Reactor serve-path integration: hostile clients under chaos, idle
//! connections held as parked state (not threads), multiplexed callers
//! surviving a poisoned shared socket, and the shutdown-latency
//! regression tests for the fixed-tick sleep sweep (FD pump, sentinel
//! probe loop, federation gossip loop).
//!
//! Deflake convention: every wait synchronizes on a telemetry readout or
//! a handle readout under a bounded deadline — never a bare sleep sized
//! by hope.

use faucets_core::daemon::FaucetsDaemon;
use faucets_core::ids::ClusterId;
use faucets_core::money::Money;
use faucets_net::prelude::*;
use faucets_sched::adaptive::ResizeCostModel;
use faucets_sched::cluster::Cluster;
use faucets_sched::equipartition::Equipartition;
use faucets_sched::machine::MachineSpec;
use faucets_telemetry::metrics::Registry;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn gauge(reg: &Registry, name: &str, service: &'static str) -> f64 {
    reg.snapshot().gauge_sum(name, &[("service", service)])
}

fn await_gauge(reg: &Registry, name: &str, service: &'static str, want: f64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let v = gauge(reg, name, service);
        if v == want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "gauge {name} stuck at {v}, want {want}"
        );
        std::thread::sleep(Duration::from_millis(3));
    }
}

/// Hostile clients throw protocol garbage at the reactor — oversized
/// length prefixes, truncated frames, raw binary noise — while clean
/// clients keep calling. Every hostile connection must be closed (not
/// crash the reactor, not wedge a worker), every clean call must succeed,
/// and shutdown must stay prompt.
#[test]
fn hostile_frames_never_wedge_the_reactor() {
    let reg = Arc::new(Registry::new());
    let h = serve_with(
        "127.0.0.1:0",
        "hostile",
        ServeOptions {
            registry: Some(Arc::clone(&reg)),
            workers: 2,
            ..ServeOptions::default()
        },
        |_| Response::Ok,
    )
    .unwrap();
    let addr = h.addr;

    std::thread::scope(|s| {
        for kind in 0..3usize {
            s.spawn(move || {
                for _ in 0..20 {
                    let mut sock = TcpStream::connect(addr).unwrap();
                    let garbage: &[u8] = match kind {
                        // Length prefix far over MAX_FRAME.
                        0 => &[0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3],
                        // Valid length, payload that is not JSON.
                        1 => &[0, 0, 0, 4, 0xDE, 0xAD, 0xBE, 0xEF],
                        // Truncated: promises 64 bytes, sends 3, hangs up.
                        _ => &[0, 0, 0, 64, 1, 2, 3],
                    };
                    let _ = sock.write_all(garbage);
                    drop(sock);
                }
            });
        }
        for _ in 0..3usize {
            s.spawn(move || {
                let req = Request::VerifyToken {
                    token: faucets_core::auth::SessionToken("t".into()),
                };
                for i in 0..30 {
                    let r = call(addr, &req).unwrap_or_else(|e| panic!("clean call {i}: {e}"));
                    assert!(matches!(r, Response::Ok), "clean call {i} got {r:?}");
                }
            });
        }
    });

    // Every hostile connection was reaped: the gauge drains to zero.
    await_gauge(&reg, "net_open_conns", "hostile", 0.0);
    let t = Instant::now();
    h.shutdown();
    assert!(
        t.elapsed() < Duration::from_secs(2),
        "shutdown stayed prompt after chaos: {:?}",
        t.elapsed()
    );
}

/// Hundreds of idle connections are parked reactor state, not threads:
/// they all register (gauge counts them), a live call still answers
/// promptly while they sit there, and closing them drains the gauge.
#[test]
fn idle_connections_are_parked_state_not_threads() {
    const IDLE: usize = 300;
    let reg = Arc::new(Registry::new());
    let h = serve_with(
        "127.0.0.1:0",
        "idle",
        ServeOptions {
            registry: Some(Arc::clone(&reg)),
            // Two workers serve fine no matter how many sockets exist —
            // connections no longer occupy executor threads.
            workers: 2,
            ..ServeOptions::default()
        },
        |_| Response::Ok,
    )
    .unwrap();

    let mut idle = Vec::with_capacity(IDLE);
    for _ in 0..IDLE {
        idle.push(TcpStream::connect(h.addr).unwrap());
    }
    await_gauge(&reg, "net_open_conns", "idle", IDLE as f64);

    // The reactor still answers new work promptly with all those parked.
    let req = Request::VerifyToken {
        token: faucets_core::auth::SessionToken("t".into()),
    };
    let t = Instant::now();
    assert!(matches!(call(h.addr, &req).unwrap(), Response::Ok));
    assert!(
        t.elapsed() < Duration::from_secs(2),
        "call under {IDLE} idle conns answered promptly: {:?}",
        t.elapsed()
    );

    drop(idle);
    await_gauge(&reg, "net_open_conns", "idle", 0.0);
    let t = Instant::now();
    h.shutdown();
    assert!(
        t.elapsed() < Duration::from_secs(2),
        "shutdown stayed prompt: {:?}",
        t.elapsed()
    );
}

/// Chaos on the multiplexed client path: garbled reply frames kill the
/// shared socket (a desynchronised mux stream must fail everyone with a
/// typed disconnect, never pay caller A caller B's reply), the retry loop
/// redials, and most calls recover — the mux twin of the pooled
/// poison-and-recover suite.
#[test]
fn garbled_replies_poison_the_mux_socket_and_calls_recover() {
    let h = serve_with("127.0.0.1:0", "mux-chaos", ServeOptions::default(), |_| {
        Response::Ok
    })
    .unwrap();

    let mux = Arc::new(MuxPool::new(
        "mux-chaos",
        MuxConfig {
            conns_per_peer: 1,
            ..MuxConfig::default()
        },
    ));
    let reg = Arc::new(Registry::new());
    let plan = Arc::new(FaultPlan::new(
        0xBADCAB,
        FaultConfig {
            garble: 0.25,
            ..FaultConfig::none()
        },
    ));
    let opts = CallOptions {
        mux: Some(Arc::clone(&mux)),
        registry: Some(Arc::clone(&reg)),
        faults: Some(plan),
        timeouts: Timeouts::both(Duration::from_millis(500)),
        retry: RetryPolicy {
            attempts: 8,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(20),
            jitter: 0.5,
            seed: 13,
        },
        ..CallOptions::default()
    };

    let req = Request::VerifyToken {
        token: faucets_core::auth::SessionToken("t".into()),
    };
    let mut ok = 0;
    for _ in 0..40 {
        match call_with(h.addr, &req, &opts) {
            // A garbled frame can only ever produce a typed failure —
            // Response::Ok is the sole legitimate success payload here,
            // so anything else would be a crossed wire.
            Ok(r) => {
                assert!(matches!(r, Response::Ok), "crossed wire: {r:?}");
                ok += 1;
            }
            Err(_) => {}
        }
    }

    let snap = reg.snapshot();
    let failures = snap.counter_sum("net_mux_conn_failures_total", &[("pool", "mux-chaos")]);
    let dials = snap.counter_sum("net_mux_dials_total", &[("pool", "mux-chaos")]);
    assert!(ok >= 20, "retries recover most calls under faults: {ok}/40");
    assert!(
        failures >= 1,
        "at least one garbled reply killed the socket"
    );
    assert!(
        dials >= failures,
        "every killed socket was replaced by a fresh dial \
         (dials {dials} < failures {failures})"
    );
    assert!(
        mux.open_connections() <= 1,
        "dead mux connections were dropped, not leaked: {} open",
        mux.open_connections()
    );
    h.shutdown();
}

/// A frame parked because the executor queue was full — on a connection
/// with nothing else in flight — is dispatched when the queue drains.
/// Regression: the reactor only re-serviced a connection for its own fd
/// events or completions, so such a frame starved until the client's
/// read timeout while other connections' traffic drained the queue past
/// it.
#[test]
fn queue_full_parked_frames_are_not_starved() {
    let h = serve_with(
        "127.0.0.1:0",
        "starve",
        ServeOptions {
            // One worker and a one-slot queue: three concurrent hogs keep
            // the executor saturated, so the victim's frame must park.
            workers: 1,
            queue: 1,
            ..ServeOptions::default()
        },
        |req| {
            if matches!(&req, Request::Login { user, .. } if user == "hog") {
                std::thread::sleep(Duration::from_millis(150));
            }
            Response::Ok
        },
    )
    .unwrap();
    let addr = h.addr;

    let hogs: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(move || {
                let req = Request::Login {
                    user: "hog".into(),
                    password: String::new(),
                };
                for _ in 0..3 {
                    // Fresh connection per call: each hog's later calls
                    // enqueue behind the victim, never ahead of it.
                    call(addr, &req).unwrap();
                }
            })
        })
        .collect();
    // Land mid-burst: the worker is busy and the queue slot is taken, so
    // this frame parks on a connection with zero in-flight jobs. Only the
    // queue-drain re-service can ever dispatch it.
    std::thread::sleep(Duration::from_millis(50));
    let req = Request::VerifyToken {
        token: faucets_core::auth::SessionToken("t".into()),
    };
    let t = Instant::now();
    let r = call(addr, &req).unwrap();
    assert!(matches!(r, Response::Ok));
    assert!(
        t.elapsed() < Duration::from_secs(8),
        "parked frame starved: {:?}",
        t.elapsed()
    );
    for hog in hogs {
        hog.join().unwrap();
    }
    h.shutdown();
}

/// A pipelining client whose replies transiently exceed the per-connection
/// write buffer is paused — dispatch and reads stop until the backlog
/// drains — never killed: a batch caller reading at full speed must not be
/// cut off as a "slow consumer" mid-burst.
#[test]
fn reply_bursts_over_the_write_buffer_pause_not_kill() {
    let big = "x".repeat(64 * 1024);
    let h = serve_with(
        "127.0.0.1:0",
        "burst",
        ServeOptions {
            // Far below a single reply: the write queue saturates on the
            // first completion and stays saturated for the whole burst.
            write_buf: 32 * 1024,
            ..ServeOptions::default()
        },
        move |_| Response::Error(big.clone()),
    )
    .unwrap();

    let mux = Arc::new(MuxPool::new(
        "burst",
        MuxConfig {
            conns_per_peer: 1,
            ..MuxConfig::default()
        },
    ));
    let opts = CallOptions {
        mux: Some(mux),
        timeouts: Timeouts::both(Duration::from_secs(10)),
        retry: RetryPolicy::none(),
        ..CallOptions::default()
    };
    let reqs: Vec<Request> = (0..32)
        .map(|i| Request::Login {
            user: format!("u{i}"),
            password: String::new(),
        })
        .collect();
    for (i, r) in call_batch(h.addr, &reqs, &opts).into_iter().enumerate() {
        match r.unwrap_or_else(|e| panic!("slot {i} cut off as a slow consumer: {e}")) {
            Response::Error(s) => assert_eq!(s.len(), 64 * 1024, "slot {i} truncated"),
            other => panic!("slot {i}: unexpected {other:?}"),
        }
    }
    h.shutdown();
}

/// A legacy peer that pipelines frames *without* request ids is owed
/// replies in request order (the pre-multiplexing wire contract): the
/// reactor dispatches its frames one at a time instead of letting the
/// executor pool answer in completion order.
#[test]
fn idless_pipelined_frames_answer_in_request_order() {
    let h = serve_with("127.0.0.1:0", "legacy", ServeOptions::default(), |req| {
        let Request::Login { user, .. } = req else {
            return Response::Error("unexpected".into());
        };
        let n: u64 = user.trim_start_matches('u').parse().unwrap_or(0);
        // Later requests finish *faster*: concurrent dispatch would
        // invert the reply order.
        std::thread::sleep(Duration::from_millis(80u64.saturating_sub(n * 20)));
        Response::Error(user)
    })
    .unwrap();

    let mut sock = TcpStream::connect(h.addr).unwrap();
    for i in 0..4 {
        let env = Envelope {
            ctx: None,
            deadline_ms: None,
            request_id: None,
            msg: Request::Login {
                user: format!("u{i}"),
                password: String::new(),
            },
        };
        write_frame(&mut sock, &env).unwrap();
    }
    for i in 0..4 {
        let env: Envelope<Response> = read_frame(&mut sock).unwrap().expect("reply");
        match env.msg {
            Response::Error(tag) => assert_eq!(
                tag,
                format!("u{i}"),
                "id-less pipelined replies must keep request order"
            ),
            other => panic!("slot {i}: unexpected {other:?}"),
        }
    }
    h.shutdown();
}

/// The FD pump is paced by its next due event on a condvar; `shutdown()`
/// must wake it immediately, not wait out a tick or a heartbeat.
#[test]
fn fd_pump_shutdown_is_prompt() {
    let clock = Clock::new(100.0);
    let fs = spawn_fs("127.0.0.1:0", clock.clone(), 17).unwrap();
    let aspect = spawn_appspector("127.0.0.1:0", fs.service.addr, 8).unwrap();
    let machine = MachineSpec::commodity(ClusterId(3), "prompt", 16);
    let daemon = FaucetsDaemon::new(
        machine.server_info("127.0.0.1", 0),
        ["namd".to_string()],
        Box::new(faucets_core::market::Baseline),
        Money::from_units_f64(0.01),
    );
    let cluster = Cluster::new(machine, Box::new(Equipartition), ResizeCostModel::default());
    let fd = spawn_fd(
        "127.0.0.1:0",
        daemon,
        cluster,
        fs.service.addr,
        aspect.service.addr,
        clock,
    )
    .unwrap();

    let t = Instant::now();
    fd.shutdown();
    assert!(
        t.elapsed() < Duration::from_secs(1),
        "pump woke from its paced wait immediately: {:?}",
        t.elapsed()
    );
    aspect.service.shutdown();
    fs.shutdown();
}

/// The sentinel probe loop waits on a stop-aware signal: shutting it down
/// mid-interval must not sleep out the rest of the probe interval.
#[test]
fn sentinel_shutdown_is_prompt_mid_interval() {
    let h = serve("127.0.0.1:0", "fake-primary", |_| {
        Response::Error("no lease here".into())
    })
    .unwrap();
    let sentinel = spawn_sentinel(
        h.addr,
        vec![],
        SentinelOptions {
            service: "prompt-svc".into(),
            // Long enough that a shutdown that *waits for the tick*
            // visibly fails the assertion below.
            probe_every: Duration::from_secs(30),
            ..SentinelOptions::default()
        },
        |_, _| panic!("must never promote"),
    )
    .unwrap();
    // Give the thread a moment to enter its inter-probe wait.
    std::thread::sleep(Duration::from_millis(50));
    let t = Instant::now();
    sentinel.shutdown();
    assert!(
        t.elapsed() < Duration::from_secs(1),
        "sentinel woke mid-interval: {:?}",
        t.elapsed()
    );
    h.shutdown();
}

/// The federation gossip loop waits on the same stop-aware signal:
/// stopping a shard mid-interval costs a join, not a gossip round.
#[test]
fn federation_stop_is_prompt_mid_interval() {
    let fed = Arc::new(Federation::new(FederationOptions {
        gossip_interval: Duration::from_secs(30),
        ..FederationOptions::new("prompt-shard")
    }));
    fed.activate("127.0.0.1:9".parse().unwrap());
    // Give the gossiper a moment to enter its inter-round wait.
    std::thread::sleep(Duration::from_millis(50));
    let t = Instant::now();
    fed.stop();
    assert!(
        t.elapsed() < Duration::from_secs(1),
        "gossip loop woke mid-interval: {:?}",
        t.elapsed()
    );
}
