//! Federated central server: ring routing, gossip failure detection,
//! cross-shard token verification, and client/FD failover when a shard
//! dies.
//!
//! Deflake convention: every wait in this file synchronizes on a
//! federation readout (`alive_members`, `ring_epoch`, directory state)
//! or a telemetry counter under a bounded deadline — never a bare sleep
//! sized by hope.

use faucets_core::auth::SessionToken;
use faucets_core::daemon::FaucetsDaemon;
use faucets_core::directory::{ServerInfo, ServerListing, ServerStatus};
use faucets_core::ids::{ClusterId, UserId};
use faucets_core::money::Money;
use faucets_core::qos::{QosBuilder, QosContract};
use faucets_net::prelude::*;
use faucets_sched::adaptive::ResizeCostModel;
use faucets_sched::cluster::Cluster;
use faucets_sched::equipartition::Equipartition;
use faucets_sched::machine::MachineSpec;
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Poll `ready` every few milliseconds until it holds, or fail loudly.
/// The bounded-deadline stand-in for "wait for convergence".
fn await_until(what: &str, ready: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(15);
    while !ready() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(3));
    }
}

fn fed(fs: &FsHandle) -> &Arc<Federation> {
    fs.federation.as_ref().expect("federated FS")
}

/// Wait until `fs`'s membership view holds exactly `expect` alive shards.
fn await_members(fs: &FsHandle, expect: usize, what: &str) {
    await_until(what, || fed(fs).alive_members().len() == expect);
}

fn spawn_shard(name: &str, clock: &Clock, seed: u64) -> FsHandle {
    let opts = FsOptions {
        federation: Some(FederationOptions::new(name)),
        ..FsOptions::default()
    };
    spawn_fs_durable("127.0.0.1:0", clock.clone(), seed, opts).expect("shard")
}

/// The smallest cluster id the ring assigns to `name` — lets tests pick
/// keys with a known owner instead of assuming anything about hash
/// distribution.
fn owned_by(fs: &FsHandle, name: &str) -> ClusterId {
    (1..100_000)
        .map(ClusterId)
        .find(|k| fed(fs).owner_of(*k).as_deref() == Some(name))
        .expect("every shard owns some key")
}

fn info(id: ClusterId) -> ServerInfo {
    ServerInfo {
        cluster: id,
        name: format!("cs{}", id.raw()),
        total_pes: 64,
        mem_per_pe_mb: 1024,
        cpu_type: "x86-64".into(),
        flops_per_pe_sec: 1.0,
        fd_addr: "127.0.0.1".into(),
        fd_port: 1,
        replicas: vec![],
    }
}

fn register(at: &FsHandle, id: ClusterId) {
    let r = call(
        at.service.addr,
        &Request::RegisterCluster {
            info: info(id),
            apps: vec!["namd".into()],
        },
    )
    .expect("register rpc");
    assert_eq!(r, Response::Ok, "registration of {id:?} acked");
}

fn login(at: &FsHandle, user: &str) -> SessionToken {
    call(
        at.service.addr,
        &Request::CreateUser {
            user: user.into(),
            password: "pw".into(),
        },
    )
    .expect("create user");
    match call(
        at.service.addr,
        &Request::Login {
            user: user.into(),
            password: "pw".into(),
        },
    )
    .expect("login rpc")
    {
        Response::Session { token, .. } => token,
        other => panic!("expected session, got {other:?}"),
    }
}

fn qos() -> QosContract {
    QosBuilder::new("namd", 4, 16, 100.0).build().unwrap()
}

#[test]
fn registrations_route_to_the_ring_owner_and_queries_see_every_shard() {
    let clock = Clock::realtime();
    let a = spawn_shard("fs-a", &clock, 11);
    let b = spawn_shard("fs-b", &clock, 12);
    fed(&b).join(a.service.addr);
    await_members(&a, 2, "fs-a to see both shards");
    await_members(&b, 2, "fs-b to see both shards");

    // Keys with known owners, each registered at the *other* shard, so
    // both directions of forwarding are exercised.
    let ka = owned_by(&a, "fs-a");
    let kb = owned_by(&a, "fs-b");
    register(&b, ka); // arrives at b, owned by a → forwarded
    register(&a, kb); // arrives at a, owned by b → forwarded
    assert!(
        a.state.lock().directory.get(ka).is_some(),
        "a-owned key must land in a's directory even when registered at b"
    );
    assert!(
        a.state.lock().directory.get(kb).is_none(),
        "b-owned key must not shadow-register at a"
    );
    assert!(
        b.state.lock().directory.get(kb).is_some(),
        "b-owned key must land in b's directory even when registered at a"
    );
    assert!(b.state.lock().directory.get(ka).is_none());

    // Six more clusters, all registered at a: each must live on exactly
    // its ring owner.
    let bulk: Vec<ClusterId> = (1_000_010..1_000_016).map(ClusterId).collect();
    for &id in &bulk {
        register(&a, id);
        let owner = fed(&a).owner_of(id).expect("ring owns every key");
        let on_a = a.state.lock().directory.get(id).is_some();
        let on_b = b.state.lock().directory.get(id).is_some();
        assert_eq!(on_a, owner == "fs-a", "{id:?} owner {owner}");
        assert_eq!(on_b, owner == "fs-b", "{id:?} owner {owner}");
    }

    // A heartbeat for a b-owned cluster sent to a is forwarded too.
    let r = call(
        a.service.addr,
        &Request::Heartbeat {
            cluster: kb,
            status: ServerStatus {
                free_pes: 48,
                queue_len: 3,
                accepting: true,
                utilization: 0.25,
                running: 4,
            },
        },
    )
    .expect("heartbeat rpc");
    assert_eq!(r, Response::Ok);
    assert_eq!(
        b.state.lock().directory.get(kb).unwrap().status.queue_len,
        3
    );

    // Any shard answers the whole federated directory: the token was
    // minted at a, so querying b also exercises cross-shard verification.
    let token = login(&a, "fed-q");
    for (label, fs) in [("a", &a), ("b", &b)] {
        let Response::Servers(servers) = call(
            fs.service.addr,
            &Request::ListServers {
                token: token.clone(),
                qos: qos(),
            },
        )
        .expect("list servers") else {
            panic!("expected server list from shard {label}")
        };
        assert_eq!(servers.len(), 8, "shard {label} must merge both shards");
        let ids: HashSet<ClusterId> = servers.iter().map(|s| s.info.cluster).collect();
        assert_eq!(ids.len(), 8, "no duplicate clusters from shard {label}");

        let Response::Clusters(rows) = call(
            fs.service.addr,
            &Request::ListClusters {
                token: token.clone(),
            },
        )
        .expect("list clusters") else {
            panic!("expected cluster rows from shard {label}")
        };
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert_eq!(
                r.shard.as_deref(),
                fed(&a).owner_of(r.info.cluster).as_deref(),
                "every row is stamped with its owning shard"
            );
            assert!(r.ring_epoch >= 1, "federated rows carry the ring epoch");
        }
    }
}

#[test]
fn gossip_grades_a_dead_shard_and_the_ring_heals_around_it() {
    let clock = Clock::realtime();
    let a = spawn_shard("heal-a", &clock, 21);
    let b = spawn_shard("heal-b", &clock, 22);
    let c = spawn_shard("heal-c", &clock, 23);
    fed(&b).join(a.service.addr);
    fed(&c).join(a.service.addr);
    await_members(&a, 3, "heal-a full-mesh convergence");
    await_members(&b, 3, "heal-b full-mesh convergence");
    await_members(&c, 3, "heal-c full-mesh convergence");

    // A key the doomed shard owns, chosen while it is still in the ring.
    let k = owned_by(&a, "heal-c");
    let epoch_a = fed(&a).ring_epoch();
    let epoch_b = fed(&b).ring_epoch();
    drop(c); // the shard falls silent: gossip stops, listener closes

    await_until("survivors to grade heal-c dead and bump the ring", || {
        fed(&a).alive_members().len() == 2
            && fed(&b).alive_members().len() == 2
            && fed(&a).ring_epoch() > epoch_a
            && fed(&b).ring_epoch() > epoch_b
    });

    // The orphaned key now has a live owner, and a registration routed
    // through either survivor lands in that owner's directory.
    let owner = fed(&a).owner_of(k).expect("healed ring owns the key");
    assert_ne!(owner, "heal-c", "dead shard must not own keys");
    register(&b, k);
    let holder = if owner == "heal-a" { &a } else { &b };
    assert!(
        holder.state.lock().directory.get(k).is_some(),
        "re-registration lands on the new owner {owner}"
    );
}

#[test]
fn tokens_minted_at_one_shard_verify_at_another() {
    let clock = Clock::realtime();
    let a = spawn_shard("tok-a", &clock, 31);
    let b = spawn_shard("tok-b", &clock, 32);
    fed(&b).join(a.service.addr);
    await_members(&a, 2, "tok-a convergence");
    await_members(&b, 2, "tok-b convergence");

    let token = login(&a, "tok-user");
    let r = call(b.service.addr, &Request::VerifyToken { token }).expect("verify rpc");
    assert!(
        matches!(r, Response::Verified { .. }),
        "b must verify a's token via the federation, got {r:?}"
    );

    let r = call(
        b.service.addr,
        &Request::VerifyToken {
            token: SessionToken("forged".into()),
        },
    )
    .expect("verify rpc");
    assert!(
        matches!(r, Response::Error(_)),
        "a token no shard minted is rejected everywhere, got {r:?}"
    );
}

#[test]
fn client_and_fd_fail_over_when_their_home_shard_dies() {
    let clock = Clock::new(200.0);
    let a = spawn_shard("live-a", &clock, 41);
    let b = spawn_shard("live-b", &clock, 42);
    fed(&b).join(a.service.addr);
    await_members(&a, 2, "live-a convergence");
    await_members(&b, 2, "live-b convergence");
    let aspect = spawn_appspector("127.0.0.1:0", a.service.addr, 32).expect("AS");

    // The FD and the client are both homed at b, with a as fallback.
    let machine = MachineSpec::commodity(ClusterId(1), "fed-cs", 64);
    let daemon = FaucetsDaemon::new(
        machine.server_info("127.0.0.1", 0),
        ["namd".to_string()],
        Box::new(faucets_core::market::Baseline),
        Money::from_units_f64(0.01),
    );
    let cluster = Cluster::new(machine, Box::new(Equipartition), ResizeCostModel::default());
    let _fd = spawn_fd_with(
        "127.0.0.1:0",
        daemon,
        cluster,
        b.service.addr,
        aspect.service.addr,
        clock.clone(),
        FdOptions {
            fs_fallbacks: vec![a.service.addr],
            ..FdOptions::default()
        },
    )
    .expect("FD");
    await_until("the FD registration to reach its owning shard", || {
        a.state.lock().directory.get(ClusterId(1)).is_some()
            || b.state.lock().directory.get(ClusterId(1)).is_some()
    });

    let mut client = FaucetsClient::register(
        b.service.addr,
        aspect.service.addr,
        clock.clone(),
        "fed-user",
        "pw",
    )
    .expect("client");
    client.fs_fallbacks = vec![a.service.addr];
    client.retry = RetryPolicy::none(); // fail over on first refusal
    client
        .submit(qos(), &[])
        .expect("submit against the healthy federation");

    let failovers0 = {
        let s = faucets_telemetry::global().snapshot();
        s.counter_sum("client_fs_failovers_total", &[])
    };
    drop(b); // kill the home shard

    await_until("the survivor to grade live-b dead", || {
        fed(&a).alive_members() == ["live-a"]
    });
    await_until("the FD to rotate to the survivor and re-register", || {
        let s = faucets_telemetry::global().snapshot();
        s.counter_sum("fd_fs_failovers_total", &[("cluster", "fed-cs")]) >= 1
            && a.state.lock().directory.get(ClusterId(1)).is_some()
    });

    // The client's session and account died with b: the next submission
    // must rotate to a, re-create its account there, and still succeed.
    client
        .submit(qos(), &[])
        .expect("submit after the home shard died");
    let failovers = {
        let s = faucets_telemetry::global().snapshot();
        s.counter_sum("client_fs_failovers_total", &[])
    };
    assert!(
        failovers > failovers0,
        "the client must have counted its shard failover"
    );
}

/// Regression for the bid re-solicitation dedupe: an FS answer that lists
/// the same compute server twice (as a federated scatter-gather can,
/// transiently, during a ring transition) must solicit exactly one bid.
#[test]
fn duplicate_directory_rows_solicit_one_bid_per_cluster() {
    let clock = Clock::realtime();
    let seen: Arc<Mutex<Option<ServerInfo>>> = Arc::new(Mutex::new(None));
    let seen_h = Arc::clone(&seen);
    let fake_fs = serve_with(
        "127.0.0.1:0",
        "fake-fs",
        ServeOptions::default(),
        move |req| match req {
            Request::CreateUser { .. } => Response::Verified { user: UserId(7) },
            Request::Login { .. } => Response::Session {
                user: UserId(7),
                token: SessionToken("fake-token".into()),
            },
            Request::VerifyToken { .. } => Response::Verified { user: UserId(7) },
            Request::RegisterCluster { info, .. } => {
                *seen_h.lock() = Some(info);
                Response::Ok
            }
            Request::Heartbeat { .. } => Response::Ok,
            Request::ListServers { .. } => {
                let info = seen_h.lock().clone().expect("FD registered first");
                let listing = ServerListing {
                    info,
                    status: ServerStatus {
                        free_pes: 64,
                        queue_len: 0,
                        accepting: true,
                        utilization: 0.0,
                        running: 0,
                    },
                };
                // The duplicated row the client must collapse.
                Response::Servers(vec![listing.clone(), listing])
            }
            other => Response::Error(format!("fake fs: unexpected {other:?}")),
        },
    )
    .expect("fake FS");
    let aspect = spawn_appspector("127.0.0.1:0", fake_fs.addr, 8).expect("AS");

    let machine = MachineSpec::commodity(ClusterId(9), "dup-cs", 64);
    let daemon = FaucetsDaemon::new(
        machine.server_info("127.0.0.1", 0),
        ["namd".to_string()],
        Box::new(faucets_core::market::Baseline),
        Money::from_units_f64(0.01),
    );
    let cluster = Cluster::new(machine, Box::new(Equipartition), ResizeCostModel::default());
    let fd = spawn_fd(
        "127.0.0.1:0",
        daemon,
        cluster,
        fake_fs.addr,
        aspect.service.addr,
        clock.clone(),
    )
    .expect("FD");
    await_until("the FD to register with the fake FS", || {
        seen.lock().is_some()
    });

    let mut client =
        FaucetsClient::register(fake_fs.addr, aspect.service.addr, clock, "dup-user", "pw")
            .expect("client");
    let sub = client.submit(qos(), &[]).expect("submit");
    assert_eq!(sub.bids_received, 1, "one bid per distinct cluster");
    assert_eq!(
        fd.daemon_stats().requests,
        1,
        "the duplicated listing must not double-solicit the daemon"
    );
}
