//! Property test for the sentinel takeover contract, at the store layer:
//! for ANY interleaving of an out-of-band fence (the sentinel's wire
//! deposition) with in-flight sync commits,
//!
//! 1. **no acked frame is lost** — every commit the primary acknowledged
//!    is durable in the follower's journal (that is what sync mode
//!    promised the client), and
//! 2. **no fenced frame is acked** — a commit that *starts* after the
//!    fence landed must fail; only commits already in flight may go
//!    either way (and a NACKed in-flight frame is allowed to exist on
//!    the follower — unacked ≠ forbidden, it just may not be claimed).
//!
//! The interleaving is genuinely racy (a committer thread runs while the
//! main thread fences at a proptest-chosen point), which is the point:
//! the contract must hold for every schedule the OS happens to produce,
//! on top of the schedules proptest explores.

use faucets_store::{
    prepare_promotion, read_epoch, Durable, DurableStore, FollowerOptions, FollowerStore,
    LocalLink, ReplOptions, ReplicatedStore, ReplicationMode, StoreOptions,
};
use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
struct Log(Vec<String>);

impl Durable for Log {
    type Record = String;
    type Snapshot = Vec<String>;
    fn apply(&mut self, rec: &String) {
        self.0.push(rec.clone());
    }
    fn snapshot(&self) -> Vec<String> {
        self.0.clone()
    }
    fn restore(snap: Vec<String>) -> Self {
        Log(snap)
    }
}

static CASE: AtomicU64 = AtomicU64::new(0);

fn scratch(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "faucets-takeover-{tag}-{}-{case}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn store_opts() -> StoreOptions {
    StoreOptions {
        service: "takeover".into(),
        compact_every: 0,
        no_fsync: true,
        ..StoreOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn any_takeover_interleaving_preserves_the_acked_contract(
        commits in 1usize..24,
        fence_after in 0usize..24,
    ) {
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let pdir = scratch("p", case);
        let fdir = scratch("f", case);

        let follower = Arc::new(
            FollowerStore::open(
                &fdir,
                FollowerOptions { no_fsync: true, ..FollowerOptions::default() },
            )
            .unwrap(),
        );
        let (store, _) = ReplicatedStore::open(
            &pdir,
            Log::default(),
            ReplOptions {
                store: store_opts(),
                mode: ReplicationMode::Sync,
                links: vec![Arc::new(LocalLink(Arc::clone(&follower)))],
                epoch: 1,
                sync_acks: 0,
            },
        )
        .unwrap();

        // The committer hammers sync commits; each records whether it
        // started after the fence was placed, and whether it was acked.
        let fenced_flag = Arc::new(AtomicBool::new(false));
        let attempted = Arc::new(AtomicUsize::new(0));
        let committer = {
            let store = Arc::clone(&store);
            let fenced_flag = Arc::clone(&fenced_flag);
            let attempted = Arc::clone(&attempted);
            std::thread::spawn(move || {
                let mut results = Vec::new();
                for i in 0..commits {
                    let after_fence = fenced_flag.load(Ordering::SeqCst);
                    let ok = store.commit(&format!("r{i}")).is_ok();
                    attempted.fetch_add(1, Ordering::SeqCst);
                    results.push((i, after_fence, ok));
                }
                results
            })
        };

        // Fence at the chosen interleaving point (0 = immediately; past
        // the end = after everything committed). The flag is raised
        // BEFORE the fence lands, so `after_fence && ok` can only be a
        // genuine contract violation, never instrumentation skew.
        let target = fence_after.min(commits);
        let gate = Instant::now() + Duration::from_secs(20);
        while attempted.load(Ordering::SeqCst) < target && Instant::now() < gate {
            std::thread::yield_now();
        }
        let new_epoch = store.epoch() + 1;
        fenced_flag.store(true, Ordering::SeqCst);
        store.fence(new_epoch);

        let results = committer.join().unwrap();
        let acked: Vec<String> = results
            .iter()
            .filter(|&&(_, _, ok)| ok)
            .map(|&(i, _, _)| format!("r{i}"))
            .collect();

        // Invariant 2: no fenced frame acked.
        for &(i, after_fence, ok) in &results {
            prop_assert!(
                !(after_fence && ok),
                "commit r{i} started after the fence yet was acknowledged"
            );
        }

        // Promote the follower exactly as the sentinel would, then
        // recover its journal as a plain store.
        store.shutdown();
        drop(store);
        drop(follower);
        prepare_promotion(&fdir, "takeover", new_epoch).unwrap();
        prop_assert_eq!(read_epoch(&fdir), new_epoch);
        let (promoted, _) = DurableStore::open(&fdir, Log::default(), store_opts()).unwrap();
        let survived = promoted.read(|l| l.0.clone());

        // Invariant 1: every acked frame survived the takeover. (The
        // follower may legitimately hold MORE than was acked — an
        // in-flight frame NACKed by the fence — but never less.)
        for rec in &acked {
            prop_assert!(
                survived.contains(rec),
                "acked record {} missing after promotion (survived: {:?})",
                rec,
                survived
            );
        }

        let _ = std::fs::remove_dir_all(&pdir);
        let _ = std::fs::remove_dir_all(&fdir);
    }
}
