//! Failure-recovery integration tests: real sockets, fixed seeds.
//!
//! Exercises the two recovery paths the unit tests can't reach end-to-end:
//! a daemon that crashes while a client is blocked in `wait` (the WAL
//! journal brings the contract back and the job still completes), and a
//! daemon that goes silent (the Central Server grades it dead and evicts
//! it from matching).

use faucets_core::daemon::FaucetsDaemon;
use faucets_core::ids::ClusterId;
use faucets_core::money::Money;
use faucets_core::qos::{PayoffFn, QosBuilder};
use faucets_net::fd::{spawn_fd_with, FdHandle, FdOptions};
use faucets_net::prelude::*;
use faucets_sched::adaptive::ResizeCostModel;
use faucets_sched::cluster::Cluster;
use faucets_sched::equipartition::Equipartition;
use faucets_sched::machine::MachineSpec;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Duration;

fn spawn_daemon(
    store: Option<PathBuf>,
    fs: SocketAddr,
    aspect: SocketAddr,
    clock: Clock,
) -> FdHandle {
    let machine = MachineSpec::commodity(ClusterId(1), "turing", 64);
    let daemon = FaucetsDaemon::new(
        machine.server_info("127.0.0.1", 0),
        ["namd".to_string()],
        Box::new(faucets_core::market::Baseline),
        Money::from_units_f64(0.01),
    );
    let cluster = Cluster::new(machine, Box::new(Equipartition), ResizeCostModel::default());
    spawn_fd_with(
        "127.0.0.1:0",
        daemon,
        cluster,
        fs,
        aspect,
        clock,
        FdOptions {
            store,
            ..FdOptions::default()
        },
    )
    .expect("FD")
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("faucets-recovery-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The daemon crashes while the client is blocked in `wait`; a restart on
/// the same journal directory restores the accepted contract and the job
/// runs to completion — the client never sees the outage, only a longer
/// wait.
#[test]
fn daemon_death_during_wait_recovers_from_snapshot() {
    let clock = Clock::new(3_000.0);
    let fs = spawn_fs("127.0.0.1:0", clock.clone(), 41).unwrap();
    let aspect = spawn_appspector("127.0.0.1:0", fs.service.addr, 16).unwrap();
    let snap = scratch_dir("wait");
    let fd = spawn_daemon(
        Some(snap.clone()),
        fs.service.addr,
        aspect.service.addr,
        clock.clone(),
    );

    let mut client = FaucetsClient::register(
        fs.service.addr,
        aspect.service.addr,
        clock.clone(),
        "carol",
        "pw",
    )
    .unwrap();
    client.retry = RetryPolicy::standard(41);

    // ~7200 simulated seconds of work: long enough that the crash lands
    // mid-run, short enough to finish in a few wall seconds at 3000x.
    let qos = QosBuilder::new("namd", 8, 32, 64.0 * 3_600.0)
        .efficiency(0.95, 0.8)
        .adaptive()
        .payoff(PayoffFn::hard_only(
            clock
                .now()
                .saturating_add(faucets_sim::time::SimDuration::from_hours(24)),
            Money::from_units(100),
            Money::from_units(10),
        ))
        .build()
        .unwrap();
    let sub = client
        .submit(qos, &[("in.dat".into(), vec![0u8; 128])])
        .expect("placed");
    assert_eq!(
        fd.active_contracts(),
        1,
        "contract journaled before the crash"
    );

    // The submission left a reconstructable trace: the client root span
    // plus server spans recorded by the (in-process) FS and FD services.
    let trace = client.last_trace.expect("submit records its trace id");
    let spans = faucets_telemetry::trace::spans_for(trace);
    assert!(
        spans.iter().any(|s| s.service == "client"),
        "client root span logged"
    );
    assert!(
        spans.iter().any(|s| s.service == "fs"),
        "FS server spans joined the trace"
    );
    assert!(
        spans.iter().any(|s| s.service == "fd"),
        "FD server spans joined the trace"
    );

    // Crash: no deregistration, no goodbye. The journal stays on disk and
    // scans clean — the accepted contract is an intact WAL record.
    fd.kill();
    let scan = faucets_store::scan_dir(&snap)
        .expect("journal dir readable")
        .expect("journal present");
    assert!(
        !scan.records.is_empty(),
        "acceptance journaled before the crash"
    );

    // Restart the daemon while the client waits — but only once the
    // client has demonstrably started polling AppSpector *during* the
    // outage (its Watch counter moves past the pre-kill baseline). A
    // fixed outage sleep either wastes time on a fast box or, worse,
    // restarts before the client's first poll on a slow one, in which
    // case the test never actually exercises "a wait spanning the
    // outage". The poll is deadline-capped; if the client somehow never
    // polls, we restart anyway and the completion assertion still holds.
    let watches_before = faucets_telemetry::global().snapshot().counter_sum(
        "net_requests_total",
        &[("service", "appspector"), ("endpoint", "Watch")],
    );
    let (fs_addr, as_addr, clk, path) = (
        fs.service.addr,
        aspect.service.addr,
        clock.clone(),
        snap.clone(),
    );
    let restart = std::thread::spawn(move || {
        let gate = std::time::Instant::now() + Duration::from_secs(10);
        while std::time::Instant::now() < gate
            && faucets_telemetry::global().snapshot().counter_sum(
                "net_requests_total",
                &[("service", "appspector"), ("endpoint", "Watch")],
            ) <= watches_before
        {
            std::thread::sleep(Duration::from_millis(3));
        }
        let fd2 = spawn_daemon(Some(path), fs_addr, as_addr, clk);
        (fd2.active_contracts(), fd2)
    });

    let snapshot = client
        .wait(sub.job, Duration::from_secs(40))
        .expect("job completes despite daemon crash mid-wait");
    assert!(snapshot.completed);

    let (restored, fd2) = restart.join().unwrap();
    assert_eq!(restored, 1, "restart restored the accepted contract");
    assert_eq!(
        fd2.active_contracts(),
        0,
        "contract pruned after completion"
    );
    fd2.shutdown();
    let _ = std::fs::remove_dir_all(&snap);
}

/// A daemon that stops heartbeating is graded dead by the Central Server
/// and evicted: match-making stops offering it, and its directory entry is
/// gone until it re-registers.
#[test]
fn silent_daemon_is_evicted_from_matching() {
    // 600x: the 90 s liveness timeout trips dead (3x) after 0.45 wall
    // seconds of silence.
    let clock = Clock::new(600.0);
    let fs = spawn_fs("127.0.0.1:0", clock.clone(), 42).unwrap();
    let aspect = spawn_appspector("127.0.0.1:0", fs.service.addr, 16).unwrap();
    let fd = spawn_daemon(None, fs.service.addr, aspect.service.addr, clock.clone());
    assert!(
        fs.state.lock().directory.get(ClusterId(1)).is_some(),
        "registered"
    );

    call(
        fs.service.addr,
        &Request::CreateUser {
            user: "dan".into(),
            password: "pw".into(),
        },
    )
    .unwrap();
    let Response::Session { token, .. } = call(
        fs.service.addr,
        &Request::Login {
            user: "dan".into(),
            password: "pw".into(),
        },
    )
    .unwrap() else {
        panic!("expected session")
    };
    let qos = QosBuilder::new("namd", 4, 16, 100.0).build().unwrap();

    // While the daemon heartbeats, it is offered.
    let Response::Servers(servers) = call(
        fs.service.addr,
        &Request::ListServers {
            token: token.clone(),
            qos: qos.clone(),
        },
    )
    .unwrap() else {
        panic!("expected server list")
    };
    assert_eq!(servers.len(), 1);

    // Silence it. At 600x the 90 s liveness timeout grades the daemon dead
    // after ~0.45 wall seconds — but a loaded CI box can stretch that
    // arbitrarily, so instead of sleeping a guessed multiple we poll the
    // eviction counter until it trips, under a generous hard cap.
    fd.kill();
    let poll_deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let evicted = {
            let s = fs.state.lock();
            s.stats.evictions >= 1 && s.directory.get(ClusterId(1)).is_none()
        };
        if evicted {
            break;
        }
        assert!(
            std::time::Instant::now() < poll_deadline,
            "daemon not evicted within 10 s of silence"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    let Response::Servers(servers) =
        call(fs.service.addr, &Request::ListServers { token, qos }).unwrap()
    else {
        panic!("expected server list")
    };
    assert!(servers.is_empty(), "dead daemon no longer offered");

    // A fresh daemon for the same cluster re-registers cleanly.
    let fd2 = spawn_daemon(None, fs.service.addr, aspect.service.addr, clock);
    assert!(
        fs.state.lock().directory.get(ClusterId(1)).is_some(),
        "re-registered after eviction"
    );
    fd2.shutdown();
}
