//! Consistent-hash ring laws (the federation's routing foundation):
//!
//! 1. **Exactly one live owner** — every cluster id maps to exactly one
//!    member of any non-empty ring, and that member is drawn from the
//!    ring's own membership list.
//! 2. **Minimal disruption on join** — adding a shard moves keys *only
//!    onto the new shard* (never between survivors), and moves roughly
//!    1/N of them.
//! 3. **Minimal disruption on leave** — removing a shard moves *only its
//!    own keys*, and the orphans land spread over the survivors.
//!
//! These are what make a federated ring transition safe: a directory
//! entry's owner changes only when its owner actually joined or died.

use faucets_core::ids::ClusterId;
use faucets_net::federation::Ring;
use proptest::prelude::*;

/// Membership sets of 1..=7 uniquely named shards (sorted + deduped, so
/// duplicates drawn by the generator collapse instead of biasing).
fn arb_members() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec("[a-z]{1,8}", 1..8).prop_map(|names| {
        let mut v: Vec<String> = names.into_iter().map(|n| format!("fs-{n}")).collect();
        v.sort();
        v.dedup();
        v
    })
}

proptest! {
    #[test]
    fn every_key_has_exactly_one_live_owner(
        members in arb_members(),
        keys in prop::collection::vec(any::<u64>(), 1..200),
    ) {
        let ring = Ring::build(members.clone(), 1);
        for k in keys {
            let owner = ring.owner(ClusterId(k)).expect("non-empty ring owns all keys");
            prop_assert_eq!(
                ring.members().iter().filter(|m| m.as_str() == owner).count(),
                1,
                "owner {} must appear exactly once in the membership", owner
            );
        }
    }

    #[test]
    fn adding_a_shard_moves_keys_only_onto_it(
        members in arb_members(),
        newcomer in "[a-z]{1,8}",
    ) {
        let newcomer = format!("fs-new-{newcomer}");
        prop_assume!(!members.contains(&newcomer));
        let before = Ring::build(members.clone(), 1);
        let after = Ring::build(
            members.iter().cloned().chain([newcomer.clone()]),
            2,
        );
        let samples = 4_000u64;
        let mut moved = 0u64;
        for k in 0..samples {
            let was = before.owner(ClusterId(k)).unwrap();
            let now = after.owner(ClusterId(k)).unwrap();
            if was != now {
                prop_assert_eq!(
                    now, newcomer.as_str(),
                    "key {} moved between surviving shards", k
                );
                moved += 1;
            }
        }
        // The newcomer takes ~1/(N+1) of the keyspace; allow generous
        // slack for vnode variance at small N.
        let n = members.len() as f64 + 1.0;
        let share = moved as f64 / samples as f64;
        prop_assert!(
            share < (1.0 / n) * 3.0 + 0.05,
            "newcomer took {:.3} of keys, expected about {:.3}", share, 1.0 / n
        );
    }

    #[test]
    fn removing_a_shard_moves_only_its_own_keys(
        members in arb_members(),
        pick in any::<prop::sample::Index>(),
    ) {
        prop_assume!(members.len() >= 2);
        let dead = members[pick.index(members.len())].clone();
        let before = Ring::build(members.clone(), 1);
        let after = Ring::build(
            members.iter().filter(|m| **m != dead).cloned(),
            2,
        );
        let samples = 4_000u64;
        let mut orphans = 0u64;
        for k in 0..samples {
            let was = before.owner(ClusterId(k)).unwrap();
            let now = after.owner(ClusterId(k)).unwrap();
            if was == dead {
                orphans += 1;
                prop_assert_ne!(now, dead.as_str(), "dead shard still owns key {}", k);
            } else {
                prop_assert_eq!(was, now, "key {} moved off a surviving shard", k);
            }
        }
        // The dead shard owned ~1/N of the keyspace.
        let n = members.len() as f64;
        let share = orphans as f64 / samples as f64;
        prop_assert!(
            share < (1.0 / n) * 3.0 + 0.05,
            "dead shard owned {:.3} of keys, expected about {:.3}", share, 1.0 / n
        );
    }

    #[test]
    fn membership_order_never_changes_routing(
        members in arb_members(),
        keys in prop::collection::vec(any::<u64>(), 1..100),
    ) {
        let a = Ring::build(members.clone(), 7);
        let mut reversed = members;
        reversed.reverse();
        let b = Ring::build(reversed, 7);
        for k in keys {
            prop_assert_eq!(a.owner(ClusterId(k)), b.owner(ClusterId(k)));
        }
    }
}
