//! Wire-protocol robustness: arbitrary requests round-trip through the
//! framing; arbitrary garbage never panics the decoder; partial frames are
//! detected as errors rather than misparsed.

use faucets_core::auth::SessionToken;
use faucets_core::directory::{ServerInfo, ServerStatus};
use faucets_core::ids::{ClusterId, JobId, UserId};
use faucets_net::fault::{FaultConfig, FaultPlan};
use faucets_net::proto::{
    read_frame, read_frame_with, write_frame, write_frame_with, ProtoError, Request, Response,
    MAX_FRAME,
};
use proptest::prelude::*;
use std::io::Cursor;
use std::time::Duration;

/// A hostile plan with no delays, so property runs stay fast.
fn hostile(seed: u64) -> FaultPlan {
    FaultPlan::new(
        seed,
        FaultConfig {
            drop: 0.25,
            truncate: 0.25,
            garble: 0.25,
            delay: 0.0,
            max_delay: Duration::ZERO,
            reject: 0.0,
        },
    )
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        ("[a-z]{1,12}", "[ -~]{0,24}")
            .prop_map(|(user, password)| Request::Login { user, password }),
        "[0-9a-f]{1,64}".prop_map(|t| Request::VerifyToken {
            token: SessionToken(t)
        }),
        (0u64..1000, 0u64..1000, any::<u32>(), any::<bool>()).prop_map(|(c, _u, free, acc)| {
            Request::Heartbeat {
                cluster: ClusterId(c),
                status: ServerStatus {
                    free_pes: free,
                    queue_len: 0,
                    accepting: acc,
                    ..Default::default()
                },
            }
        }),
        (
            0u64..100,
            prop::collection::vec(any::<u8>(), 0..512),
            "[a-z./]{1,30}"
        )
            .prop_map(|(job, data, name)| Request::UploadFile {
                token: SessionToken("t".into()),
                job: JobId(job),
                name,
                data,
            }),
        (0u64..50, 0u64..50, 0u64..50).prop_map(|(j, o, c)| Request::RegisterJob {
            job: JobId(j),
            owner: UserId(o),
            cluster: ClusterId(c),
        }),
        (0u64..8, 1u32..4096, 1u64..65535).prop_map(|(id, pes, port)| Request::RegisterCluster {
            info: ServerInfo {
                cluster: ClusterId(id),
                name: format!("cs{id}"),
                total_pes: pes,
                mem_per_pe_mb: 1024,
                cpu_type: "x86-64".into(),
                flops_per_pe_sec: 1e9,
                fd_addr: "127.0.0.1".into(),
                fd_port: port as u16,
                replicas: vec![],
            },
            apps: vec!["namd".into()],
        }),
    ]
}

proptest! {
    /// Every representable request survives encode → decode intact.
    #[test]
    fn requests_round_trip(req in arb_request()) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &req).unwrap();
        let back: Request = read_frame(&mut Cursor::new(&buf)).unwrap().unwrap();
        prop_assert_eq!(back, req);
    }

    /// Several frames in one stream decode in order.
    #[test]
    fn streams_of_frames(reqs in prop::collection::vec(arb_request(), 1..10)) {
        let mut buf = Vec::new();
        for r in &reqs {
            write_frame(&mut buf, r).unwrap();
        }
        let mut cur = Cursor::new(&buf);
        for r in &reqs {
            let back: Request = read_frame(&mut cur).unwrap().unwrap();
            prop_assert_eq!(&back, r);
        }
        prop_assert!(read_frame::<_, Request>(&mut cur).unwrap().is_none(), "clean EOF");
    }

    /// Arbitrary garbage (with a small sane length prefix) never panics —
    /// it errors or, astronomically rarely, parses.
    #[test]
    fn garbage_never_panics(payload in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        buf.extend_from_slice(&payload);
        let _ = read_frame::<_, Request>(&mut Cursor::new(&buf));
        let _ = read_frame::<_, Response>(&mut Cursor::new(&buf));
    }

    /// Truncations of a valid frame are clean EOF (empty) or an error —
    /// never a wrong message.
    #[test]
    fn truncation_detected(req in arb_request(), cut in 0usize..64) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &req).unwrap();
        let cut = cut.min(buf.len().saturating_sub(1));
        let truncated = &buf[..buf.len() - 1 - cut];
        match read_frame::<_, Request>(&mut Cursor::new(truncated)) {
            Ok(None) => {} // truncated inside the length prefix: clean EOF
            Ok(Some(got)) => prop_assert!(false, "truncated frame parsed as {got:?}"),
            Err(_) => {} // detected
        }
    }

    /// A length prefix past [`MAX_FRAME`] is rejected before any payload
    /// allocation, whatever follows it.
    #[test]
    fn oversized_prefix_rejected(extra in 1u32..1_000_000, tail in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + extra).to_be_bytes());
        buf.extend_from_slice(&tail);
        match read_frame::<_, Request>(&mut Cursor::new(&buf)) {
            Err(ProtoError::FrameTooLarge(n)) => prop_assert_eq!(n, MAX_FRAME + extra),
            other => prop_assert!(false, "expected FrameTooLarge, got {other:?}"),
        }
    }

    /// Frames sent through a hostile fault plan (25% each of drop,
    /// truncate, garble) decode to the original, error cleanly, or vanish
    /// as EOF — the decoder never panics, and a frame that survives
    /// untouched framing-wise but garbled content-wise is *detected*
    /// (JSON of a different Request never round-trips by accident here
    /// because a single-byte XOR either breaks the JSON or changes a
    /// string the equality check catches).
    #[test]
    fn faulty_wire_never_panics(req in arb_request(), seed in any::<u64>()) {
        let plan = hostile(seed);
        let mut buf = Vec::new();
        write_frame_with(&mut buf, &req, Some(&plan)).unwrap();
        match read_frame::<_, Request>(&mut Cursor::new(&buf)) {
            Ok(None) => {}            // dropped in flight, or truncated inside the prefix
            Ok(Some(got)) => {
                // Delivered intact or garbled into... exactly itself is the
                // only way equality can hold; anything else must differ.
                if buf.len() == 4 + serde_json::to_vec(&req).unwrap().len()
                    && plan.stats().garbled == 0 {
                    prop_assert_eq!(got, req);
                }
            }
            Err(_) => {}              // truncation/corruption detected
        }
    }

    /// Read-side corruption (garble injected at the receiver) also never
    /// panics, across both message types.
    #[test]
    fn receive_side_faults_never_panic(req in arb_request(), seed in any::<u64>()) {
        let plan = FaultPlan::new(
            seed,
            FaultConfig { drop: 0.0, truncate: 0.0, garble: 0.5, delay: 0.0, max_delay: Duration::ZERO, reject: 0.0 },
        );
        let mut buf = Vec::new();
        write_frame(&mut buf, &req).unwrap();
        let _ = read_frame_with::<_, Request>(&mut Cursor::new(&buf), Some(&plan));
        let _ = read_frame_with::<_, Response>(&mut Cursor::new(&buf), Some(&plan));
    }

    /// The fault schedule is pure in (seed, bytes): two plans with the same
    /// seed mangle the same stream into byte-identical wire images.
    #[test]
    fn fault_injection_is_deterministic(reqs in prop::collection::vec(arb_request(), 1..8), seed in any::<u64>()) {
        let (a, b) = (hostile(seed), hostile(seed));
        let (mut wire_a, mut wire_b) = (Vec::new(), Vec::new());
        for r in &reqs {
            write_frame_with(&mut wire_a, r, Some(&a)).unwrap();
            write_frame_with(&mut wire_b, r, Some(&b)).unwrap();
        }
        prop_assert_eq!(wire_a, wire_b);
        prop_assert_eq!(a.stats(), b.stats());
    }
}
