//! Wire-protocol robustness: arbitrary requests round-trip through the
//! framing; arbitrary garbage never panics the decoder; partial frames are
//! detected as errors rather than misparsed.

use faucets_core::auth::SessionToken;
use faucets_core::directory::{ServerInfo, ServerStatus};
use faucets_core::ids::{ClusterId, JobId, UserId};
use faucets_net::proto::{read_frame, write_frame, Request, Response};
use proptest::prelude::*;
use std::io::Cursor;

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        ("[a-z]{1,12}", "[ -~]{0,24}").prop_map(|(user, password)| Request::Login { user, password }),
        "[0-9a-f]{1,64}".prop_map(|t| Request::VerifyToken { token: SessionToken(t) }),
        (0u64..1000, 0u64..1000, any::<u32>(), any::<bool>()).prop_map(|(c, _u, free, acc)| {
            Request::Heartbeat {
                cluster: ClusterId(c),
                status: ServerStatus { free_pes: free, queue_len: 0, accepting: acc },
            }
        }),
        (0u64..100, prop::collection::vec(any::<u8>(), 0..512), "[a-z./]{1,30}").prop_map(
            |(job, data, name)| Request::UploadFile {
                token: SessionToken("t".into()),
                job: JobId(job),
                name,
                data,
            }
        ),
        (0u64..50, 0u64..50, 0u64..50).prop_map(|(j, o, c)| Request::RegisterJob {
            job: JobId(j),
            owner: UserId(o),
            cluster: ClusterId(c),
        }),
        (0u64..8, 1u32..4096, 1u64..65535).prop_map(|(id, pes, port)| Request::RegisterCluster {
            info: ServerInfo {
                cluster: ClusterId(id),
                name: format!("cs{id}"),
                total_pes: pes,
                mem_per_pe_mb: 1024,
                cpu_type: "x86-64".into(),
                flops_per_pe_sec: 1e9,
                fd_addr: "127.0.0.1".into(),
                fd_port: port as u16,
            },
            apps: vec!["namd".into()],
        }),
    ]
}

proptest! {
    /// Every representable request survives encode → decode intact.
    #[test]
    fn requests_round_trip(req in arb_request()) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &req).unwrap();
        let back: Request = read_frame(&mut Cursor::new(&buf)).unwrap().unwrap();
        prop_assert_eq!(back, req);
    }

    /// Several frames in one stream decode in order.
    #[test]
    fn streams_of_frames(reqs in prop::collection::vec(arb_request(), 1..10)) {
        let mut buf = Vec::new();
        for r in &reqs {
            write_frame(&mut buf, r).unwrap();
        }
        let mut cur = Cursor::new(&buf);
        for r in &reqs {
            let back: Request = read_frame(&mut cur).unwrap().unwrap();
            prop_assert_eq!(&back, r);
        }
        prop_assert!(read_frame::<_, Request>(&mut cur).unwrap().is_none(), "clean EOF");
    }

    /// Arbitrary garbage (with a small sane length prefix) never panics —
    /// it errors or, astronomically rarely, parses.
    #[test]
    fn garbage_never_panics(payload in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        buf.extend_from_slice(&payload);
        let _ = read_frame::<_, Request>(&mut Cursor::new(&buf));
        let _ = read_frame::<_, Response>(&mut Cursor::new(&buf));
    }

    /// Truncations of a valid frame are clean EOF (empty) or an error —
    /// never a wrong message.
    #[test]
    fn truncation_detected(req in arb_request(), cut in 0usize..64) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &req).unwrap();
        let cut = cut.min(buf.len().saturating_sub(1));
        let truncated = &buf[..buf.len() - 1 - cut];
        match read_frame::<_, Request>(&mut Cursor::new(truncated)) {
            Ok(None) => {} // truncated inside the length prefix: clean EOF
            Ok(Some(got)) => prop_assert!(false, "truncated frame parsed as {got:?}"),
            Err(_) => {} // detected
        }
    }
}
