//! Overload-protection integration tests: real sockets, tight limits.
//!
//! Exercises the E22 machinery end-to-end: the FD's payoff gate shedding
//! a bid storm, a client treating a saturated daemon as "no bid this
//! round" (breaker stays closed), the serve layer's inflight bound, the
//! deadline-shed fast path, and the retry loop's deadline cap.

use faucets_core::auth::SessionToken;
use faucets_core::bid::BidRequest;
use faucets_core::daemon::FaucetsDaemon;
use faucets_core::ids::{ClusterId, JobId};
use faucets_core::money::Money;
use faucets_core::qos::QosBuilder;
use faucets_net::fd::{spawn_fd_with, FdHandle, FdOptions};
use faucets_net::overload::breaker_state;
use faucets_net::prelude::*;
use faucets_net::proto::is_overload_error;
use faucets_sched::adaptive::ResizeCostModel;
use faucets_sched::cluster::Cluster;
use faucets_sched::equipartition::Equipartition;
use faucets_sched::machine::MachineSpec;
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier, Condvar, Mutex};
use std::time::{Duration, Instant};

fn spawn_daemon(fs: SocketAddr, aspect: SocketAddr, clock: Clock, opts: FdOptions) -> FdHandle {
    let machine = MachineSpec::commodity(ClusterId(1), "turing", 64);
    let daemon = FaucetsDaemon::new(
        machine.server_info("127.0.0.1", 0),
        ["namd".to_string()],
        Box::new(faucets_core::market::Baseline),
        Money::from_units_f64(0.01),
    );
    let cluster = Cluster::new(machine, Box::new(Equipartition), ResizeCostModel::default());
    spawn_fd_with("127.0.0.1:0", daemon, cluster, fs, aspect, clock, opts).expect("FD")
}

fn session(fs: SocketAddr, name: &str) -> (faucets_core::ids::UserId, SessionToken) {
    call(
        fs,
        &Request::CreateUser {
            user: name.into(),
            password: "pw".into(),
        },
    )
    .unwrap();
    match call(
        fs,
        &Request::Login {
            user: name.into(),
            password: "pw".into(),
        },
    )
    .unwrap()
    {
        Response::Session { user, token } => (user, token),
        other => panic!("expected session, got {other:?}"),
    }
}

/// A bid storm against an FD with a one-slot, one-waiter gate: most of
/// the flood is answered `Overloaded` and the gate's shed counter moves,
/// while at least one solicitation is served.
#[test]
fn fd_sheds_bid_storm_through_payoff_gate() {
    let clock = Clock::realtime();
    let fs = spawn_fs("127.0.0.1:0", clock.clone(), 51).unwrap();
    let aspect = spawn_appspector("127.0.0.1:0", fs.service.addr, 16).unwrap();
    let fd = spawn_daemon(
        fs.service.addr,
        aspect.service.addr,
        clock.clone(),
        FdOptions {
            bid_gate: GateConfig {
                max_inflight: 1,
                max_queue: 1,
            },
            bid_probe_floor: Duration::from_millis(150),
            ..FdOptions::default()
        },
    );
    let fd_addr = fd.service.addr;
    let (user, token) = session(fs.service.addr, "flooder");
    let qos = QosBuilder::new("namd", 4, 16, 100.0).build().unwrap();

    let before = faucets_telemetry::global()
        .snapshot()
        .counter_sum("fd_bid_sheds_total", &[]);
    let n = 8;
    let barrier = Arc::new(Barrier::new(n));
    let mut handles = vec![];
    for i in 0..n {
        let (barrier, token, qos, now) = (
            Arc::clone(&barrier),
            token.clone(),
            qos.clone(),
            clock.now(),
        );
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            call(
                fd_addr,
                &Request::RequestBid {
                    token,
                    request: BidRequest {
                        job: JobId(1000 + i as u64),
                        user,
                        qos,
                        issued_at: now,
                    },
                },
            )
        }));
    }
    let mut served = 0;
    let mut overloaded = 0;
    for h in handles {
        match h.join().unwrap() {
            Ok(Response::BidReply(_)) => served += 1,
            Err(e) if is_overload_error(&e) => overloaded += 1,
            other => panic!("unexpected bid outcome: {other:?}"),
        }
    }
    assert!(served >= 1, "the gate serves within its bound");
    assert!(overloaded >= 1, "a 1-slot gate sheds an 8-way storm");
    let after = faucets_telemetry::global()
        .snapshot()
        .counter_sum("fd_bid_sheds_total", &[]);
    assert!(after > before, "sheds counted in telemetry");
    fd.shutdown();
}

/// A daemon answering every solicitation `Overloaded` is busy, not dead:
/// the client records "no bid this round" (`AllDeclined`, never
/// `NegotiationExhausted`), counts the overloads, and keeps the peer's
/// breaker closed so the healthy-but-busy cluster is not evicted.
#[test]
fn client_treats_overloaded_daemon_as_no_bid_not_dead() {
    let clock = Clock::realtime();
    let fs = spawn_fs("127.0.0.1:0", clock.clone(), 52).unwrap();
    let aspect = spawn_appspector("127.0.0.1:0", fs.service.addr, 16).unwrap();
    // A "daemon" that is permanently saturated.
    let fake = serve("127.0.0.1:0", "fakefd", |_req| Response::Overloaded {
        retry_after_ms: 5,
    })
    .unwrap();
    let machine = MachineSpec::commodity(ClusterId(7), "drowning", 64);
    let info = machine.server_info("127.0.0.1", fake.addr.port());
    call(
        fs.service.addr,
        &Request::RegisterCluster {
            info,
            apps: vec!["namd".into()],
        },
    )
    .unwrap();

    let mut client =
        FaucetsClient::register(fs.service.addr, aspect.service.addr, clock, "gwen", "pw").unwrap();
    let before = faucets_telemetry::global()
        .snapshot()
        .counter("client_bids_overloaded_total");
    let qos = QosBuilder::new("namd", 4, 16, 100.0).build().unwrap();
    match client.submit(qos, &[]) {
        Err(ClientError::AllDeclined { solicited }) => assert_eq!(solicited, 1),
        other => panic!("expected AllDeclined, got {other:?}"),
    }
    let after = faucets_telemetry::global()
        .snapshot()
        .counter("client_bids_overloaded_total");
    assert!(
        after >= before + client.max_rounds as u64,
        "every round's overload counted ({before} -> {after})"
    );
    // Overloaded answers are breaker *successes*: the peer stays callable.
    assert_eq!(
        client.breakers.breaker(fake.addr).state_name(),
        breaker_state::CLOSED
    );
    fake.shutdown();
}

/// The serve layer's per-endpoint inflight bound: with one slot held by a
/// gated handler, a call issued while the slot is provably occupied
/// fast-fails `Overloaded` and the rejection is counted. The handler
/// signals entry and blocks on a condition variable until released, so
/// the test never depends on a fixed sleep outrunning the scheduler.
#[test]
fn serve_inflight_bound_fast_fails_excess_calls() {
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let entered = Arc::new((Mutex::new(false), Condvar::new()));
    let svc = serve_with(
        "127.0.0.1:0",
        "slowsvc",
        ServeOptions {
            limits: ServiceLimits::new(1),
            ..ServeOptions::default()
        },
        {
            let gate = Arc::clone(&gate);
            let entered = Arc::clone(&entered);
            move |_req| {
                let (flag, cv) = &*entered;
                *flag.lock().unwrap() = true;
                cv.notify_all();
                let (released, cv) = &*gate;
                let mut open = released.lock().unwrap();
                while !*open {
                    let (guard, timeout) = cv.wait_timeout(open, Duration::from_secs(10)).unwrap();
                    open = guard;
                    if timeout.timed_out() {
                        break; // fail-safe: never wedge the worker pool
                    }
                }
                Response::Ok
            }
        },
    )
    .unwrap();
    let addr = svc.addr;

    let holder = std::thread::spawn(move || {
        call(
            addr,
            &Request::Login {
                user: "x".into(),
                password: "y".into(),
            },
        )
    });
    // Wait until the slot is provably held before probing.
    {
        let (flag, cv) = &*entered;
        let mut inside = flag.lock().unwrap();
        while !*inside {
            let (guard, timeout) = cv.wait_timeout(inside, Duration::from_secs(10)).unwrap();
            inside = guard;
            assert!(!timeout.timed_out(), "handler never entered");
        }
    }
    match call(
        addr,
        &Request::Login {
            user: "x".into(),
            password: "y".into(),
        },
    ) {
        Err(e) if is_overload_error(&e) => {}
        other => panic!("excess call must be rejected, not queued: {other:?}"),
    }
    {
        let (released, cv) = &*gate;
        *released.lock().unwrap() = true;
        cv.notify_all();
    }
    match holder.join().unwrap() {
        Ok(Response::Ok) => {}
        other => panic!("the slot holder completes: {other:?}"),
    }
    let rejections = faucets_telemetry::global()
        .snapshot()
        .counter_sum("net_overload_rejections_total", &[("service", "slowsvc")]);
    assert!(rejections >= 1, "rejection counted for slowsvc");
    svc.shutdown();
}

/// A request arriving with `deadline_ms: 0` is doomed on arrival: the
/// serve layer sheds it before the handler runs and answers
/// `Overloaded { retry_after_ms: 0 }`.
#[test]
fn expired_deadline_is_shed_before_the_handler() {
    let svc = serve("127.0.0.1:0", "dlsvc", |_req| {
        panic!("doomed work must never reach the handler")
    })
    .unwrap();
    let mut stream = TcpStream::connect(svc.addr).unwrap();
    let env = Envelope {
        ctx: None,
        deadline_ms: Some(0),
        request_id: None,
        msg: Request::Login {
            user: "x".into(),
            password: "y".into(),
        },
    };
    write_frame(&mut stream, &env).unwrap();
    let reply: Envelope<Response> = read_frame(&mut stream).unwrap().expect("a reply frame");
    assert_eq!(reply.msg, Response::Overloaded { retry_after_ms: 0 });
    let sheds = faucets_telemetry::global()
        .snapshot()
        .counter_sum("net_deadline_sheds_total", &[("service", "dlsvc")]);
    assert!(sheds >= 1, "deadline shed counted for dlsvc");
    svc.shutdown();
}

/// The retry loop never backs off past the caller's deadline: against a
/// dead peer with a generous retry budget, a 300 ms deadline cuts the
/// attempt count short and records the exhaustion.
#[test]
fn call_deadline_caps_retry_wall_clock() {
    // Bind-then-drop yields an address that refuses connections fast.
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    // `Download` is an endpoint no other test in this binary calls, so
    // the per-endpoint counter deltas below are isolated even though the
    // tests share the process-global registry.
    let snapshot = |name: &str| {
        faucets_telemetry::global()
            .snapshot()
            .counter_sum(name, &[("endpoint", "Download")])
    };
    let (attempts0, exhausted0) = (
        snapshot("net_call_attempts_total"),
        snapshot("net_call_deadline_exhausted_total"),
    );
    let opts = CallOptions {
        retry: RetryPolicy {
            attempts: 8,
            base: Duration::from_millis(200),
            cap: Duration::from_millis(200),
            jitter: 0.0,
            seed: 7,
        },
        deadline: Some(Duration::from_millis(300)),
        ..CallOptions::default()
    };
    let started = Instant::now();
    let err = call_with(
        dead,
        &Request::Download {
            token: SessionToken("t".into()),
            job: JobId(1),
            name: "out.dat".into(),
        },
        &opts,
    )
    .expect_err("dead peer");
    assert!(!is_overload_error(&err), "a dead peer is not 'overloaded'");
    assert!(
        started.elapsed() < Duration::from_millis(1200),
        "without the deadline cap this would sleep 7 x 200 ms"
    );
    let attempts = snapshot("net_call_attempts_total") - attempts0;
    assert!(
        (1..8).contains(&attempts),
        "deadline cut the retry budget short (made {attempts} attempts)"
    );
    assert!(
        snapshot("net_call_deadline_exhausted_total") > exhausted0,
        "exhaustion counted"
    );
}
