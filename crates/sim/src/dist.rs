//! Random-variate distributions used by workload generators.
//!
//! Implemented from first principles on top of `rand`'s uniform source so the
//! dependency set stays small and the math is auditable: inverse-transform
//! sampling for exponential/Pareto/Weibull, Box–Muller for the normal family.
//! Parallel-workload literature (and the paper's own framing of "patterns of
//! job submissions") calls for heavy-tailed runtimes and Poisson-like
//! arrivals, which these primitives provide.

use rand::Rng;

/// A real-valued distribution that can be sampled with any RNG.
pub trait Dist {
    /// Draw one variate.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;

    /// The distribution mean (exact, for generator calibration).
    fn mean(&self) -> f64;
}

/// Draw a uniform in the open interval (0, 1) — never exactly 0, so it is
/// safe to take logarithms.
fn open01<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.random();
        if u > 0.0 {
            return u;
        }
    }
}

/// Continuous uniform on `[lo, hi)`.
#[derive(Debug, Clone, Copy)]
pub struct UniformDist {
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (exclusive).
    pub hi: f64,
}

impl UniformDist {
    /// A uniform over `[lo, hi)`. Requires `lo <= hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "uniform bounds out of order: [{lo}, {hi})");
        UniformDist { lo, hi }
    }
}

impl Dist for UniformDist {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.lo == self.hi {
            return self.lo;
        }
        rng.random_range(self.lo..self.hi)
    }
    fn mean(&self) -> f64 {
        (self.lo + self.hi) / 2.0
    }
}

/// Exponential with rate `lambda` (mean `1/lambda`). The inter-arrival
/// distribution of a Poisson process.
#[derive(Debug, Clone, Copy)]
pub struct Exp {
    /// Rate parameter (events per unit time); must be positive.
    pub lambda: f64,
}

impl Exp {
    /// An exponential with the given rate.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda > 0.0,
            "exponential rate must be positive, got {lambda}"
        );
        Exp { lambda }
    }

    /// An exponential with the given mean.
    pub fn with_mean(mean: f64) -> Self {
        Exp::new(1.0 / mean)
    }
}

impl Dist for Exp {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        -open01(rng).ln() / self.lambda
    }
    fn mean(&self) -> f64 {
        1.0 / self.lambda
    }
}

/// Pareto (power-law) with scale `x_min` and shape `alpha`; heavy-tailed for
/// small `alpha`. Used for job runtimes, which are famously heavy-tailed.
#[derive(Debug, Clone, Copy)]
pub struct Pareto {
    /// Minimum value (scale); must be positive.
    pub x_min: f64,
    /// Tail exponent (shape); must be positive.
    pub alpha: f64,
}

impl Pareto {
    /// A Pareto with the given scale and shape.
    pub fn new(x_min: f64, alpha: f64) -> Self {
        assert!(x_min > 0.0 && alpha > 0.0, "pareto params must be positive");
        Pareto { x_min, alpha }
    }
}

impl Dist for Pareto {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.x_min / open01(rng).powf(1.0 / self.alpha)
    }
    fn mean(&self) -> f64 {
        if self.alpha <= 1.0 {
            f64::INFINITY
        } else {
            self.alpha * self.x_min / (self.alpha - 1.0)
        }
    }
}

/// A distribution truncated to `[lo, hi]` by resampling (up to a bound, then
/// clamping). Keeps heavy tails bounded so simulations terminate.
#[derive(Debug, Clone, Copy)]
pub struct Truncated<D> {
    /// The underlying distribution.
    pub inner: D,
    /// Lower clamp.
    pub lo: f64,
    /// Upper clamp.
    pub hi: f64,
}

impl<D: Dist> Truncated<D> {
    /// Truncate `inner` to `[lo, hi]`.
    pub fn new(inner: D, lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "truncation bounds out of order");
        Truncated { inner, lo, hi }
    }
}

impl<D: Dist> Dist for Truncated<D> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        for _ in 0..64 {
            let x = self.inner.sample(rng);
            if x >= self.lo && x <= self.hi {
                return x;
            }
        }
        self.inner.sample(rng).clamp(self.lo, self.hi)
    }
    fn mean(&self) -> f64 {
        // Approximation: callers needing the exact truncated mean should
        // estimate it empirically; we clamp the untruncated mean.
        self.inner.mean().clamp(self.lo, self.hi)
    }
}

/// Standard normal via Box–Muller.
fn std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1 = open01(rng);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Log-normal: `exp(mu + sigma * N(0,1))`. The classic model for parallel
/// job runtimes (Lublin–Feitelson style workloads are log-uniform/log-normal).
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    /// Mean of the underlying normal.
    pub mu: f64,
    /// Standard deviation of the underlying normal; non-negative.
    pub sigma: f64,
}

impl LogNormal {
    /// A log-normal with underlying normal parameters `(mu, sigma)`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        LogNormal { mu, sigma }
    }

    /// Construct from the desired *median* and sigma (median = exp(mu)).
    pub fn with_median(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0, "median must be positive");
        LogNormal::new(median.ln(), sigma)
    }
}

impl Dist for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * std_normal(rng)).exp()
    }
    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

/// Weibull with scale `lambda` and shape `k`. `k < 1` gives a heavy tail,
/// `k = 1` is exponential.
#[derive(Debug, Clone, Copy)]
pub struct Weibull {
    /// Scale; positive.
    pub lambda: f64,
    /// Shape; positive.
    pub k: f64,
}

impl Weibull {
    /// A Weibull with the given scale and shape.
    pub fn new(lambda: f64, k: f64) -> Self {
        assert!(lambda > 0.0 && k > 0.0, "weibull params must be positive");
        Weibull { lambda, k }
    }
}

impl Dist for Weibull {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.lambda * (-open01(rng).ln()).powf(1.0 / self.k)
    }
    fn mean(&self) -> f64 {
        self.lambda * gamma(1.0 + 1.0 / self.k)
    }
}

/// Lanczos approximation of the gamma function (for Weibull means).
fn gamma(x: f64) -> f64 {
    // g = 7, n = 9 Lanczos coefficients.
    const G: f64 = 7.0;
    #[allow(clippy::excessive_precision)]
    const C: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = C[0];
        let t = x + G + 0.5;
        for (i, &c) in C.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        std::f64::consts::TAU.sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

/// Discrete distribution over `0..weights.len()` with the given weights.
#[derive(Debug, Clone)]
pub struct Categorical {
    cumulative: Vec<f64>,
}

impl Categorical {
    /// Build from non-negative weights (not necessarily normalized).
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "categorical needs at least one weight");
        assert!(
            weights.iter().all(|&w| w >= 0.0),
            "weights must be non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "at least one weight must be positive");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            acc += w / total;
            cumulative.push(acc);
        }
        *cumulative.last_mut().unwrap() = 1.0;
        Categorical { cumulative }
    }

    /// Draw an index.
    pub fn sample_index<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.cumulative.len() - 1)
    }
}

/// Zipf-like discrete distribution over ranks `1..=n` with exponent `s`
/// (popularity skew for e.g. which application a user submits).
#[derive(Debug, Clone)]
pub struct Zipf {
    cat: Categorical,
}

impl Zipf {
    /// A Zipf over `n` ranks with exponent `s`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        let weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
        Zipf {
            cat: Categorical::new(&weights),
        }
    }

    /// Draw a rank in `1..=n`.
    pub fn sample_rank<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.cat.sample_index(rng) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical_mean<D: Dist>(d: &D, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean_converges() {
        let d = Exp::with_mean(4.0);
        let m = empirical_mean(&d, 200_000, 1);
        assert!((m - 4.0).abs() < 0.05, "exp mean {m} != 4.0");
        assert!((d.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = UniformDist::new(2.0, 6.0);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((2.0..6.0).contains(&x));
        }
        let m = empirical_mean(&d, 100_000, 3);
        assert!((m - 4.0).abs() < 0.05);
    }

    #[test]
    fn degenerate_uniform() {
        let d = UniformDist::new(3.0, 3.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(d.sample(&mut rng), 3.0);
    }

    #[test]
    fn pareto_respects_minimum_and_mean() {
        let d = Pareto::new(10.0, 2.5);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 10.0);
        }
        // mean = alpha*xmin/(alpha-1) = 25/1.5
        let expect = 2.5 * 10.0 / 1.5;
        let m = empirical_mean(&d, 400_000, 5);
        assert!(
            (m - expect).abs() / expect < 0.05,
            "pareto mean {m} != {expect}"
        );
    }

    #[test]
    fn pareto_heavy_tail_mean_is_infinite() {
        assert!(Pareto::new(1.0, 0.9).mean().is_infinite());
    }

    #[test]
    fn truncated_stays_in_bounds() {
        let d = Truncated::new(Pareto::new(1.0, 1.1), 2.0, 100.0);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((2.0..=100.0).contains(&x), "out of bounds: {x}");
        }
    }

    #[test]
    fn lognormal_median_is_exp_mu() {
        let d = LogNormal::with_median(100.0, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut samples: Vec<f64> = (0..100_001).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((median - 100.0).abs() / 100.0 < 0.05, "median {median}");
    }

    #[test]
    fn lognormal_mean_formula() {
        let d = LogNormal::new(0.0, 0.5);
        let m = empirical_mean(&d, 400_000, 8);
        assert!(
            (m - d.mean()).abs() / d.mean() < 0.02,
            "{m} vs {}",
            d.mean()
        );
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let d = Weibull::new(3.0, 1.0);
        assert!(
            (d.mean() - 3.0).abs() < 1e-6,
            "gamma(2)=1 so mean=lambda, got {}",
            d.mean()
        );
        let m = empirical_mean(&d, 200_000, 9);
        assert!((m - 3.0).abs() < 0.05);
    }

    #[test]
    fn gamma_known_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-9);
        assert!((gamma(2.0) - 1.0).abs() < 1e-9);
        assert!((gamma(5.0) - 24.0).abs() < 1e-6);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn categorical_frequencies_match_weights() {
        let c = Categorical::new(&[1.0, 3.0, 6.0]);
        let mut rng = StdRng::seed_from_u64(10);
        let mut counts = [0usize; 3];
        for _ in 0..100_000 {
            counts[c.sample_index(&mut rng)] += 1;
        }
        assert!((counts[0] as f64 / 100_000.0 - 0.1).abs() < 0.01);
        assert!((counts[1] as f64 / 100_000.0 - 0.3).abs() < 0.01);
        assert!((counts[2] as f64 / 100_000.0 - 0.6).abs() < 0.01);
    }

    #[test]
    fn zipf_rank_one_most_popular() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 11];
        for _ in 0..50_000 {
            counts[z.sample_rank(&mut rng)] += 1;
        }
        assert_eq!(counts[0], 0, "rank 0 never drawn");
        assert!(counts[1] > counts[2] && counts[2] > counts[5]);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exp_rejects_zero_rate() {
        Exp::new(0.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let d = Exp::new(1.0);
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..5).map(|_| d.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..5).map(|_| d.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
