//! Pending-event set abstractions.
//!
//! The engine is generic over the pending-event set so the calendar queue of
//! [`crate::calendar`] can be swapped in for the default binary heap. This is
//! exactly the knob experiment E10 (DES scalability) turns.

use crate::event::{EventId, Scheduled};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A priority queue of timestamped events, ordered by `(time, id)`.
pub trait EventQueue<E> {
    /// Insert an event. `id` must be unique for the lifetime of the queue.
    fn push(&mut self, time: SimTime, id: EventId, payload: E);
    /// Remove and return the earliest event (lowest `(time, id)` key).
    fn pop(&mut self) -> Option<Scheduled<E>>;
    /// The firing time of the earliest event, if any.
    fn peek_time(&self) -> Option<SimTime>;
    /// Number of pending events.
    fn len(&self) -> usize;
    /// True when no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Heap entry; ordering is inverted so `BinaryHeap` (a max-heap) pops the
/// earliest key first. Only `(time, id)` participates in the order.
struct Entry<E> {
    time: SimTime,
    id: EventId,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.id == other.id
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: smaller (time, id) is "greater" for the max-heap.
        (other.time, other.id).cmp(&(self.time, self.id))
    }
}

/// The default pending-event set: a binary min-heap keyed by `(time, id)`.
pub struct BinaryHeapQueue<E> {
    heap: BinaryHeap<Entry<E>>,
}

impl<E> BinaryHeapQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        BinaryHeapQueue {
            heap: BinaryHeap::new(),
        }
    }

    /// An empty queue with room for `cap` events before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        BinaryHeapQueue {
            heap: BinaryHeap::with_capacity(cap),
        }
    }
}

impl<E> Default for BinaryHeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> for BinaryHeapQueue<E> {
    fn push(&mut self, time: SimTime, id: EventId, payload: E) {
        self.heap.push(Entry { time, id, payload });
    }

    fn pop(&mut self) -> Option<Scheduled<E>> {
        self.heap.pop().map(|e| Scheduled {
            time: e.time,
            id: e.id,
            payload: e.payload,
        })
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<Q: EventQueue<u32>>(q: &mut Q) -> Vec<(u64, u64, u32)> {
        let mut out = vec![];
        while let Some(s) = q.pop() {
            out.push((s.time.0, s.id.0, s.payload));
        }
        out
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = BinaryHeapQueue::new();
        q.push(SimTime(30), EventId(0), 3u32);
        q.push(SimTime(10), EventId(1), 1);
        q.push(SimTime(20), EventId(2), 2);
        assert_eq!(q.peek_time(), Some(SimTime(10)));
        assert_eq!(drain(&mut q), vec![(10, 1, 1), (20, 2, 2), (30, 0, 3)]);
    }

    #[test]
    fn same_time_ties_break_by_id_fifo() {
        let mut q = BinaryHeapQueue::new();
        for id in [5u64, 2, 9, 0] {
            q.push(SimTime(7), EventId(id), id as u32);
        }
        let ids: Vec<u64> = drain(&mut q).into_iter().map(|(_, id, _)| id).collect();
        assert_eq!(ids, vec![0, 2, 5, 9]);
    }

    #[test]
    fn empty_behaviour() {
        let mut q = BinaryHeapQueue::<()>::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.peek_time(), None);
        assert!(q.pop().is_none());
    }
}
