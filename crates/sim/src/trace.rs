//! Lightweight simulation tracing.
//!
//! A [`Trace`] is a bounded ring buffer of timestamped strings that worlds
//! can append to; experiments dump it on failure to see the last N decisions
//! without paying for unbounded logging on multi-million-event runs.

use crate::time::SimTime;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// A bounded ring buffer of timestamped trace records.
#[derive(Debug, Clone)]
pub struct Trace {
    records: VecDeque<(SimTime, String)>,
    capacity: usize,
    dropped: u64,
    enabled: bool,
}

impl Trace {
    /// A trace retaining at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        Trace {
            records: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
            enabled: true,
        }
    }

    /// A disabled trace: all appends are no-ops (zero overhead paths can
    /// check [`Trace::is_enabled`] to skip formatting entirely).
    pub fn disabled() -> Self {
        let mut t = Trace::new(0);
        t.enabled = false;
        t
    }

    /// Whether records are being retained.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Append a record at simulation time `t`.
    pub fn log(&mut self, t: SimTime, msg: impl Into<String>) {
        if !self.enabled {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        if self.capacity > 0 {
            self.records.push_back((t, msg.into()));
        } else {
            self.dropped += 1;
        }
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted (or refused) due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterate retained records oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, &str)> {
        self.records.iter().map(|(t, s)| (*t, s.as_str()))
    }

    /// Render the retained records as one string, one per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            let _ = writeln!(out, "... {} earlier records dropped ...", self.dropped);
        }
        for (t, s) in self.iter() {
            let _ = writeln!(out, "[{t}] {s}");
        }
        out
    }
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new(1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_in_order() {
        let mut t = Trace::new(10);
        t.log(SimTime::from_secs(1), "a");
        t.log(SimTime::from_secs(2), "b");
        let v: Vec<_> = t.iter().map(|(_, s)| s.to_string()).collect();
        assert_eq!(v, vec!["a", "b"]);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn evicts_oldest_when_full() {
        let mut t = Trace::new(2);
        t.log(SimTime::ZERO, "a");
        t.log(SimTime::ZERO, "b");
        t.log(SimTime::ZERO, "c");
        let v: Vec<_> = t.iter().map(|(_, s)| s.to_string()).collect();
        assert_eq!(v, vec!["b", "c"]);
        assert_eq!(t.dropped(), 1);
        assert!(t.render().contains("1 earlier records dropped"));
    }

    #[test]
    fn disabled_trace_ignores_everything() {
        let mut t = Trace::disabled();
        t.log(SimTime::ZERO, "x");
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn render_formats_timestamps() {
        let mut t = Trace::new(4);
        t.log(SimTime::from_secs(3), "hello");
        assert_eq!(t.render(), "[3.00s] hello\n");
    }
}
