//! Streaming statistics collectors.
//!
//! Experiments run for millions of simulated jobs, so every collector here is
//! O(1) memory: Welford for mean/variance, the P² algorithm for quantiles,
//! log-binned histograms, and time-weighted averages for utilization-style
//! metrics (value × duration integrals over simulated time).

use crate::time::{SimDuration, SimTime};

/// Welford online mean / variance / min / max.
///
/// Non-finite observations (NaN, ±∞) are skipped and counted separately —
/// a single bad latency sample must not poison the mean or abort a
/// million-job experiment.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    non_finite: u64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            non_finite: 0,
        }
    }

    /// Record one observation. Non-finite values are skipped and counted
    /// in [`Summary::non_finite`] instead of corrupting the moments.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            self.non_finite += 1;
            return;
        }
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of (finite) observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Observations rejected for being NaN or infinite.
    pub fn non_finite(&self) -> u64 {
        self.non_finite
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n-1 denominator; 0 for fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (NaN if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (NaN if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merge another summary into this one (parallel Welford combine).
    pub fn merge(&mut self, other: &Summary) {
        self.non_finite += other.non_finite;
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            let non_finite = self.non_finite;
            *self = other.clone();
            self.non_finite = non_finite;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// P² (Jain & Chlamtac) single-quantile estimator: O(1) memory, no sample
/// retention. Good to a few percent for the long-tailed metrics we track.
///
/// Non-finite observations are skipped and counted ([`P2Quantile::non_finite`]):
/// one NaN inside the marker array would otherwise wreck every subsequent
/// interpolation — and, before this guard, panicked the initial sort.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights (the first 5 observations until initialized).
    q: [f64; 5],
    /// Marker positions.
    pos: [f64; 5],
    /// Desired marker positions.
    want: [f64; 5],
    n: u64,
    non_finite: u64,
}

impl P2Quantile {
    /// An estimator for the `p`-quantile, `0 < p < 1`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0,1), got {p}");
        P2Quantile {
            p,
            q: [0.0; 5],
            pos: [1.0, 2.0, 3.0, 4.0, 5.0],
            want: [0.0; 5],
            n: 0,
            non_finite: 0,
        }
    }

    /// Record one observation. Non-finite values are skipped and counted
    /// in [`P2Quantile::non_finite`].
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            self.non_finite += 1;
            return;
        }
        self.n += 1;
        if self.n <= 5 {
            self.q[(self.n - 1) as usize] = x;
            if self.n == 5 {
                self.q.sort_by(f64::total_cmp);
                self.want = [
                    1.0,
                    1.0 + 2.0 * self.p,
                    1.0 + 4.0 * self.p,
                    3.0 + 2.0 * self.p,
                    5.0,
                ];
            }
            return;
        }

        // Locate the cell x falls into and bump marker positions.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            (0..4).find(|&i| x < self.q[i + 1]).unwrap()
        };
        for i in (k + 1)..5 {
            self.pos[i] += 1.0;
        }
        let incr = [0.0, self.p / 2.0, self.p, (1.0 + self.p) / 2.0, 1.0];
        for (w, d) in self.want.iter_mut().zip(incr) {
            *w += d;
        }

        // Adjust interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.want[i] - self.pos[i];
            let right = self.pos[i + 1] - self.pos[i];
            let left = self.pos[i - 1] - self.pos[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let qp = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    qp
                } else {
                    self.linear(i, d)
                };
                self.pos[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.q;
        let n = &self.pos;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.pos[j] - self.pos[i])
    }

    /// Current quantile estimate (exact for n ≤ 5).
    pub fn estimate(&self) -> f64 {
        if self.n == 0 {
            return f64::NAN;
        }
        if self.n <= 5 {
            let mut v: Vec<f64> = self.q[..self.n as usize].to_vec();
            v.sort_by(f64::total_cmp);
            let idx = ((self.n as f64 - 1.0) * self.p).round() as usize;
            return v[idx];
        }
        self.q[2]
    }

    /// Count of (finite) observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Observations rejected for being NaN or infinite.
    pub fn non_finite(&self) -> u64 {
        self.non_finite
    }
}

/// The standard latency-quantile battery (p50/p90/p99/p999) as one O(1)
/// collector: four [`P2Quantile`] estimators fed from a single `record`
/// call. The open-loop load harness (`crates/load`) tracks every class's
/// submit and completion latency through one of these, so tail claims
/// ("p999 under load") cost four marker arrays, not a sample buffer.
///
/// Non-finite observations are skipped and counted once (the underlying
/// estimators each skip them; [`QuantileSet::non_finite`] reads one).
#[derive(Debug, Clone)]
pub struct QuantileSet {
    p50: P2Quantile,
    p90: P2Quantile,
    p99: P2Quantile,
    p999: P2Quantile,
}

impl Default for QuantileSet {
    fn default() -> Self {
        QuantileSet::new()
    }
}

impl QuantileSet {
    /// An empty p50/p90/p99/p999 battery.
    pub fn new() -> Self {
        QuantileSet {
            p50: P2Quantile::new(0.5),
            p90: P2Quantile::new(0.9),
            p99: P2Quantile::new(0.99),
            p999: P2Quantile::new(0.999),
        }
    }

    /// Record one observation into all four estimators.
    pub fn record(&mut self, x: f64) {
        self.p50.record(x);
        self.p90.record(x);
        self.p99.record(x);
        self.p999.record(x);
    }

    /// Median estimate (NaN when empty).
    pub fn p50(&self) -> f64 {
        self.p50.estimate()
    }

    /// 90th-percentile estimate (NaN when empty).
    pub fn p90(&self) -> f64 {
        self.p90.estimate()
    }

    /// 99th-percentile estimate (NaN when empty).
    pub fn p99(&self) -> f64 {
        self.p99.estimate()
    }

    /// 99.9th-percentile estimate (NaN when empty).
    pub fn p999(&self) -> f64 {
        self.p999.estimate()
    }

    /// Count of (finite) observations.
    pub fn count(&self) -> u64 {
        self.p50.count()
    }

    /// Observations rejected for being NaN or infinite.
    pub fn non_finite(&self) -> u64 {
        self.p50.non_finite()
    }
}

/// A histogram with logarithmic (powers-of-two) bins over positive values.
#[derive(Debug, Clone, Default)]
pub struct LogHistogram {
    /// counts[i] covers values in [2^i, 2^(i+1)); counts[0] also catches <1.
    counts: Vec<u64>,
    total: u64,
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![],
            total: 0,
        }
    }

    fn bin_of(x: f64) -> usize {
        if x < 1.0 {
            0
        } else {
            (x.log2().floor() as usize).min(63)
        }
    }

    /// Record a value (negative values count into bin 0).
    pub fn record(&mut self, x: f64) {
        let b = Self::bin_of(x.max(0.0));
        if b >= self.counts.len() {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        self.total += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Iterate (bin_low, bin_high, count) for non-empty bins.
    pub fn bins(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let lo = if i == 0 { 0.0 } else { (1u64 << i) as f64 };
                let hi = (1u64 << (i + 1)) as f64;
                (lo, hi, c)
            })
    }

    /// Merge another histogram into this one: the result is exactly the
    /// histogram of the concatenated streams (bins are fixed, so merging is
    /// lossless, unlike P²).
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
    }

    /// Fraction of observations at or below `x` (upper bound via bin edges).
    pub fn fraction_le(&self, x: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let b = Self::bin_of(x.max(0.0));
        let below: u64 = self.counts.iter().take(b + 1).sum();
        below as f64 / self.total as f64
    }
}

/// Time-weighted average of a step function of simulated time — the right
/// tool for utilization: Σ value·dt / Σ dt.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    weighted_sum: f64,
    elapsed: SimDuration,
}

impl TimeWeighted {
    /// Start tracking at `t0` with initial value `v0`.
    pub fn new(t0: SimTime, v0: f64) -> Self {
        TimeWeighted {
            last_time: t0,
            last_value: v0,
            weighted_sum: 0.0,
            elapsed: SimDuration::ZERO,
        }
    }

    /// Record that the value changed to `v` at time `t` (must be ≥ the last
    /// update time; equal-time updates just replace the value).
    pub fn update(&mut self, t: SimTime, v: f64) {
        assert!(
            t >= self.last_time,
            "time-weighted updates must be monotone"
        );
        let dt = t - self.last_time;
        self.weighted_sum += self.last_value * dt.as_secs_f64();
        self.elapsed += dt;
        self.last_time = t;
        self.last_value = v;
    }

    /// Close the integral at time `t` and return the time-weighted mean.
    pub fn mean_until(&mut self, t: SimTime) -> f64 {
        self.update(t, self.last_value);
        if self.elapsed.is_zero() {
            self.last_value
        } else {
            self.weighted_sum / self.elapsed.as_secs_f64()
        }
    }

    /// The current (instantaneous) value.
    pub fn current(&self) -> f64 {
        self.last_value
    }

    /// The time of the most recent update.
    pub fn last_time(&self) -> SimTime {
        self.last_time
    }

    /// The integral Σ value·dt so far, in value·seconds.
    pub fn integral(&self) -> f64 {
        self.weighted_sum
    }
}

/// Independent-replication statistics: run an experiment at several seeds
/// and report mean ± 95 % confidence half-width (Student t). The §5.4
/// methodology for claims that should not hinge on one random stream.
#[derive(Debug, Clone, Default)]
pub struct Replications {
    values: Vec<f64>,
}

impl Replications {
    /// An empty set of replications.
    pub fn new() -> Self {
        Replications::default()
    }

    /// Run `f` at seeds `0..n` and collect one response per replication.
    pub fn run(n: u64, mut f: impl FnMut(u64) -> f64) -> Self {
        let mut r = Replications::new();
        for seed in 0..n {
            r.record(f(seed));
        }
        r
    }

    /// Record one replication's response.
    pub fn record(&mut self, x: f64) {
        self.values.push(x);
    }

    /// Number of replications.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return f64::NAN;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Sample standard deviation (n-1).
    pub fn stddev(&self) -> f64 {
        let n = self.values.len();
        if n < 2 {
            return 0.0;
        }
        let m = self.mean();
        (self.values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (n - 1) as f64).sqrt()
    }

    /// Two-sided 95 % confidence half-width (0 for fewer than 2 reps).
    pub fn ci95_half_width(&self) -> f64 {
        let n = self.values.len();
        if n < 2 {
            return 0.0;
        }
        t95(n - 1) * self.stddev() / (n as f64).sqrt()
    }

    /// `"mean ± half"` with the given precision.
    pub fn format(&self, decimals: usize) -> String {
        format!(
            "{:.d$} ± {:.d$}",
            self.mean(),
            self.ci95_half_width(),
            d = decimals
        )
    }

    /// True if this set's 95 % CI excludes `other`'s mean and vice versa —
    /// a quick separation check for "A beats B" claims.
    pub fn clearly_differs_from(&self, other: &Replications) -> bool {
        (self.mean() - other.mean()).abs() > self.ci95_half_width() + other.ci95_half_width()
    }
}

/// Two-sided 95 % Student-t critical value for `df` degrees of freedom.
fn t95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        f64::INFINITY
    } else if df <= TABLE.len() {
        TABLE[df - 1]
    } else {
        1.960
    }
}

/// A plain monotonically increasing counter with a name-free interface.
#[derive(Debug, Clone, Copy, Default)]
pub struct Counter(pub u64);

impl Counter {
    /// Increment by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_nan());
    }

    #[test]
    fn summary_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.7).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &x in &data {
            whole.record(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &data[..37] {
            a.record(x);
        }
        for &x in &data[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    /// Deterministic pseudo-uniform stream in [0, 1) via an integer LCG.
    fn lcg_stream(n: usize) -> impl Iterator<Item = f64> {
        let mut state: u64 = 12345;
        std::iter::repeat_with(move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        })
        .take(n)
    }

    #[test]
    fn p2_median_of_uniform_stream() {
        let mut q = P2Quantile::new(0.5);
        for u in lcg_stream(50_000) {
            q.record(u);
        }
        let est = q.estimate();
        assert!((est - 0.5).abs() < 0.02, "median estimate {est}");
    }

    #[test]
    fn p2_p99_of_exponential_like_stream() {
        let mut q = P2Quantile::new(0.99);
        for u in lcg_stream(200_000) {
            let x = -(1.0 - u.min(0.999_999)).ln(); // Exp(1)
            q.record(x);
        }
        // True p99 of Exp(1) is ln(100) ≈ 4.605.
        let est = q.estimate();
        assert!((est - 4.605).abs() < 0.4, "p99 estimate {est}");
    }

    #[test]
    fn summary_skips_and_counts_non_finite() {
        let mut s = Summary::new();
        s.record(1.0);
        s.record(f64::NAN);
        s.record(3.0);
        s.record(f64::INFINITY);
        s.record(f64::NEG_INFINITY);
        assert_eq!(s.count(), 2, "only finite observations counted");
        assert_eq!(s.non_finite(), 3);
        assert!((s.mean() - 2.0).abs() < 1e-12, "NaN never reached the mean");
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 3.0);
        // Merging propagates the rejected count in both directions.
        let mut empty = Summary::new();
        empty.record(f64::NAN);
        empty.merge(&s);
        assert_eq!(empty.count(), 2);
        assert_eq!(empty.non_finite(), 4);
    }

    #[test]
    fn p2_survives_nan_in_first_five_and_beyond() {
        // Regression: a NaN among the first 5 samples panicked the
        // initial marker sort via partial_cmp().unwrap(); a NaN later
        // silently wrecked the marker invariants. Both are now skipped.
        let mut q = P2Quantile::new(0.5);
        for x in [3.0, f64::NAN, 1.0, 2.0] {
            q.record(x);
        }
        assert_eq!(q.estimate(), 2.0, "exact small-n median ignores the NaN");
        for x in [5.0, 4.0, f64::NAN, 6.0, 7.0, 8.0] {
            q.record(x);
        }
        assert_eq!(q.count(), 8);
        assert_eq!(q.non_finite(), 2);
        let est = q.estimate();
        assert!(est.is_finite(), "markers stayed finite, got {est}");
        assert!((1.0..=8.0).contains(&est), "median within range, got {est}");
        // A long NaN-free tail still converges normally afterwards.
        for u in lcg_stream(50_000) {
            q.record(u * 8.0);
        }
        let est = q.estimate();
        assert!((est - 4.0).abs() < 0.3, "median estimate {est}");
    }

    #[test]
    fn p2_small_n_exact() {
        let mut q = P2Quantile::new(0.5);
        q.record(3.0);
        q.record(1.0);
        q.record(2.0);
        assert_eq!(q.estimate(), 2.0);
    }

    #[test]
    fn quantile_set_tracks_uniform_tails() {
        let mut q = QuantileSet::new();
        for u in lcg_stream(100_000) {
            q.record(u);
        }
        assert_eq!(q.count(), 100_000);
        assert!((q.p50() - 0.5).abs() < 0.02, "p50 {}", q.p50());
        assert!((q.p90() - 0.9).abs() < 0.02, "p90 {}", q.p90());
        assert!((q.p99() - 0.99).abs() < 0.01, "p99 {}", q.p99());
        assert!((q.p999() - 0.999).abs() < 0.005, "p999 {}", q.p999());
        q.record(f64::NAN);
        assert_eq!(q.non_finite(), 1);
    }

    #[test]
    fn log_histogram_bins_and_cdf() {
        let mut h = LogHistogram::new();
        for x in [0.5, 1.5, 3.0, 3.9, 100.0] {
            h.record(x);
        }
        assert_eq!(h.count(), 5);
        let bins: Vec<_> = h.bins().collect();
        assert_eq!(bins[0], (0.0, 2.0, 2)); // 0.5 and 1.5
        assert!(h.fraction_le(4.0) >= 0.8 - 1e-9);
        assert!((h.fraction_le(1000.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_step_function() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.update(SimTime::from_secs(10), 1.0); // 0 for 10s
        tw.update(SimTime::from_secs(20), 0.5); // 1 for 10s
        let m = tw.mean_until(SimTime::from_secs(40)); // 0.5 for 20s
                                                       // (0*10 + 1*10 + 0.5*20) / 40 = 0.5
        assert!((m - 0.5).abs() < 1e-12);
        assert_eq!(tw.current(), 0.5);
    }

    #[test]
    fn time_weighted_zero_span() {
        let mut tw = TimeWeighted::new(SimTime::from_secs(5), 3.0);
        assert_eq!(tw.mean_until(SimTime::from_secs(5)), 3.0);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn time_weighted_rejects_backwards_time() {
        let mut tw = TimeWeighted::new(SimTime::from_secs(5), 0.0);
        tw.update(SimTime::from_secs(1), 1.0);
    }

    #[test]
    fn replications_ci() {
        // Known data: 10, 12, 14 → mean 12, sd 2, t95(2)=4.303.
        let mut r = Replications::new();
        for v in [10.0, 12.0, 14.0] {
            r.record(v);
        }
        assert_eq!(r.count(), 3);
        assert!((r.mean() - 12.0).abs() < 1e-12);
        assert!((r.stddev() - 2.0).abs() < 1e-12);
        let half = 4.303 * 2.0 / 3.0_f64.sqrt();
        assert!((r.ci95_half_width() - half).abs() < 1e-9);
        assert!(r.format(1).starts_with("12.0 ±"));
    }

    #[test]
    fn replications_run_and_separation() {
        let a = Replications::run(10, |s| 100.0 + (s % 3) as f64);
        let b = Replications::run(10, |s| 200.0 + (s % 3) as f64);
        assert!(a.clearly_differs_from(&b));
        let c = Replications::run(10, |s| 100.1 + (s % 3) as f64);
        assert!(!a.clearly_differs_from(&c));
    }

    #[test]
    fn replications_degenerate() {
        let r = Replications::new();
        assert!(r.mean().is_nan());
        let one = Replications::run(1, |_| 5.0);
        assert_eq!(one.ci95_half_width(), 0.0);
    }

    #[test]
    fn counter() {
        let mut c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }
}
