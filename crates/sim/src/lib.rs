//! # faucets-sim — discrete-event simulation substrate
//!
//! The simulation framework described in §5.4 of *Faucets: Efficient
//! Resource Allocation on the Computational Grid* (ICPP 2004): every entity
//! in the Faucets system — clients, Compute Servers, the Faucets Server, job
//! schedulers with their bid-generation algorithms, and application programs
//! — is represented by an object inside a [`engine::World`], and
//! discrete-event simulation is carried out over patterns of job submissions
//! under study.
//!
//! The crate is domain-agnostic: it provides
//!
//! * a fixed-point simulation clock ([`time`]),
//! * an engine with cancellation, horizons and event budgets ([`engine`]),
//! * two interchangeable pending-event sets — a binary heap ([`queue`]) and a
//!   calendar queue ([`calendar`]) — benchmarked against each other in
//!   experiment E10,
//! * random-variate distributions for workload generation ([`dist`]),
//! * O(1)-memory streaming statistics ([`stats`]), and
//! * bounded tracing ([`trace`]).
//!
//! The grid-level model built on top of this engine lives in `faucets-grid`.

#![warn(missing_docs)]

pub mod calendar;
pub mod dist;
pub mod engine;
pub mod event;
pub mod queue;
pub mod stats;
pub mod time;
pub mod trace;

/// Convenient glob import for simulation users.
pub mod prelude {
    pub use crate::calendar::CalendarQueue;
    pub use crate::dist::{
        Categorical, Dist, Exp, LogNormal, Pareto, Truncated, UniformDist, Weibull, Zipf,
    };
    pub use crate::engine::{RunOutcome, Scheduler, Simulation, World};
    pub use crate::event::{EventId, Scheduled};
    pub use crate::queue::{BinaryHeapQueue, EventQueue};
    pub use crate::stats::{
        Counter, LogHistogram, P2Quantile, Replications, Summary, TimeWeighted,
    };
    pub use crate::time::{SimDuration, SimTime, MICROS_PER_SEC};
    pub use crate::trace::Trace;
}
