//! A calendar queue (Brown, CACM 1988) pending-event set.
//!
//! The calendar queue hashes events into "day" buckets by firing time and
//! walks the calendar year to dequeue, giving amortized O(1) enqueue/dequeue
//! when the bucket width tracks the inter-event gap. It adapts by resizing
//! (doubling/halving the bucket count and re-estimating the width) whenever
//! the population crosses thresholds — the classic design. E10 benchmarks it
//! against [`crate::queue::BinaryHeapQueue`].

use crate::event::{EventId, Scheduled};
use crate::queue::EventQueue;
use crate::time::SimTime;

struct Item<E> {
    time: SimTime,
    id: EventId,
    payload: E,
}

/// Calendar-queue implementation of [`EventQueue`].
pub struct CalendarQueue<E> {
    /// Buckets, each kept sorted ascending by `(time, id)`.
    buckets: Vec<Vec<Item<E>>>,
    /// Width of one bucket, in microseconds (>= 1).
    width: u64,
    /// Total events stored.
    len: usize,
    /// Bucket index the dequeue scan is positioned at.
    cursor: usize,
    /// Start time of the "day" the cursor is in; events in the cursor bucket
    /// with `time < day_start + width` belong to the current year pass.
    day_start: u64,
    /// Resize when `len` grows above 2*buckets or shrinks below buckets/2.
    top_threshold: usize,
    bot_threshold: usize,
}

const MIN_BUCKETS: usize = 2;

impl<E> CalendarQueue<E> {
    /// A queue tuned for an expected inter-event gap of ~1ms.
    pub fn new() -> Self {
        Self::with_params(MIN_BUCKETS, 1_000)
    }

    /// A queue with an explicit initial bucket count and bucket width (µs).
    pub fn with_params(nbuckets: usize, width: u64) -> Self {
        let nbuckets = nbuckets.max(MIN_BUCKETS);
        CalendarQueue {
            buckets: (0..nbuckets).map(|_| Vec::new()).collect(),
            width: width.max(1),
            len: 0,
            cursor: 0,
            day_start: 0,
            top_threshold: nbuckets * 2,
            bot_threshold: nbuckets / 2,
        }
    }

    fn bucket_of(&self, time: SimTime) -> usize {
        ((time.0 / self.width) % self.buckets.len() as u64) as usize
    }

    /// Estimate a new bucket width from the spread of a sample of pending
    /// events, then rebuild the calendar with `nbuckets` buckets.
    fn resize(&mut self, nbuckets: usize) {
        let nbuckets = nbuckets.max(MIN_BUCKETS);
        let mut items: Vec<Item<E>> = Vec::with_capacity(self.len);
        for b in self.buckets.iter_mut() {
            items.append(b);
        }
        items.sort_unstable_by_key(|i| (i.time, i.id));

        // Average gap between consecutive distinct event times in a sample,
        // times 3 (Brown's heuristic constant), bounded away from zero.
        let sample: Vec<u64> = items.iter().take(64).map(|i| i.time.0).collect();
        let width = if sample.len() >= 2 {
            let span = sample[sample.len() - 1].saturating_sub(sample[0]);
            let gap = span / (sample.len() as u64 - 1);
            (gap * 3).max(1)
        } else {
            self.width
        };

        self.buckets = (0..nbuckets).map(|_| Vec::new()).collect();
        self.width = width;
        self.top_threshold = nbuckets * 2;
        self.bot_threshold = nbuckets / 2;
        self.len = 0;

        // Position the cursor at the earliest pending event (or keep the
        // current clock position if the queue is empty).
        if let Some(first) = items.first() {
            self.day_start = (first.time.0 / self.width) * self.width;
            self.cursor = self.bucket_of(first.time);
        } else {
            self.cursor = 0;
            self.day_start = 0;
        }

        for item in items {
            self.insert(item);
        }
    }

    fn insert(&mut self, item: Item<E>) {
        let b = self.bucket_of(item.time);
        let bucket = &mut self.buckets[b];
        let key = (item.time, item.id);
        let pos = bucket.partition_point(|i| (i.time, i.id) < key);
        bucket.insert(pos, item);
        self.len += 1;
    }
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> for CalendarQueue<E> {
    fn push(&mut self, time: SimTime, id: EventId, payload: E) {
        // Never allow the calendar to lag: inserting before the cursor's day
        // rewinds the scan position so the event is found.
        if time.0 < self.day_start {
            self.day_start = (time.0 / self.width) * self.width;
            self.cursor = self.bucket_of(time);
        }
        self.insert(Item { time, id, payload });
        if self.len > self.top_threshold {
            let n = self.buckets.len() * 2;
            self.resize(n);
        }
    }

    fn pop(&mut self) -> Option<Scheduled<E>> {
        if self.len == 0 {
            return None;
        }
        let nb = self.buckets.len();
        loop {
            // Scan at most one full year; if nothing matured in this year,
            // jump the calendar straight to the earliest pending event —
            // this is the standard guard against sparse far-future events.
            for step in 0..nb {
                let idx = (self.cursor + step) % nb;
                let day = self.day_start + step as u64 * self.width;
                let bucket = &mut self.buckets[idx];
                if let Some(first) = bucket.first() {
                    if first.time.0 < day + self.width {
                        let item = bucket.remove(0);
                        self.len -= 1;
                        self.cursor = idx;
                        self.day_start = day;
                        let out = Scheduled {
                            time: item.time,
                            id: item.id,
                            payload: item.payload,
                        };
                        if self.len < self.bot_threshold && nb > MIN_BUCKETS {
                            let n = self.buckets.len() / 2;
                            self.resize(n);
                        }
                        return Some(out);
                    }
                }
            }
            // Direct search: find globally earliest event and jump to it.
            let mut best: Option<(SimTime, EventId, usize)> = None;
            for (i, b) in self.buckets.iter().enumerate() {
                if let Some(f) = b.first() {
                    if best.is_none_or(|(t, id, _)| (f.time, f.id) < (t, id)) {
                        best = Some((f.time, f.id, i));
                    }
                }
            }
            let (t, _, idx) = best.expect("len > 0 but all buckets empty");
            self.cursor = idx;
            self.day_start = (t.0 / self.width) * self.width;
        }
    }

    fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        self.buckets
            .iter()
            .filter_map(|b| b.first().map(|i| i.time))
            .min()
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut CalendarQueue<u64>) -> Vec<(u64, u64)> {
        let mut out = vec![];
        while let Some(s) = q.pop() {
            out.push((s.time.0, s.id.0));
        }
        out
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new();
        q.push(SimTime(5_000), EventId(0), 0);
        q.push(SimTime(1_000), EventId(1), 0);
        q.push(SimTime(3_000), EventId(2), 0);
        assert_eq!(drain(&mut q), vec![(1_000, 1), (3_000, 2), (5_000, 0)]);
    }

    #[test]
    fn same_time_fifo_by_id() {
        let mut q = CalendarQueue::new();
        for id in [3u64, 1, 2, 0] {
            q.push(SimTime(42), EventId(id), 0);
        }
        let ids: Vec<u64> = drain(&mut q).into_iter().map(|(_, id)| id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn survives_resizes() {
        let mut q = CalendarQueue::with_params(2, 10);
        for i in 0..1000u64 {
            // Scatter times so buckets fill unevenly.
            q.push(SimTime((i * 7919) % 50_000), EventId(i), i);
        }
        assert_eq!(q.len(), 1000);
        let out = drain(&mut q);
        assert_eq!(out.len(), 1000);
        for w in out.windows(2) {
            assert!(w[0] <= w[1], "out of order: {:?} then {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn sparse_far_future_events() {
        let mut q = CalendarQueue::with_params(4, 10);
        q.push(SimTime(1), EventId(0), 0);
        q.push(SimTime(1_000_000_000), EventId(1), 0);
        q.push(SimTime(2_000_000_000_000), EventId(2), 0);
        assert_eq!(
            drain(&mut q),
            vec![(1, 0), (1_000_000_000, 1), (2_000_000_000_000, 2)]
        );
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = CalendarQueue::with_params(2, 100);
        q.push(SimTime(100), EventId(0), 0);
        q.push(SimTime(200), EventId(1), 0);
        assert_eq!(q.pop().unwrap().time, SimTime(100));
        // Push an event earlier than the cursor's current day.
        q.push(SimTime(150), EventId(2), 0);
        q.push(SimTime(50), EventId(3), 0); // before current position
        assert_eq!(q.pop().unwrap().time, SimTime(50));
        assert_eq!(q.pop().unwrap().time, SimTime(150));
        assert_eq!(q.pop().unwrap().time, SimTime(200));
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = CalendarQueue::new();
        for i in 0..100u64 {
            q.push(SimTime((i * 37) % 500), EventId(i), i);
        }
        while let Some(t) = q.peek_time() {
            assert_eq!(q.pop().unwrap().time, t);
        }
    }
}
