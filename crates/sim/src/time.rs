//! Simulation time.
//!
//! Time is represented as an integer number of microseconds since the start
//! of the simulation. Using a fixed-point integer (rather than `f64`) keeps
//! the event queue totally ordered, makes arithmetic associative, and avoids
//! the accumulation drift that plagues floating-point simulation clocks on
//! long runs (a grid simulation covering months of virtual time executes
//! billions of microsecond-scale additions).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Microseconds in one second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// An instant on the simulation clock, in microseconds since t=0.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize, serde::Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(pub u64);

/// A span of simulation time, in microseconds.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize, serde::Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * MICROS_PER_SEC)
    }

    /// Construct from fractional seconds. Negative values clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Construct from whole hours.
    pub fn from_hours(h: u64) -> Self {
        SimTime::from_secs(h * 3600)
    }

    /// The instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// The instant in whole microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Duration elapsed since `earlier`, saturating at zero if `earlier` is
    /// actually later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration (sticks at `SimTime::MAX`).
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * MICROS_PER_SEC)
    }

    /// Construct from fractional seconds. Negative values clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Construct from whole minutes.
    pub fn from_mins(m: u64) -> Self {
        SimDuration::from_secs(m * 60)
    }

    /// Construct from whole hours.
    pub fn from_hours(h: u64) -> Self {
        SimDuration::from_secs(h * 3600)
    }

    /// Construct from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// The duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// The duration in whole microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// True if this is the zero duration.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scale by a non-negative factor, rounding to the nearest microsecond.
    pub fn mul_f64(self, f: f64) -> SimDuration {
        debug_assert!(f >= 0.0, "duration scale factor must be non-negative");
        SimDuration((self.0 as f64 * f).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, other: SimDuration) {
        self.0 -= other.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    fn div(self, other: SimDuration) -> f64 {
        self.0 as f64 / other.0 as f64
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_micros(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_micros(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_micros(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_micros(self.0))
    }
}

/// Render microseconds in the most readable unit (h/m/s/ms/µs).
fn format_micros(us: u64) -> String {
    if us >= 3_600 * MICROS_PER_SEC {
        format!("{:.2}h", us as f64 / (3_600.0 * MICROS_PER_SEC as f64))
    } else if us >= 60 * MICROS_PER_SEC {
        format!("{:.2}m", us as f64 / (60.0 * MICROS_PER_SEC as f64))
    } else if us >= MICROS_PER_SEC {
        format!("{:.2}s", us as f64 / MICROS_PER_SEC as f64)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{us}µs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_hours(2), SimTime::from_secs(7200));
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
        assert_eq!(SimDuration::from_millis(5).as_micros(), 5_000);
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_micros(), 1_500_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn negative_f64_clamps_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-0.1), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!(t + d, SimTime::from_secs(14));
        assert_eq!(t - d, SimTime::from_secs(6));
        assert_eq!(SimTime::from_secs(14) - t, d);
        assert_eq!(d * 3, SimDuration::from_secs(12));
        assert_eq!(d / 2, SimDuration::from_secs(2));
        assert!((SimDuration::from_secs(2) / d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(5);
        let b = SimTime::from_secs(9);
        assert_eq!(b.since(a), SimDuration::from_secs(4));
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn saturating_add_sticks_at_max() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration(10);
        assert_eq!(d.mul_f64(0.26), SimDuration(3));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration(500)), "500µs");
        assert_eq!(format!("{}", SimDuration::from_millis(250)), "250.00ms");
        assert_eq!(format!("{}", SimDuration::from_secs(5)), "5.00s");
        assert_eq!(format!("{}", SimDuration::from_mins(3)), "3.00m");
        assert_eq!(format!("{}", SimDuration::from_hours(2)), "2.00h");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![SimTime::from_secs(3), SimTime::ZERO, SimTime::from_secs(1)];
        v.sort();
        assert_eq!(
            v,
            vec![SimTime::ZERO, SimTime::from_secs(1), SimTime::from_secs(3)]
        );
    }
}
