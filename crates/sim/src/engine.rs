//! The discrete-event simulation engine.
//!
//! This is the framework of §5.4 of the paper: *"each entity in the Faucets
//! system … is represented by an object, and discrete-event simulation is
//! carried out over patterns of job submissions under study."* A [`World`]
//! holds those entity objects and dispatches events to them; the engine owns
//! the clock and the pending-event set.
//!
//! ```
//! use faucets_sim::prelude::*;
//!
//! struct Counter { fired: u32 }
//! impl World for Counter {
//!     type Event = &'static str;
//!     fn handle(&mut self, sched: &mut Scheduler<Self::Event>, ev: Self::Event) {
//!         self.fired += 1;
//!         if ev == "tick" && self.fired < 3 {
//!             sched.schedule_in(SimDuration::from_secs(1), "tick");
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(Counter { fired: 0 });
//! sim.scheduler().schedule_at(SimTime::ZERO, "tick");
//! sim.run();
//! assert_eq!(sim.world().fired, 3);
//! assert_eq!(sim.now(), SimTime::from_secs(2));
//! ```

use crate::event::{EventId, Scheduled};
use crate::queue::{BinaryHeapQueue, EventQueue};
use crate::time::{SimDuration, SimTime};
use std::collections::HashSet;

/// The simulated system: entity state plus the event dispatch logic.
pub trait World {
    /// The event payload type exchanged through the engine.
    type Event;
    /// React to `event` firing at `sched.now()`; schedule follow-ups on `sched`.
    fn handle(&mut self, sched: &mut Scheduler<Self::Event>, event: Self::Event);
}

/// Clock plus pending-event set; the only interface a [`World`] needs.
pub struct Scheduler<E> {
    now: SimTime,
    queue: Box<dyn EventQueue<E>>,
    next_id: u64,
    cancelled: HashSet<u64>,
    stop_requested: bool,
    scheduled_count: u64,
}

impl<E> Scheduler<E> {
    fn with_queue(queue: Box<dyn EventQueue<E>>) -> Self {
        Scheduler {
            now: SimTime::ZERO,
            queue,
            next_id: 0,
            cancelled: HashSet::new(),
            stop_requested: false,
            scheduled_count: 0,
        }
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — a causality violation that would
    /// silently corrupt results if allowed through.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={}, requested={}",
            self.now,
            at
        );
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.scheduled_count += 1;
        self.queue.push(at, id, event);
        id
    }

    /// Schedule `event` to fire `after` from now.
    pub fn schedule_in(&mut self, after: SimDuration, event: E) -> EventId {
        let at = self.now.saturating_add(after);
        self.schedule_at(at, event)
    }

    /// Cancel a previously scheduled event. Cancelling an event that already
    /// fired (or was already cancelled) is a silent no-op; returns whether a
    /// new cancellation was recorded.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_id {
            return false;
        }
        self.cancelled.insert(id.0)
    }

    /// Ask the engine to stop after the current event's handler returns.
    pub fn request_stop(&mut self) {
        self.stop_requested = true;
    }

    /// Number of events currently pending (including not-yet-reaped
    /// cancelled events).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Total events scheduled since construction.
    pub fn scheduled_count(&self) -> u64 {
        self.scheduled_count
    }

    /// Pop the next live (non-cancelled) event.
    fn next_live(&mut self) -> Option<Scheduled<E>> {
        while let Some(ev) = self.queue.pop() {
            if self.cancelled.remove(&ev.id.0) {
                continue;
            }
            return Some(ev);
        }
        None
    }
}

/// Outcome of a [`Simulation::run_until`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The pending-event set drained.
    Drained,
    /// The time horizon was reached with events still pending.
    Horizon,
    /// The world called [`Scheduler::request_stop`].
    Stopped,
    /// The event budget was exhausted.
    Budget,
}

/// A discrete-event simulation: a [`World`] plus a [`Scheduler`].
pub struct Simulation<W: World> {
    world: W,
    sched: Scheduler<W::Event>,
    processed: u64,
}

impl<W: World> Simulation<W>
where
    W::Event: 'static,
{
    /// A simulation over the default binary-heap pending-event set.
    pub fn new(world: W) -> Self {
        Self::with_queue(world, Box::new(BinaryHeapQueue::new()))
    }

    /// A simulation over a caller-supplied pending-event set
    /// (e.g. [`crate::calendar::CalendarQueue`]).
    pub fn with_queue(world: W, queue: Box<dyn EventQueue<W::Event>>) -> Self {
        Simulation {
            world,
            sched: Scheduler::with_queue(queue),
            processed: 0,
        }
    }
}

impl<W: World> Simulation<W> {
    /// The scheduler, for seeding initial events and inspecting the clock.
    pub fn scheduler(&mut self) -> &mut Scheduler<W::Event> {
        &mut self.sched
    }

    /// Immutable access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world (for wiring between runs).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Borrow the world and the scheduler together (for priming a world
    /// that needs to seed its own initial events).
    pub fn split(&mut self) -> (&mut W, &mut Scheduler<W::Event>) {
        (&mut self.world, &mut self.sched)
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.sched.now
    }

    /// Events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Process a single event; returns `false` if none are pending.
    pub fn step(&mut self) -> bool {
        match self.sched.next_live() {
            Some(ev) => {
                debug_assert!(
                    ev.time >= self.sched.now,
                    "event queue returned a past event"
                );
                self.sched.now = ev.time;
                self.processed += 1;
                self.world.handle(&mut self.sched, ev.payload);
                true
            }
            None => false,
        }
    }

    /// Run until the queue drains, the horizon passes, a stop is requested,
    /// or `max_events` have been processed. The clock never advances past
    /// `horizon` (events after it remain pending).
    pub fn run_until(&mut self, horizon: SimTime, max_events: u64) -> RunOutcome {
        let mut budget = max_events;
        loop {
            if self.sched.stop_requested {
                self.sched.stop_requested = false;
                return RunOutcome::Stopped;
            }
            if budget == 0 {
                return RunOutcome::Budget;
            }
            match self.sched.queue.peek_time() {
                None => return RunOutcome::Drained,
                Some(t) if t > horizon => {
                    self.sched.now = horizon;
                    return RunOutcome::Horizon;
                }
                Some(_) => {}
            }
            if !self.step() {
                return RunOutcome::Drained;
            }
            budget -= 1;
        }
    }

    /// Run until the pending-event set drains or a stop is requested.
    pub fn run(&mut self) -> RunOutcome {
        self.run_until(SimTime::MAX, u64::MAX)
    }

    /// Consume the simulation and return the world.
    pub fn into_world(self) -> W {
        self.world
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calendar::CalendarQueue;

    /// Records (time, tag) pairs; "spawn:<n>" schedules n follow-up events.
    struct Recorder {
        log: Vec<(SimTime, String)>,
    }

    impl World for Recorder {
        type Event = String;
        fn handle(&mut self, sched: &mut Scheduler<String>, ev: String) {
            self.log.push((sched.now(), ev.clone()));
            if let Some(n) = ev.strip_prefix("spawn:") {
                let n: u64 = n.parse().unwrap();
                for i in 0..n {
                    sched.schedule_in(SimDuration::from_secs(i + 1), format!("child{i}"));
                }
            }
            if ev == "stop" {
                sched.request_stop();
            }
        }
    }

    fn recorder() -> Simulation<Recorder> {
        Simulation::new(Recorder { log: vec![] })
    }

    #[test]
    fn events_fire_in_order_and_clock_advances() {
        let mut sim = recorder();
        sim.scheduler()
            .schedule_at(SimTime::from_secs(5), "b".into());
        sim.scheduler()
            .schedule_at(SimTime::from_secs(1), "a".into());
        assert_eq!(sim.run(), RunOutcome::Drained);
        assert_eq!(sim.now(), SimTime::from_secs(5));
        let tags: Vec<&str> = sim.world().log.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(tags, vec!["a", "b"]);
    }

    #[test]
    fn handlers_can_schedule_followups() {
        let mut sim = recorder();
        sim.scheduler().schedule_at(SimTime::ZERO, "spawn:3".into());
        sim.run();
        assert_eq!(sim.world().log.len(), 4);
        assert_eq!(sim.processed(), 4);
        assert_eq!(sim.now(), SimTime::from_secs(3));
    }

    #[test]
    fn cancellation_suppresses_events() {
        let mut sim = recorder();
        let id = sim
            .scheduler()
            .schedule_at(SimTime::from_secs(1), "never".into());
        sim.scheduler()
            .schedule_at(SimTime::from_secs(2), "yes".into());
        assert!(sim.scheduler().cancel(id));
        assert!(!sim.scheduler().cancel(id), "double cancel is a no-op");
        sim.run();
        let tags: Vec<&str> = sim.world().log.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(tags, vec!["yes"]);
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut sim = recorder();
        assert!(!sim.scheduler().cancel(EventId(99)));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut sim = recorder();
        sim.scheduler()
            .schedule_at(SimTime::from_secs(10), "a".into());
        sim.run();
        sim.scheduler()
            .schedule_at(SimTime::from_secs(1), "late".into());
    }

    #[test]
    fn horizon_stops_clock_without_losing_events() {
        let mut sim = recorder();
        sim.scheduler()
            .schedule_at(SimTime::from_secs(1), "a".into());
        sim.scheduler()
            .schedule_at(SimTime::from_secs(100), "far".into());
        let out = sim.run_until(SimTime::from_secs(10), u64::MAX);
        assert_eq!(out, RunOutcome::Horizon);
        assert_eq!(sim.now(), SimTime::from_secs(10));
        assert_eq!(sim.scheduler().pending(), 1);
        // Resume past the horizon.
        assert_eq!(sim.run(), RunOutcome::Drained);
        assert_eq!(sim.now(), SimTime::from_secs(100));
    }

    #[test]
    fn stop_request_halts_run() {
        let mut sim = recorder();
        sim.scheduler()
            .schedule_at(SimTime::from_secs(1), "stop".into());
        sim.scheduler()
            .schedule_at(SimTime::from_secs(2), "after".into());
        assert_eq!(sim.run(), RunOutcome::Stopped);
        assert_eq!(sim.world().log.len(), 1);
        // A fresh run resumes.
        assert_eq!(sim.run(), RunOutcome::Drained);
        assert_eq!(sim.world().log.len(), 2);
    }

    #[test]
    fn event_budget_is_respected() {
        let mut sim = recorder();
        for i in 0..10 {
            sim.scheduler()
                .schedule_at(SimTime::from_secs(i), format!("e{i}"));
        }
        assert_eq!(sim.run_until(SimTime::MAX, 4), RunOutcome::Budget);
        assert_eq!(sim.processed(), 4);
    }

    #[test]
    fn same_time_events_fire_in_scheduling_order() {
        let mut sim = recorder();
        for i in 0..5 {
            sim.scheduler()
                .schedule_at(SimTime::from_secs(1), format!("e{i}"));
        }
        sim.run();
        let tags: Vec<&str> = sim.world().log.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(tags, vec!["e0", "e1", "e2", "e3", "e4"]);
    }

    #[test]
    fn calendar_queue_engine_agrees_with_heap_engine() {
        let run = |queue: Box<dyn EventQueue<String>>| {
            let mut sim = Simulation::with_queue(Recorder { log: vec![] }, queue);
            sim.scheduler()
                .schedule_at(SimTime::from_secs(2), "spawn:4".into());
            sim.scheduler()
                .schedule_at(SimTime::from_secs(1), "x".into());
            sim.run();
            sim.into_world().log
        };
        let heap = run(Box::<BinaryHeapQueue<String>>::default());
        let cal = run(Box::<CalendarQueue<String>>::default());
        assert_eq!(heap, cal);
    }
}
