//! Event identities and queue entries.

use crate::time::SimTime;
use std::fmt;

/// A unique, monotonically increasing identifier for a scheduled event.
///
/// Besides identifying events for cancellation, the id doubles as the
/// tie-breaker for events scheduled at the same instant: lower ids (scheduled
/// earlier in wall-clock order) fire first, which makes simulations
/// deterministic and gives FIFO semantics for same-time events.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u64);

impl fmt::Debug for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ev#{}", self.0)
    }
}

/// An event extracted from a queue: its firing time, identity, and payload.
#[derive(Debug, Clone)]
pub struct Scheduled<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Identity (also the same-time tie-breaker).
    pub id: EventId,
    /// The event payload handed to the world.
    pub payload: E,
}

impl<E> Scheduled<E> {
    /// The (time, id) key that defines queue order.
    pub fn key(&self) -> (SimTime, EventId) {
        (self.time, self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_orders_by_time_then_id() {
        let a = Scheduled {
            time: SimTime(5),
            id: EventId(2),
            payload: (),
        };
        let b = Scheduled {
            time: SimTime(5),
            id: EventId(7),
            payload: (),
        };
        let c = Scheduled {
            time: SimTime(9),
            id: EventId(0),
            payload: (),
        };
        assert!(a.key() < b.key());
        assert!(b.key() < c.key());
    }
}
