//! Property tests: both pending-event set implementations behave as a stable
//! priority queue and agree with each other under arbitrary workloads.

use faucets_sim::calendar::CalendarQueue;
use faucets_sim::event::EventId;
use faucets_sim::queue::{BinaryHeapQueue, EventQueue};
use faucets_sim::time::SimTime;
use proptest::prelude::*;

/// A scripted queue operation.
#[derive(Debug, Clone)]
enum Op {
    Push(u64),
    Pop,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            3 => (0u64..1_000_000).prop_map(Op::Push),
            1 => Just(Op::Pop),
        ],
        1..200,
    )
}

/// Run a script against a queue, returning the sequence of popped keys.
fn run<Q: EventQueue<u64>>(mut q: Q, script: &[Op]) -> Vec<(u64, u64)> {
    let mut next_id = 0u64;
    let mut popped = vec![];
    for op in script {
        match op {
            Op::Push(t) => {
                q.push(SimTime(*t), EventId(next_id), next_id);
                next_id += 1;
            }
            Op::Pop => {
                if let Some(s) = q.pop() {
                    popped.push((s.time.0, s.id.0));
                }
            }
        }
    }
    // Drain the rest.
    while let Some(s) = q.pop() {
        popped.push((s.time.0, s.id.0));
    }
    popped
}

proptest! {
    /// The heap queue is a total-order priority queue with FIFO tie-break.
    #[test]
    fn heap_queue_total_order(script in ops()) {
        let out = run(BinaryHeapQueue::new(), &script);
        let n_push = script.iter().filter(|o| matches!(o, Op::Push(_))).count();
        prop_assert_eq!(out.len(), n_push, "every push must eventually pop");
    }

    /// The calendar queue produces exactly the heap queue's output.
    #[test]
    fn calendar_matches_heap(script in ops()) {
        let heap = run(BinaryHeapQueue::new(), &script);
        let cal = run(CalendarQueue::new(), &script);
        prop_assert_eq!(heap, cal);
    }

    /// With pops only at the end, output is fully sorted by (time, id).
    #[test]
    fn drain_is_sorted(times in prop::collection::vec(0u64..1_000_000, 1..300)) {
        let mut q = CalendarQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(SimTime(*t), EventId(i as u64), i as u64);
        }
        let mut prev = None;
        while let Some(s) = q.pop() {
            let key = (s.time.0, s.id.0);
            if let Some(p) = prev {
                prop_assert!(p < key, "calendar queue out of order: {:?} then {:?}", p, key);
            }
            prev = Some(key);
        }
    }
}
