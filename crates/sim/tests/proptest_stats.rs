//! Property tests for the streaming statistics collectors: the O(1)-memory
//! estimators must stay within tolerance of the exact answers computed from
//! the retained sample, and merging must behave exactly like concatenation.

use faucets_sim::stats::{LogHistogram, P2Quantile, QuantileSet, Summary};
use proptest::prelude::*;

/// Exact `p`-quantile of an already-sorted sample (nearest-rank).
fn exact_quantile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn sorted(mut data: Vec<f64>) -> Vec<f64> {
    data.sort_by(|a, b| a.partial_cmp(b).unwrap());
    data
}

proptest! {
    /// P² median vs the exact sample median: bounded by the data range and
    /// within a modest fraction of it. (P² approximates the *sample*
    /// quantile; 15 % of the range is ~4σ of sampling noise at n = 200.)
    #[test]
    fn p2_median_tracks_exact(data in proptest::collection::vec(0.0f64..1000.0, 200..600)) {
        let mut q = P2Quantile::new(0.5);
        for &x in &data {
            q.record(x);
        }
        let s = sorted(data);
        let exact = exact_quantile(&s, 0.5);
        let (lo, hi) = (s[0], *s.last().unwrap());
        let est = q.estimate();
        prop_assert!(est >= lo && est <= hi, "estimate {est} outside [{lo}, {hi}]");
        let tol = 0.15 * (hi - lo) + 1e-9;
        prop_assert!((est - exact).abs() <= tol, "est {est}, exact {exact}, tol {tol}");
    }

    /// Same for an upper quantile, which P² tracks with fewer effective
    /// samples (wider tolerance).
    #[test]
    fn p2_p90_tracks_exact(data in proptest::collection::vec(0.0f64..1000.0, 300..700)) {
        let mut q = P2Quantile::new(0.9);
        for &x in &data {
            q.record(x);
        }
        let s = sorted(data);
        let exact = exact_quantile(&s, 0.9);
        let (lo, hi) = (s[0], *s.last().unwrap());
        let est = q.estimate();
        prop_assert!(est >= lo && est <= hi, "estimate {est} outside [{lo}, {hi}]");
        let tol = 0.20 * (hi - lo) + 1e-9;
        prop_assert!((est - exact).abs() <= tol, "est {est}, exact {exact}, tol {tol}");
    }

    /// The log-binned CDF brackets the exact one: rounding `x` up to its
    /// bin's top edge can over-count but never under-count, and never past
    /// the exact fraction below that edge.
    #[test]
    fn log_histogram_cdf_brackets_exact(
        data in proptest::collection::vec(0.0f64..1e6, 1..300),
        x in 0.0f64..1e6,
    ) {
        let mut h = LogHistogram::new();
        for &v in &data {
            h.record(v);
        }
        let n = data.len() as f64;
        let exact_le = data.iter().filter(|&&v| v <= x).count() as f64 / n;
        let top = if x < 1.0 { 2.0 } else { 2f64.powi(x.log2().floor() as i32 + 1) };
        let exact_lt_top = data.iter().filter(|&&v| v < top).count() as f64 / n;
        let frac = h.fraction_le(x);
        prop_assert!(frac + 1e-12 >= exact_le, "frac {frac} < exact {exact_le}");
        prop_assert!(frac <= exact_lt_top + 1e-12, "frac {frac} > bin-edge bound {exact_lt_top}");
    }

    /// fraction_le is monotone in its argument.
    #[test]
    fn log_histogram_cdf_is_monotone(
        data in proptest::collection::vec(0.0f64..1e6, 1..200),
        x in 0.0f64..1e6,
        y in 0.0f64..1e6,
    ) {
        let mut h = LogHistogram::new();
        for &v in &data {
            h.record(v);
        }
        let (a, b) = if x <= y { (x, y) } else { (y, x) };
        prop_assert!(h.fraction_le(a) <= h.fraction_le(b) + 1e-12);
    }

    /// Merging two histograms is *exactly* the histogram of the
    /// concatenated streams — bin-for-bin, not within tolerance.
    #[test]
    fn log_histogram_merge_equals_concat(
        a in proptest::collection::vec(0.0f64..1e5, 0..200),
        b in proptest::collection::vec(0.0f64..1e5, 0..200),
    ) {
        let mut ha = LogHistogram::new();
        for &v in &a {
            ha.record(v);
        }
        let mut hb = LogHistogram::new();
        for &v in &b {
            hb.record(v);
        }
        let mut whole = LogHistogram::new();
        for &v in a.iter().chain(&b) {
            whole.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), whole.count());
        let merged: Vec<_> = ha.bins().collect();
        let exact: Vec<_> = whole.bins().collect();
        prop_assert_eq!(merged, exact);
    }

    /// The p50/p90/p99/p999 battery on *heavy-tailed* streams, verified
    /// by rank rather than value: on a Pareto-ish tail the values at
    /// nearby ranks differ by orders of magnitude, so the meaningful
    /// contract is that the fraction of samples at or below each estimate
    /// brackets the target quantile. (This is the battery the load
    /// harness records submit/completion latencies into.)
    #[test]
    fn quantile_set_rank_brackets_on_heavy_tails(
        u in proptest::collection::vec(0.0f64..0.999_999, 2_000..4_000),
    ) {
        // Inverse-transform a Pareto-flavoured tail: finite but wild
        // (the top permille spans orders of magnitude).
        let data: Vec<f64> = u.iter().map(|&v| (1.0 - v).powf(-1.5)).collect();
        let mut qs = QuantileSet::new();
        for &x in &data {
            qs.record(x);
        }
        prop_assert_eq!(qs.count(), data.len() as u64);
        let n = data.len() as f64;
        let (lo, hi) = data.iter().fold((f64::MAX, f64::MIN), |(l, h), &x| (l.min(x), h.max(x)));
        let frac_le = |t: f64| data.iter().filter(|&&x| x <= t).count() as f64 / n;
        for (q, est, eps) in [
            (0.5, qs.p50(), 0.06),
            (0.9, qs.p90(), 0.05),
            (0.99, qs.p99(), 0.02),
            (0.999, qs.p999(), 0.008),
        ] {
            prop_assert!(est >= lo && est <= hi, "q={q}: {est} outside [{lo}, {hi}]");
            let f = frac_le(est);
            prop_assert!((f - q).abs() <= eps, "q={q}: estimate {est} ranks at {f}");
        }
    }

    /// Welford merge matches single-pass recording to float tolerance.
    #[test]
    fn summary_merge_matches_whole(
        a in proptest::collection::vec(-1e3f64..1e3, 0..150),
        b in proptest::collection::vec(-1e3f64..1e3, 0..150),
    ) {
        let mut sa = Summary::new();
        for &v in &a {
            sa.record(v);
        }
        let mut sb = Summary::new();
        for &v in &b {
            sb.record(v);
        }
        let mut whole = Summary::new();
        for &v in a.iter().chain(&b) {
            whole.record(v);
        }
        sa.merge(&sb);
        prop_assert_eq!(sa.count(), whole.count());
        if whole.count() > 0 {
            prop_assert!((sa.mean() - whole.mean()).abs() < 1e-6);
            prop_assert!((sa.variance() - whole.variance()).abs() < 1e-4);
        }
    }
}

#[test]
fn empty_collectors_are_sane() {
    let mut h = LogHistogram::new();
    assert_eq!(h.count(), 0);
    assert_eq!(h.fraction_le(5.0), 0.0);
    h.merge(&LogHistogram::new());
    assert_eq!(h.count(), 0);
    assert!(h.bins().next().is_none());

    // Merging data *into* an empty histogram equals the source.
    let mut src = LogHistogram::new();
    src.record(3.0);
    src.record(700.0);
    h.merge(&src);
    assert_eq!(h.count(), 2);
    assert_eq!(h.bins().collect::<Vec<_>>(), src.bins().collect::<Vec<_>>());

    assert!(P2Quantile::new(0.5).estimate().is_nan());
    let mut s = Summary::new();
    s.merge(&Summary::new());
    assert_eq!(s.count(), 0);
}
