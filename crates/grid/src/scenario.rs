//! Scenario construction: declaratively assemble a grid and get a runnable
//! simulation.
//!
//! Every experiment (E2–E12) is a [`ScenarioBuilder`] invocation: clusters
//! with a scheduling policy and bid strategy each, a user population, a
//! placement mode, and a workload.

use crate::workload::{ArrivalProcess, JobMix, Workload};
use crate::world::{FailureModel, GridWorld, MarketMode, Node};
use faucets_core::accounting::{AccountId, Ledger};
use faucets_core::barter::CreditBank;
use faucets_core::daemon::FaucetsDaemon;
use faucets_core::directory::FilterLevel;
use faucets_core::ids::{ClusterId, OrgId, UserId};
use faucets_core::market::strategy::BidStrategy;
use faucets_core::market::SelectionPolicy;
use faucets_core::money::{Money, ServiceUnits};
use faucets_core::server::FaucetsServer;
use faucets_sched::adaptive::ResizeCostModel;
use faucets_sched::cluster::Cluster;
use faucets_sched::machine::MachineSpec;
use faucets_sched::policy::SchedPolicy;
use faucets_sim::engine::Simulation;
use faucets_sim::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, HashMap};

/// Look up a scheduling policy by name: `fcfs`, `easy-backfill`,
/// `equipartition`, `profit`, or `intranet-priority`.
///
/// # Panics
/// Panics on unknown names (experiments are static configurations).
pub fn policy_by_name(name: &str) -> Box<dyn SchedPolicy> {
    faucets_sched::policy::by_name(name)
}

/// Look up a bid strategy by name: `baseline`, `util-interp`,
/// `deadline-aware`, `weather-aware`, or `fixed:<multiplier>`.
///
/// # Panics
/// Panics on unknown names.
pub fn strategy_by_name(name: &str) -> Box<dyn BidStrategy> {
    faucets_core::market::strategy::by_name(name)
}

/// Configuration for one cluster in a scenario.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Processors.
    pub pes: u32,
    /// Scheduling policy name (see [`policy_by_name`]).
    pub policy: String,
    /// Bid strategy name (see [`strategy_by_name`]).
    pub strategy: String,
    /// Dollars per CPU-second.
    pub normalized_cost: Money,
}

/// Builder for a grid scenario.
pub struct ScenarioBuilder {
    seed: u64,
    clusters: Vec<ClusterConfig>,
    n_users: usize,
    mode: MarketMode,
    arrivals: ArrivalProcess,
    mix: JobMix,
    horizon: SimDuration,
    market_latency: SimDuration,
    heartbeat_every: SimDuration,
    telemetry: bool,
    filter_level: FilterLevel,
    resize_scale: f64,
    accounts_per_user: usize,
    initial_credits: ServiceUnits,
    failures: Option<FailureModel>,
    workload_override: Option<Workload>,
    maintenance: Vec<(usize, SimTime, SimDuration)>,
    migrate_on_maintenance: bool,
    daemon_outages: Vec<(usize, SimTime, SimDuration)>,
    daemon_recovery: bool,
    su_quota_per_user: ServiceUnits,
    regulator_cfg: Option<faucets_core::market::Regulator>,
}

impl ScenarioBuilder {
    /// Start a scenario with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        ScenarioBuilder {
            seed,
            clusters: vec![],
            n_users: 4,
            mode: MarketMode::Bidding(SelectionPolicy::LeastCost),
            arrivals: ArrivalProcess::Poisson {
                mean_interarrival: SimDuration::from_secs(600),
            },
            mix: JobMix::default(),
            horizon: SimDuration::from_hours(24),
            market_latency: SimDuration::from_millis(200),
            heartbeat_every: SimDuration::from_secs(30),
            telemetry: false,
            filter_level: FilterLevel::Static,
            resize_scale: 1.0,
            accounts_per_user: 1,
            initial_credits: ServiceUnits::from_units(100_000),
            failures: None,
            workload_override: None,
            maintenance: vec![],
            migrate_on_maintenance: true,
            daemon_outages: vec![],
            daemon_recovery: true,
            su_quota_per_user: ServiceUnits::from_units(1_000_000),
            regulator_cfg: None,
        }
    }

    /// Add a cluster with `pes` processors, a scheduling policy, and a bid
    /// strategy (both by name) at the default price level.
    pub fn cluster(mut self, pes: u32, policy: &str, strategy: &str) -> Self {
        self.clusters.push(ClusterConfig {
            pes,
            policy: policy.into(),
            strategy: strategy.into(),
            normalized_cost: Money::from_units_f64(0.01),
        });
        self
    }

    /// Add a cluster with an explicit price level.
    pub fn cluster_priced(mut self, pes: u32, policy: &str, strategy: &str, cost: Money) -> Self {
        self.clusters.push(ClusterConfig {
            pes,
            policy: policy.into(),
            strategy: strategy.into(),
            normalized_cost: cost,
        });
        self
    }

    /// Number of submitting users.
    pub fn users(mut self, n: usize) -> Self {
        self.n_users = n.max(1);
        self
    }

    /// Placement mode.
    pub fn mode(mut self, mode: MarketMode) -> Self {
        self.mode = mode;
        self
    }

    /// Arrival process.
    pub fn arrivals(mut self, a: ArrivalProcess) -> Self {
        self.arrivals = a;
        self
    }

    /// Job mix.
    pub fn mix(mut self, m: JobMix) -> Self {
        self.mix = m;
        self
    }

    /// Submission horizon (the grid drains afterwards).
    pub fn horizon(mut self, h: SimDuration) -> Self {
        self.horizon = h;
        self
    }

    /// FS candidate filter level (§5.1).
    pub fn filter(mut self, f: FilterLevel) -> Self {
        self.filter_level = f;
        self
    }

    /// Resize-cost ablation multiplier (0 = free resizes).
    pub fn resize_cost_scale(mut self, s: f64) -> Self {
        self.resize_scale = s;
        self
    }

    /// Clusters each user holds an account on (Restricted mode).
    pub fn accounts_per_user(mut self, n: usize) -> Self {
        self.accounts_per_user = n.max(1);
        self
    }

    /// Initial bartering credits per organization.
    pub fn credits(mut self, c: ServiceUnits) -> Self {
        self.initial_credits = c;
        self
    }

    /// SU quota granted to each user (ServiceUnits mode, §5.5.2).
    pub fn su_quota(mut self, q: ServiceUnits) -> Self {
        self.su_quota_per_user = q;
        self
    }

    /// Install a §5.5.1 price-band regulator over every bid slate.
    pub fn regulator(mut self, r: faucets_core::market::Regulator) -> Self {
        self.regulator_cfg = Some(r);
        self
    }

    /// Enable AppSpector telemetry sampling on heartbeats.
    pub fn telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }

    /// Inject transient machine failures (§3 recovery): exponential with
    /// the given MTBF per machine, periodic checkpoints at `interval`.
    pub fn failures(mut self, mtbf: SimDuration, interval: SimDuration) -> Self {
        self.failures = Some(FailureModel {
            mtbf,
            checkpoint_interval: interval,
            seed: self.seed ^ 0xFA11,
        });
        self
    }

    /// Schedule a maintenance drain of the `idx`-th cluster (0-based) at
    /// `at` for `window` (§1: "when the machine is about to be taken down,
    /// checkpointing the job and moving it to another machine, if
    /// possible").
    pub fn maintenance(mut self, idx: usize, at: SimTime, window: SimDuration) -> Self {
        self.maintenance.push((idx, at, window));
        self
    }

    /// Choose whether maintenance migrates work to other clusters (default)
    /// or holds it at the source until the window ends.
    pub fn migrate_on_maintenance(mut self, on: bool) -> Self {
        self.migrate_on_maintenance = on;
        self
    }

    /// Crash the `idx`-th cluster's Faucets Daemon (0-based) at `at` for
    /// `downtime`. Whether its contracts survive is governed by
    /// [`ScenarioBuilder::daemon_recovery`].
    pub fn daemon_outage(mut self, idx: usize, at: SimTime, downtime: SimDuration) -> Self {
        self.daemon_outages.push((idx, at, downtime));
        self
    }

    /// Choose whether crashed daemons resume their journaled contracts on
    /// restart (default) or lose every accepted contract.
    pub fn daemon_recovery(mut self, on: bool) -> Self {
        self.daemon_recovery = on;
        self
    }

    /// Replace the synthetic workload with an explicit one (e.g. an SWF
    /// trace replay built by [`crate::trace::workload_from_swf`]). Users in
    /// the trace are mapped onto this scenario's user population modulo its
    /// size.
    pub fn workload(mut self, w: Workload) -> Self {
        self.workload_override = Some(w);
        self
    }

    /// Market protocol latency for the award leg.
    pub fn market_latency(mut self, d: SimDuration) -> Self {
        self.market_latency = d;
        self
    }

    /// Assemble the world and prime the simulation.
    pub fn build(self) -> Simulation<GridWorld> {
        assert!(
            !self.clusters.is_empty(),
            "a scenario needs at least one cluster"
        );
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5EED);

        let mut server = FaucetsServer::new(
            self.heartbeat_every * 4,
            SimDuration::from_hours(1_000_000),
            SimDuration::from_hours(24),
        );
        server.filter_level = self.filter_level;

        // The simulation's client identity.
        server
            .create_user("sim-client", "sim-password", &mut rng)
            .expect("fresh user db");
        let (_, token) = server
            .login("sim-client", "sim-password", SimTime::ZERO, &mut rng)
            .expect("login succeeds");

        // Users and their dollar accounts.
        let users: Vec<UserId> = (0..self.n_users).map(|i| UserId(i as u64 + 1)).collect();
        let mut ledger = Ledger::new();
        ledger
            .open(AccountId::System, Money::ZERO)
            .expect("fresh ledger");
        ledger.set_overdraft(AccountId::System, true);
        for &u in &users {
            ledger
                .open(AccountId::User(u), Money::from_units(1_000_000_000))
                .unwrap();
        }

        // Clusters, daemons, directory registrations.
        let apps: Vec<String> = self.mix.apps.clone();
        let mut nodes = BTreeMap::new();
        let mut bank = CreditBank::new();
        for (i, cfg) in self.clusters.iter().enumerate() {
            let cid = ClusterId(i as u64 + 1);
            let mut machine = MachineSpec::commodity(cid, format!("cs{}", i + 1), cfg.pes);
            machine.normalized_cost = cfg.normalized_cost;
            let info = machine.server_info("127.0.0.1", 9000 + i as u16);
            server.register_cluster(info.clone(), apps.iter().cloned(), SimTime::ZERO);
            server.heartbeat(
                cid,
                faucets_core::directory::ServerStatus {
                    free_pes: cfg.pes,
                    queue_len: 0,
                    accepting: true,
                    ..Default::default()
                },
                SimTime::ZERO,
            );
            let cluster = Cluster::new(
                machine,
                policy_by_name(&cfg.policy),
                ResizeCostModel::default().scaled(self.resize_scale),
            );
            let daemon = FaucetsDaemon::new(
                info,
                apps.iter().cloned(),
                strategy_by_name(&cfg.strategy),
                cfg.normalized_cost,
            );
            ledger.open(AccountId::Cluster(cid), Money::ZERO).unwrap();
            nodes.insert(cid, Node { daemon, cluster });

            // Bartering: one org per cluster.
            bank.register_org(OrgId(i as u64 + 1), self.initial_credits)
                .unwrap();
            bank.register_cluster(cid, OrgId(i as u64 + 1)).unwrap();
        }

        // Home clusters / restricted accounts: round-robin over clusters.
        let n_clusters = self.clusters.len();
        let mut accounts: HashMap<UserId, Vec<ClusterId>> = HashMap::new();
        for (ui, &u) in users.iter().enumerate() {
            let mut mine = vec![];
            for k in 0..self.accounts_per_user.min(n_clusters) {
                mine.push(ClusterId(((ui + k) % n_clusters) as u64 + 1));
            }
            bank.set_home(u, mine[0]).unwrap();
            accounts.insert(u, mine);
        }

        let use_bank = matches!(self.mode, MarketMode::Barter);
        let workload = match self.workload_override {
            Some(mut w) => {
                // Trace users may be arbitrary ids; remap onto the scenario
                // population so accounts/homes exist.
                w.users = users.clone();
                w
            }
            None => Workload::new(
                self.arrivals,
                self.mix,
                users,
                SimTime::ZERO + self.horizon,
                self.seed,
            ),
        };

        let failures = self.failures.clone();
        let mut world = GridWorld::assemble(
            server,
            nodes,
            ledger,
            use_bank.then_some(bank),
            self.mode,
            workload,
            token,
            accounts,
            self.market_latency,
            self.heartbeat_every,
            self.telemetry,
        );

        world.failure_model = failures;
        if matches!(world.mode, MarketMode::ServiceUnits(_)) {
            let mut quota = faucets_core::quota::SuQuota::new();
            for &u in &world.workload.users {
                quota
                    .grant(u, self.su_quota_per_user)
                    .expect("fresh quota bank");
            }
            for &c in world.nodes.keys().collect::<Vec<_>>() {
                quota.register_cluster(c).expect("fresh quota bank");
            }
            world.quota = Some(quota);
        }
        world.migrate_on_maintenance = self.migrate_on_maintenance;
        world.regulator = self.regulator_cfg;
        world.maintenance_plan = self
            .maintenance
            .iter()
            .map(|&(idx, at, window)| (ClusterId(idx as u64 + 1), at, window))
            .collect();
        world.daemon_outage_plan = self
            .daemon_outages
            .iter()
            .map(|&(idx, at, downtime)| (ClusterId(idx as u64 + 1), at, downtime))
            .collect();
        world.daemon_recovery = self.daemon_recovery;
        let mut sim = Simulation::new(world);
        let (world, sched) = sim.split();
        world.prime(sched);
        sim
    }
}

/// Run a simulation to completion with a safety budget and return the world.
pub fn run_scenario(mut sim: Simulation<GridWorld>) -> GridWorld {
    // Generous budget: a few hundred events per job plus heartbeats.
    sim.run_until(SimTime::MAX, 500_000_000);
    sim.into_world()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_names_resolve() {
        for p in ["fcfs", "easy-backfill", "equipartition", "profit"] {
            assert!(!policy_by_name(p).name().is_empty());
        }
        for s in [
            "baseline",
            "util-interp",
            "deadline-aware",
            "weather-aware",
            "fixed:1.5",
        ] {
            assert!(!strategy_by_name(s).name().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "unknown scheduling policy")]
    fn unknown_policy_panics() {
        policy_by_name("round-robin");
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn empty_scenario_panics() {
        let _ = ScenarioBuilder::new(0).build();
    }

    #[test]
    fn barter_scenario_builds_with_bank() {
        let sim = ScenarioBuilder::new(1)
            .cluster(64, "equipartition", "baseline")
            .cluster(64, "equipartition", "baseline")
            .mode(MarketMode::Barter)
            .horizon(SimDuration::from_hours(1))
            .build();
        assert!(sim.world().bank.is_some());
    }

    #[test]
    fn bidding_scenario_has_no_bank() {
        let sim = ScenarioBuilder::new(1)
            .cluster(64, "fcfs", "baseline")
            .horizon(SimDuration::from_hours(1))
            .build();
        assert!(sim.world().bank.is_none());
        assert_eq!(sim.world().nodes.len(), 1);
    }
}
