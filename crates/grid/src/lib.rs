//! # faucets-grid — the whole-grid simulation of §5.4
//!
//! *"To evaluate the scalability of the framework and to compare the
//! effectiveness of alternative bidding strategies, we have built a
//! simulation framework: each entity in the Faucets system — clients,
//! Compute Servers, Faucets-Server …, job schedulers with their
//! bid-generation algorithms, and application programs — is represented by
//! an object, and discrete-event simulation is carried out over patterns of
//! job submissions under study."*
//!
//! This crate is that framework: [`world::GridWorld`] holds the entity
//! objects (from `faucets-core` and `faucets-sched`) and dispatches the §2
//! protocol over the `faucets-sim` engine; [`workload`] generates the job
//! submission patterns; [`scenario::ScenarioBuilder`] assembles experiments;
//! [`report`] renders their tables.
//!
//! # Example: a tiny grid, end to end
//!
//! ```
//! use faucets_grid::prelude::*;
//! use faucets_core::market::SelectionPolicy;
//! use faucets_sim::time::SimDuration;
//!
//! let sim = ScenarioBuilder::new(1)
//!     .cluster(64, "equipartition", "util-interp")
//!     .cluster(64, "fcfs", "baseline")
//!     .users(3)
//!     .mode(MarketMode::Bidding(SelectionPolicy::LeastCost))
//!     .arrivals(ArrivalProcess::Poisson { mean_interarrival: SimDuration::from_secs(600) })
//!     .mix(JobMix { log2_min_pes: (0, 3), ..JobMix::default() })
//!     .horizon(SimDuration::from_hours(2))
//!     .build();
//! let world = run_scenario(sim);
//! assert!(world.stats.submitted > 0);
//! assert_eq!(world.stats.completed + world.stats.rejected, world.stats.submitted);
//! ```

#![warn(missing_docs)]

pub mod fairness;
pub mod report;
pub mod scenario;
pub mod trace;
pub mod workload;
pub mod world;

/// Convenient glob import.
pub mod prelude {
    pub use crate::fairness::jain_index;
    pub use crate::report::{f2, f3, pct, Table};
    pub use crate::scenario::{policy_by_name, run_scenario, strategy_by_name, ScenarioBuilder};
    pub use crate::trace::{parse_swf, record_to_qos, workload_from_swf, TraceConfig, TraceRecord};
    pub use crate::workload::{ArrivalProcess, JobMix, Workload};
    pub use crate::world::{GridEvent, GridStats, GridWorld, MarketMode, Node};
}
