//! Tabular experiment reports.
//!
//! Every experiment binary prints its results as a [`Table`] — aligned text
//! for the terminal, CSV for downstream plotting — so the EXPERIMENTS.md
//! paper-vs-measured comparison can quote them directly.

use std::fmt;

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (experiment id + description).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (stringified by the caller).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: vec![],
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    /// Render as CSV (headers + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        writeln!(f, "## {}", self.title)?;
        let line: Vec<String> = self
            .headers
            .iter()
            .zip(&w)
            .map(|(h, w)| format!("{h:>w$}"))
            .collect();
        writeln!(f, "{}", line.join("  "))?;
        let total: usize = w.iter().sum::<usize>() + 2 * (w.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for r in &self.rows {
            let line: Vec<String> = r.iter().zip(&w).map(|(c, w)| format!("{c:>w$}")).collect();
            writeln!(f, "{}", line.join("  "))?;
        }
        Ok(())
    }
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_and_csv() {
        let mut t = Table::new("E0: demo", &["policy", "util", "profit"]);
        t.row(vec!["fcfs".into(), pct(0.55), "$12.00".into()]);
        t.row(vec!["equipartition".into(), pct(0.91), "$19.50".into()]);
        let s = t.to_string();
        assert!(s.contains("## E0: demo"));
        assert!(s.contains("equipartition"));
        assert!(s.contains("91.0%"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("policy,util,profit"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(pct(0.333), "33.3%");
    }
}
