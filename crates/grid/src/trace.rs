//! Standard Workload Format (SWF) trace loading.
//!
//! §5.4 runs the simulation "over patterns of job submissions under study";
//! the community's canonical pattern source is the Parallel Workloads
//! Archive's SWF logs. This module parses the SWF subset the simulation
//! needs — submit time, runtime, processor request, requested user — and
//! lifts each record into a QoS contract under a [`TraceConfig`] that
//! supplies the fields 2004 traces do not carry (efficiency curve,
//! adaptivity, payoff/deadline economics).
//!
//! SWF refresher: whitespace-separated records of 18 fields, `;` comments;
//! field 1 = job id, 2 = submit time (s), 4 = run time (s), 5 = allocated
//! processors (8 = requested processors as fallback), 12 = user id.
//! Missing values are `-1`.

use crate::workload::Workload;
use faucets_core::ids::UserId;
use faucets_core::money::Money;
use faucets_core::qos::{PayoffFn, QosBuilder, QosContract, SpeedupModel};
use faucets_sim::time::{SimDuration, SimTime};

/// One parsed SWF record (the subset the simulation consumes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// SWF job number.
    pub job: u64,
    /// Submission time, seconds from trace start.
    pub submit_secs: u64,
    /// Recorded runtime, seconds.
    pub runtime_secs: f64,
    /// Processors used (or requested).
    pub procs: u32,
    /// Submitting user (SWF field 12; 0 when absent).
    pub user: u64,
}

/// How trace records become QoS contracts.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// `min_pes = procs / shrink_factor` (≥ 1): how far adaptive jobs may
    /// shrink below their recorded size.
    pub shrink_factor: u32,
    /// `max_pes = procs × grow_factor`: adaptivity headroom above it.
    pub grow_factor: u32,
    /// Efficiency at min/max processors.
    pub efficiency: (f64, f64),
    /// Fraction of jobs treated as adaptive (by job id hash).
    pub adaptive_fraction: f64,
    /// Soft deadline = submit + runtime × slack.
    pub slack: f64,
    /// Hard deadline = soft × this factor.
    pub hard_over_soft: f64,
    /// Dollars per CPU-second of recorded work.
    pub payoff_rate: Money,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            shrink_factor: 2,
            grow_factor: 2,
            efficiency: (0.95, 0.75),
            adaptive_fraction: 1.0,
            slack: 4.0,
            hard_over_soft: 2.0,
            payoff_rate: Money::from_units_f64(0.02),
        }
    }
}

/// Parse SWF text. Records with missing submit/runtime/procs are skipped
/// (as is conventional); malformed lines are reported as errors.
pub fn parse_swf(text: &str) -> Result<Vec<TraceRecord>, String> {
    let mut out = vec![];
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        let f: Vec<&str> = line.split_whitespace().collect();
        if f.len() < 5 {
            return Err(format!("line {}: only {} fields", lineno + 1, f.len()));
        }
        let get = |i: usize| -> f64 { f.get(i).and_then(|v| v.parse().ok()).unwrap_or(-1.0) };
        let job = get(0);
        let submit = get(1);
        let runtime = get(3);
        let mut procs = get(4);
        if procs <= 0.0 {
            procs = get(7); // requested processors fallback
        }
        if submit < 0.0 || runtime <= 0.0 || procs <= 0.0 {
            continue; // cancelled/failed/incomplete records
        }
        let user = get(11).max(0.0);
        out.push(TraceRecord {
            job: job.max(0.0) as u64,
            submit_secs: submit as u64,
            runtime_secs: runtime,
            procs: procs as u32,
            user: user as u64,
        });
    }
    Ok(out)
}

/// Lift one record into a QoS contract under `cfg`.
pub fn record_to_qos(rec: &TraceRecord, cfg: &TraceConfig) -> QosContract {
    let at = SimTime::from_secs(rec.submit_secs);
    let min_pes = (rec.procs / cfg.shrink_factor.max(1)).max(1);
    let max_pes = (rec.procs * cfg.grow_factor.max(1)).max(min_pes);
    // Recorded runtime × recorded procs ≈ delivered CPU-seconds; back out
    // the sequential work through the efficiency at the recorded size.
    let speedup = SpeedupModel::LinearEfficiency {
        eff_min: cfg.efficiency.0,
        eff_max: cfg.efficiency.1,
    };
    let eff_at_rec = speedup.efficiency(rec.procs, min_pes, max_pes);
    let work = rec.runtime_secs * rec.procs as f64 * eff_at_rec;

    let soft = at.saturating_add(SimDuration::from_secs_f64(rec.runtime_secs * cfg.slack));
    let hard = at.saturating_add(SimDuration::from_secs_f64(
        rec.runtime_secs * cfg.slack * cfg.hard_over_soft,
    ));
    let payoff_soft = cfg.payoff_rate.mul_f64(work);
    // Deterministic adaptivity assignment by job id.
    let hash_unit = ((rec.job.wrapping_mul(0x9E3779B97F4A7C15) >> 40) as f64) / (1u64 << 24) as f64;
    let adaptive = hash_unit < cfg.adaptive_fraction;

    let mut b = QosBuilder::new("trace-app", min_pes, max_pes, work)
        .efficiency(cfg.efficiency.0, cfg.efficiency.1)
        .payoff(PayoffFn {
            soft_deadline: soft,
            hard_deadline: hard,
            payoff_soft,
            payoff_hard: payoff_soft.mul_f64(0.4),
            penalty_late: payoff_soft.mul_f64(0.25),
        });
    if adaptive {
        b = b.adaptive();
    }
    b.build().expect("trace QoS validates")
}

/// Build a replay [`Workload`] from SWF text.
pub fn workload_from_swf(
    text: &str,
    cfg: &TraceConfig,
    horizon: SimTime,
) -> Result<Workload, String> {
    let records = parse_swf(text)?;
    let jobs = records
        .iter()
        .map(|r| {
            (
                SimTime::from_secs(r.submit_secs),
                UserId(r.user),
                record_to_qos(r, cfg),
            )
        })
        .collect();
    Ok(Workload::from_trace(jobs, horizon))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
; SWF sample (comment)
;
1 0    10 3600  64 -1 -1  64 7200 -1 1 3 2 1 1 1 -1 -1
2 120  -1 1800  -1 -1 -1 128 3600 -1 1 4 2 1 1 1 -1 -1
3 300  5  -1    32 -1 -1  32 600  -1 0 5 2 1 1 1 -1 -1
4 450  0  60    16 -1 -1  16 120  -1 1 6 2 1 1 1 -1 -1
";

    #[test]
    fn parses_and_skips_incomplete_records() {
        let recs = parse_swf(SAMPLE).unwrap();
        // Job 3 has runtime -1 → skipped. Job 2 has procs -1 → falls back
        // to requested (128).
        assert_eq!(recs.len(), 3);
        assert_eq!(
            recs[0],
            TraceRecord {
                job: 1,
                submit_secs: 0,
                runtime_secs: 3600.0,
                procs: 64,
                user: 3
            }
        );
        assert_eq!(recs[1].procs, 128);
        assert_eq!(recs[2].job, 4);
    }

    #[test]
    fn malformed_lines_error() {
        assert!(parse_swf("1 2").is_err());
        assert!(parse_swf("").unwrap().is_empty());
    }

    #[test]
    fn record_lifts_to_valid_qos() {
        let recs = parse_swf(SAMPLE).unwrap();
        let cfg = TraceConfig::default();
        for r in &recs {
            let q = record_to_qos(r, &cfg);
            assert!(q.validate().is_ok());
            assert!(q.min_pes <= r.procs && r.procs <= q.max_pes);
            // Work backs out so the recorded shape is reproducible: wall
            // time at the recorded size ≈ recorded runtime.
            let wall = q.wall_time_on(r.procs, 1.0).as_secs_f64();
            assert!(
                (wall - r.runtime_secs).abs() / r.runtime_secs < 1e-6,
                "wall {wall} vs recorded {}",
                r.runtime_secs
            );
            assert!(q.deadline() > SimTime::from_secs(r.submit_secs));
        }
    }

    #[test]
    fn workload_replays_in_order() {
        let mut w =
            workload_from_swf(SAMPLE, &TraceConfig::default(), SimTime::from_hours(2)).unwrap();
        let mut last = SimTime::ZERO;
        let mut n = 0;
        while let Some((at, _, qos)) = w.next_job(last) {
            assert!(at >= last);
            assert!(qos.validate().is_ok());
            last = at;
            n += 1;
        }
        assert_eq!(n, 3);
    }

    #[test]
    fn horizon_truncates_replay() {
        let mut w =
            workload_from_swf(SAMPLE, &TraceConfig::default(), SimTime::from_secs(200)).unwrap();
        let mut n = 0;
        while w.next_job(SimTime::ZERO).is_some() {
            n += 1;
        }
        assert_eq!(n, 2, "job at t=450 is past the horizon");
    }

    #[test]
    fn adaptive_fraction_zero_is_rigid() {
        let cfg = TraceConfig {
            adaptive_fraction: 0.0,
            ..TraceConfig::default()
        };
        let recs = parse_swf(SAMPLE).unwrap();
        assert!(recs.iter().all(|r| !record_to_qos(r, &cfg).adaptive));
        let cfg = TraceConfig {
            adaptive_fraction: 1.0,
            ..TraceConfig::default()
        };
        assert!(recs.iter().all(|r| record_to_qos(r, &cfg).adaptive));
    }
}
