//! Fair-usage metrics (§5.5.4).
//!
//! *"some elements of the bartering scheme may be incorporated in order to
//! allow individual departments or users from getting 'fair usage' from
//! resources, so that high priority jobs do not forever starve a subset of
//! users"* — starvation is measurable: Jain's fairness index over per-user
//! delivered service is 1.0 when everyone gets an equal share and tends to
//! `1/n` when one user takes everything.

/// Jain's fairness index: `(Σx)² / (n · Σx²)` over non-negative service
/// figures. Returns 1.0 for an empty or all-zero population (nobody is
/// being starved *relative to others*).
pub fn jain_index(values: &[f64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sq: f64 = values.iter().map(|v| v * v).sum();
    if sq <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_shares_are_perfectly_fair() {
        assert!((jain_index(&[5.0, 5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monopolies_score_one_over_n() {
        let idx = jain_index(&[10.0, 0.0, 0.0, 0.0]);
        assert!((idx - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mild_skew_lands_in_between() {
        let idx = jain_index(&[4.0, 2.0]);
        assert!(idx > 0.5 && idx < 1.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }
}
