//! Synthetic "patterns of job submissions" (§5.4).
//!
//! The generator follows the parallel-workload modelling tradition the
//! paper's community used: Poisson (optionally day/night-modulated)
//! arrivals, log-uniform power-of-two processor requests, log-normal
//! runtimes with a heavy tail, deadline slack proportional to runtime, and
//! a configurable fraction of adaptive jobs. Every knob is explicit so the
//! E1–E12 experiments can state their workloads precisely.

use faucets_core::ids::UserId;
use faucets_core::money::Money;
use faucets_core::qos::{PayoffFn, QosBuilder, QosContract, SpeedupModel};
use faucets_sim::dist::{Dist, Exp, LogNormal, UniformDist};
use faucets_sim::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson with the given mean inter-arrival time.
    Poisson {
        /// Mean time between submissions.
        mean_interarrival: SimDuration,
    },
    /// Poisson modulated by a 24 h day/night cycle: the instantaneous rate
    /// swings by ±`amplitude` (0..1) around the base rate, peaking at noon.
    DailyCycle {
        /// Mean inter-arrival time at the average rate.
        mean_interarrival: SimDuration,
        /// Relative swing in [0, 1).
        amplitude: f64,
    },
}

impl ArrivalProcess {
    /// Draw the next arrival after `now` (thinning for the modulated case).
    pub fn next_after(&self, now: SimTime, rng: &mut StdRng) -> SimTime {
        match *self {
            ArrivalProcess::Poisson { mean_interarrival } => {
                let d = Exp::with_mean(mean_interarrival.as_secs_f64()).sample(rng);
                now.saturating_add(SimDuration::from_secs_f64(d))
            }
            ArrivalProcess::DailyCycle {
                mean_interarrival,
                amplitude,
            } => {
                // Thinning against the peak rate.
                let base_rate = 1.0 / mean_interarrival.as_secs_f64();
                let peak = base_rate * (1.0 + amplitude);
                let mut t = now;
                loop {
                    let d = Exp::new(peak).sample(rng);
                    t = t.saturating_add(SimDuration::from_secs_f64(d));
                    let phase = (t.as_secs_f64() % 86_400.0) / 86_400.0;
                    // Rate peaks at noon (phase 0.5).
                    let rate = base_rate
                        * (1.0 + amplitude * (std::f64::consts::TAU * (phase - 0.25)).sin());
                    if rng.random::<f64>() < rate / peak {
                        return t;
                    }
                }
            }
        }
    }
}

/// The job-population mix.
#[derive(Debug, Clone)]
pub struct JobMix {
    /// Applications to draw from (uniformly).
    pub apps: Vec<String>,
    /// Log2 of the minimum processor request is uniform in this range
    /// (e.g. (0, 7) → min_pes in 1..=128 as powers of two).
    pub log2_min_pes: (u32, u32),
    /// `max_pes = min_pes ×` this factor (adaptivity headroom).
    pub max_over_min: u32,
    /// Work distribution, CPU-seconds of sequential work.
    pub work: LogNormal,
    /// Bounds on the drawn work.
    pub work_clamp: (f64, f64),
    /// Efficiency at min/max processors (linear interpolation, §2.1).
    pub efficiency: (f64, f64),
    /// Probability a job is adaptive.
    pub adaptive_fraction: f64,
    /// Soft deadline = arrival + runtime-at-max × this factor (drawn
    /// uniformly from the range).
    pub slack: UniformDist,
    /// Hard deadline = soft deadline × this factor.
    pub hard_over_soft: f64,
    /// Payoff per CPU-second of work, dollars.
    pub payoff_rate: Money,
    /// Late penalty as a fraction of the soft payoff.
    pub penalty_fraction: f64,
    /// Memory per processor, MB.
    pub mem_per_pe_mb: u64,
}

impl Default for JobMix {
    fn default() -> Self {
        JobMix {
            apps: vec!["namd".into(), "cfd".into(), "qmc".into()],
            log2_min_pes: (0, 6),
            max_over_min: 4,
            work: LogNormal::with_median(4.0_f64.exp2() * 900.0, 1.4),
            work_clamp: (60.0, 2.0e6),
            efficiency: (0.95, 0.75),
            adaptive_fraction: 1.0,
            slack: UniformDist::new(2.0, 8.0),
            hard_over_soft: 2.0,
            payoff_rate: Money::from_units_f64(0.02),
            penalty_fraction: 0.25,
            mem_per_pe_mb: 512,
        }
    }
}

impl JobMix {
    /// Draw one QoS contract for a job arriving at `at`.
    pub fn draw(&self, at: SimTime, rng: &mut StdRng) -> QosContract {
        let app = &self.apps[rng.random_range(0..self.apps.len())];
        let min_pes = 1u32 << rng.random_range(self.log2_min_pes.0..=self.log2_min_pes.1);
        let max_pes = min_pes * self.max_over_min;
        let work = self
            .work
            .sample(rng)
            .clamp(self.work_clamp.0, self.work_clamp.1);

        // Runtime at max size under the declared efficiency model.
        let speedup = SpeedupModel::LinearEfficiency {
            eff_min: self.efficiency.0,
            eff_max: self.efficiency.1,
        };
        let runtime_at_max = speedup.wall_seconds(work, max_pes, min_pes, max_pes);
        let slack = self.slack.sample(rng);
        let soft = at.saturating_add(SimDuration::from_secs_f64(runtime_at_max * slack));
        let hard = at.saturating_add(SimDuration::from_secs_f64(
            runtime_at_max * slack * self.hard_over_soft,
        ));
        let payoff_soft = self.payoff_rate.mul_f64(work);
        let payoff = PayoffFn {
            soft_deadline: soft,
            hard_deadline: hard,
            payoff_soft,
            payoff_hard: payoff_soft.mul_f64(0.4),
            penalty_late: payoff_soft.mul_f64(self.penalty_fraction),
        };

        let mut b = QosBuilder::new(app.clone(), min_pes, max_pes, work)
            .efficiency(self.efficiency.0, self.efficiency.1)
            .mem_per_pe_mb(self.mem_per_pe_mb)
            .payoff(payoff);
        if rng.random::<f64>() < self.adaptive_fraction {
            b = b.adaptive();
        }
        b.build().expect("generated QoS must validate")
    }
}

/// Where a workload's jobs come from.
#[derive(Debug, Clone)]
enum Source {
    /// Synthetic: arrival process × job mix. (Boxed: the mix dwarfs the
    /// trace variant's handle.)
    Generative {
        arrivals: ArrivalProcess,
        mix: Box<JobMix>,
        rng: Box<StdRng>,
    },
    /// Replay of a pre-built submission list (e.g. a parsed SWF trace),
    /// sorted by arrival time.
    Trace {
        jobs: std::collections::VecDeque<(SimTime, UserId, QosContract)>,
    },
}

/// A streaming workload: a job source plus a user population and horizon.
#[derive(Debug, Clone)]
pub struct Workload {
    source: Source,
    /// Users submitting (drawn uniformly per job in generative mode).
    pub users: Vec<UserId>,
    /// Stop generating at this time.
    pub horizon: SimTime,
}

impl Workload {
    /// A synthetic workload with its own RNG stream.
    pub fn new(
        arrivals: ArrivalProcess,
        mix: JobMix,
        users: Vec<UserId>,
        horizon: SimTime,
        seed: u64,
    ) -> Self {
        assert!(!users.is_empty(), "workload needs at least one user");
        Workload {
            source: Source::Generative {
                arrivals,
                mix: Box::new(mix),
                rng: Box::new(StdRng::seed_from_u64(seed)),
            },
            users,
            horizon,
        }
    }

    /// A replay workload over an explicit submission list ("patterns of job
    /// submissions under study", §5.4 — e.g. from [`crate::trace`]).
    pub fn from_trace(mut jobs: Vec<(SimTime, UserId, QosContract)>, horizon: SimTime) -> Self {
        jobs.sort_by_key(|(at, u, _)| (*at, *u));
        let users: Vec<UserId> = {
            let mut v: Vec<UserId> = jobs.iter().map(|(_, u, _)| *u).collect();
            v.sort_unstable();
            v.dedup();
            if v.is_empty() {
                vec![UserId(0)]
            } else {
                v
            }
        };
        Workload {
            source: Source::Trace { jobs: jobs.into() },
            users,
            horizon,
        }
    }

    /// Draw the next `(arrival time, user, qos)`, or `None` past the horizon.
    pub fn next_job(&mut self, now: SimTime) -> Option<(SimTime, UserId, QosContract)> {
        match &mut self.source {
            Source::Generative { arrivals, mix, rng } => {
                let at = arrivals.next_after(now, rng);
                if at > self.horizon {
                    return None;
                }
                let user = self.users[rng.random_range(0..self.users.len())];
                let qos = mix.draw(at, rng);
                Some((at, user, qos))
            }
            Source::Trace { jobs } => {
                let (at, _, _) = jobs.front()?;
                if *at > self.horizon {
                    return None;
                }
                let (at, user, qos) = jobs.pop_front()?;
                // Map trace user ids onto the configured population so the
                // scenario's accounts/home-clusters always exist.
                let user = self.users[user.raw() as usize % self.users.len()];
                Some((at, user, qos))
            }
        }
    }

    /// Calibrate the Poisson rate so that the offered load (CPU-seconds per
    /// second) equals `rho` times the given total grid capacity (PEs).
    /// Returns the mean inter-arrival time to use.
    pub fn interarrival_for_load(mix: &JobMix, rho: f64, total_pes: u32) -> SimDuration {
        // E[work] of the clamped lognormal, estimated by quadrature sampling.
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        let n = 20_000;
        let mean_work: f64 = (0..n)
            .map(|_| {
                mix.work
                    .sample(&mut rng)
                    .clamp(mix.work_clamp.0, mix.work_clamp.1)
            })
            .sum::<f64>()
            / n as f64;
        let capacity = rho * total_pes as f64; // cpu-seconds deliverable per second
        SimDuration::from_secs_f64(mean_work / capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix() -> JobMix {
        JobMix::default()
    }

    #[test]
    fn poisson_mean_interarrival() {
        let p = ArrivalProcess::Poisson {
            mean_interarrival: SimDuration::from_secs(100),
        };
        let mut rng = StdRng::seed_from_u64(1);
        let mut t = SimTime::ZERO;
        let n = 20_000;
        for _ in 0..n {
            t = p.next_after(t, &mut rng);
        }
        let mean = t.as_secs_f64() / n as f64;
        assert!((mean - 100.0).abs() < 3.0, "poisson mean {mean}");
    }

    #[test]
    fn daily_cycle_peaks_at_noon() {
        let p = ArrivalProcess::DailyCycle {
            mean_interarrival: SimDuration::from_secs(60),
            amplitude: 0.8,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let mut t = SimTime::ZERO;
        let mut day_counts = [0u32; 24];
        while t < SimTime::from_hours(24 * 20) {
            t = p.next_after(t, &mut rng);
            let hour = (t.as_secs_f64() % 86_400.0 / 3600.0) as usize;
            day_counts[hour.min(23)] += 1;
        }
        let noon = day_counts[11] + day_counts[12] + day_counts[13];
        let night = day_counts[23] + day_counts[0] + day_counts[1];
        assert!(noon > night * 2, "noon {noon} vs night {night}");
    }

    #[test]
    fn drawn_qos_validates_and_respects_mix() {
        let m = mix();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..500 {
            let q = m.draw(SimTime::from_secs(1000), &mut rng);
            assert!(q.validate().is_ok());
            assert!(q.min_pes.is_power_of_two());
            assert!(q.min_pes >= 1 && q.min_pes <= 64);
            assert_eq!(q.max_pes, q.min_pes * 4);
            let (lo, hi) = m.work_clamp;
            let w = q.cpu_seconds(1.0);
            assert!(w >= lo && w <= hi);
            assert!(q.payoff.soft_deadline > SimTime::from_secs(1000));
            assert!(q.payoff.hard_deadline >= q.payoff.soft_deadline);
            assert!(q.adaptive, "mix has adaptive_fraction 1.0");
        }
    }

    #[test]
    fn adaptive_fraction_zero_makes_rigid_jobs() {
        let m = JobMix {
            adaptive_fraction: 0.0,
            ..mix()
        };
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            assert!(!m.draw(SimTime::ZERO, &mut rng).adaptive);
        }
    }

    #[test]
    fn workload_stream_is_deterministic_and_bounded() {
        let make = || {
            Workload::new(
                ArrivalProcess::Poisson {
                    mean_interarrival: SimDuration::from_secs(50),
                },
                mix(),
                vec![UserId(1), UserId(2)],
                SimTime::from_hours(2),
                42,
            )
        };
        let collect = |mut w: Workload| {
            let mut out = vec![];
            let mut t = SimTime::ZERO;
            while let Some((at, user, qos)) = w.next_job(t) {
                out.push((at, user, qos.min_pes));
                t = at;
            }
            out
        };
        let a = collect(make());
        let b = collect(make());
        assert_eq!(a, b, "same seed, same stream");
        assert!(!a.is_empty());
        assert!(a.iter().all(|&(at, _, _)| at <= SimTime::from_hours(2)));
        // Roughly 2h / 50s arrivals.
        assert!(
            (a.len() as i64 - 144).abs() < 60,
            "got {} arrivals",
            a.len()
        );
    }

    #[test]
    fn load_calibration_hits_target() {
        let m = mix();
        let inter = Workload::interarrival_for_load(&m, 0.7, 1000);
        // Offered load = E[work]/inter ≈ 0.7 * 1000.
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let mean_work: f64 = (0..n)
            .map(|_| {
                m.work
                    .sample(&mut rng)
                    .clamp(m.work_clamp.0, m.work_clamp.1)
            })
            .sum::<f64>()
            / n as f64;
        let offered = mean_work / inter.as_secs_f64();
        assert!((offered / 700.0 - 1.0).abs() < 0.05, "offered {offered}");
    }
}
