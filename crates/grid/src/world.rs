//! The whole-grid discrete-event world (§5.4).
//!
//! Every entity of the Faucets system is an object here — the Central
//! Server, one Faucets Daemon + Cluster Manager per Compute Server, the
//! contract book, the ledger, the credit bank, AppSpector — and the
//! [`GridWorld`] dispatches the §2 protocol between them over the
//! `faucets-sim` engine: job arrival → server matching → request-for-bids →
//! bid evaluation → two-phase award → staging/queueing → adaptive execution
//! → completion, settlement, and monitoring.

use crate::workload::Workload;
use faucets_core::accounting::{AccountId, Ledger};
use faucets_core::appspector::{AppSpector, OutputFile, TelemetrySample};
use faucets_core::auth::SessionToken;
use faucets_core::barter::{BarterRoute, CreditBank};
use faucets_core::bid::{Bid, BidRequest};
use faucets_core::daemon::{AwardOutcome, ClusterManager, FaucetsDaemon};
use faucets_core::ids::{ClusterId, ContractId, JobId, UserId};
use faucets_core::job::JobSpec;
use faucets_core::market::ContractBook;
use faucets_core::market::{ContractRecord, Regulator, SelectionPolicy};
use faucets_core::money::{Money, ServiceUnits};
use faucets_core::quota::SuQuota;
use faucets_core::server::FaucetsServer;
use faucets_sched::adaptive::CheckpointCostModel;
use faucets_sched::cluster::{Cluster, Completion};
use faucets_sim::engine::{Scheduler, World};
use faucets_sim::event::EventId;
use faucets_sim::stats::{P2Quantile, Summary};
use faucets_sim::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, HashMap};

/// How jobs find their Compute Server.
#[derive(Debug, Clone)]
pub enum MarketMode {
    /// The Faucets market: request-for-bids, client-side selection (§5).
    Bidding(SelectionPolicy),
    /// The bartering economy: Home Cluster first, credit-gated overflow
    /// (§5.5.3).
    Barter,
    /// The pre-grid status quo: each user may submit only to the clusters
    /// they hold accounts on (the external-fragmentation strawman of §1).
    Restricted,
    /// The academic context (§5.5.2): the same market, but bids are SU
    /// multipliers charged against user quotas instead of Dollar amounts.
    ServiceUnits(SelectionPolicy),
}

/// One Compute Server: its daemon (market agent) and scheduler.
pub struct Node {
    /// The Faucets Daemon.
    pub daemon: FaucetsDaemon,
    /// The Cluster Manager.
    pub cluster: Cluster,
}

/// Events flowing through the grid simulation.
#[derive(Debug, Clone)]
pub enum GridEvent {
    /// The workload generator fires the next job submission.
    NextArrival,
    /// Phase-2 of the contract protocol reaches the chosen daemon.
    /// (Boxed: the spec dwarfs the other variants and events are numerous.)
    Award {
        /// The job being placed.
        spec: Box<JobSpec>,
        /// The awarded contract.
        contract: ContractId,
        /// The winning bid.
        bid: Bid,
    },
    /// A cluster's next completion is due.
    ClusterWake(ClusterId),
    /// Periodic FD → FS polling (and optional telemetry).
    Heartbeat,
    /// A transient hardware failure takes a machine down; running jobs
    /// restart from their last checkpoint (§3).
    NodeFailure(ClusterId),
    /// Scheduled maintenance: the machine is "about to be taken down";
    /// §1 — jobs are checkpointed "and moving \[them\] to another machine,
    /// if possible".
    Maintenance {
        /// The machine being drained.
        cluster: ClusterId,
        /// How long it stays down.
        window: SimDuration,
    },
    /// A Faucets Daemon process crashes, taking its Compute Server out of
    /// the market until recovery. With [`GridWorld::daemon_recovery`] on,
    /// the daemon's journaled contracts are parked and resumed at restart;
    /// off, every accepted-but-unfinished contract is lost — the sim twin
    /// of the `faucets-net` snapshot journal.
    ClusterFailure {
        /// The cluster whose daemon dies.
        cluster: ClusterId,
        /// How long the daemon stays down.
        downtime: SimDuration,
    },
    /// The crashed daemon restarts, re-registers, and (with recovery
    /// enabled) resubmits its parked contracts.
    ClusterRecovery(ClusterId),
    /// A migrated job's checkpoint image finishes transferring and the job
    /// enters the destination queue.
    MigrationArrive {
        /// The job (respec'd to its remaining work).
        spec: Box<JobSpec>,
        /// Its contract (unchanged — same client, same price).
        contract: ContractId,
        /// Contracted price.
        price: Money,
        /// Destination cluster.
        to: ClusterId,
        /// True for a real cross-cluster move (counted as a migration);
        /// false when the job merely waits out a window at its source.
        migrated: bool,
    },
}

impl GridEvent {
    /// Stable label for this event's kind, used as the `kind` label on the
    /// `sim_events_total` telemetry counter.
    pub fn kind(&self) -> &'static str {
        match self {
            GridEvent::NextArrival => "NextArrival",
            GridEvent::Award { .. } => "Award",
            GridEvent::ClusterWake(_) => "ClusterWake",
            GridEvent::Heartbeat => "Heartbeat",
            GridEvent::NodeFailure(_) => "NodeFailure",
            GridEvent::Maintenance { .. } => "Maintenance",
            GridEvent::ClusterFailure { .. } => "ClusterFailure",
            GridEvent::ClusterRecovery(_) => "ClusterRecovery",
            GridEvent::MigrationArrive { .. } => "MigrationArrive",
        }
    }
}

/// Sim-time-aware telemetry for the grid world: the same collector types
/// the live TCP services use, but driven by a [`TelemetryClock::Sim`] cell
/// that the event loop advances to the scheduler's `now` before each
/// dispatch — so `sim_response_seconds` is measured in *simulated* seconds
/// while `net_request_seconds` on the live path stays in wall seconds, one
/// histogram API for both.
///
/// [`TelemetryClock::Sim`]: faucets_telemetry::TelemetryClock::Sim
pub struct SimInstruments {
    /// The shared simulated-time cell; also usable for sim-timed
    /// [`faucets_telemetry::Stopwatch`]es.
    pub clock: faucets_telemetry::TelemetryClock,
    /// Per-kind `sim_events_total` handles, cached after first use.
    events: HashMap<&'static str, faucets_telemetry::Counter>,
    h_response: faucets_telemetry::Histogram,
    h_wait: faucets_telemetry::Histogram,
}

impl SimInstruments {
    /// Collectors registered on the process-global registry.
    pub fn new() -> Self {
        let reg = faucets_telemetry::global();
        SimInstruments {
            clock: faucets_telemetry::TelemetryClock::sim(),
            events: HashMap::new(),
            h_response: reg.histogram("sim_response_seconds", &[]),
            h_wait: reg.histogram("sim_wait_seconds", &[]),
        }
    }

    /// Count one dispatched event of `kind`.
    fn event(&mut self, kind: &'static str) {
        self.events
            .entry(kind)
            .or_insert_with(|| {
                faucets_telemetry::global().counter("sim_events_total", &[("kind", kind)])
            })
            .inc();
    }
}

impl Default for SimInstruments {
    fn default() -> Self {
        SimInstruments::new()
    }
}

/// Grid-level counters and quality metrics.
pub struct GridStats {
    /// Jobs submitted.
    pub submitted: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Jobs with no acceptable bid / no feasible server.
    pub rejected: u64,
    /// Barter submissions blocked by exhausted credits.
    pub blocked_credits: u64,
    /// Submissions blocked by exhausted SU quotas (§5.5.2).
    pub blocked_quota: u64,
    /// Total SUs charged to users.
    pub su_charged: ServiceUnits,
    /// Awards reneged by daemons (two-phase protocol).
    pub reneges: u64,
    /// Completions past the hard deadline.
    pub deadline_misses: u64,
    /// Response times (s).
    pub response: Summary,
    /// Wait times (s).
    pub wait: Summary,
    /// Bounded slowdowns.
    pub slowdown: Summary,
    /// p95 of bounded slowdown.
    pub slowdown_p95: P2Quantile,
    /// Protocol messages exchanged (RFBs, bids, awards, confirms,
    /// heartbeats).
    pub messages: u64,
    /// Total paid by clients at bid prices.
    pub paid_total: Money,
    /// Total payoff value realized by clients.
    pub payoff_total: Money,
    /// Per-user delivered service: (jobs completed, CPU-seconds of work).
    pub per_user: BTreeMap<UserId, (u64, f64)>,
    /// Machine failures injected.
    pub failures: u64,
    /// Jobs recovered from checkpoints after failures.
    pub jobs_recovered: u64,
    /// Jobs migrated between clusters.
    pub migrations: u64,
    /// Daemon crashes injected ([`GridEvent::ClusterFailure`]).
    pub daemon_failures: u64,
    /// Daemon restarts completed ([`GridEvent::ClusterRecovery`]).
    pub daemon_recoveries: u64,
    /// Contracts lost to daemon crashes (no-recovery runs only).
    pub jobs_lost: u64,
}

impl GridStats {
    /// Jain's fairness index over per-user delivered CPU-seconds (§5.5.4's
    /// "fair usage" check). 1.0 = perfectly even service.
    pub fn user_fairness(&self) -> f64 {
        let v: Vec<f64> = self.per_user.values().map(|&(_, cpu)| cpu).collect();
        crate::fairness::jain_index(&v)
    }
}

impl Default for GridStats {
    fn default() -> Self {
        GridStats {
            submitted: 0,
            completed: 0,
            rejected: 0,
            blocked_credits: 0,
            blocked_quota: 0,
            su_charged: ServiceUnits::ZERO,
            reneges: 0,
            deadline_misses: 0,
            response: Summary::new(),
            wait: Summary::new(),
            slowdown: Summary::new(),
            slowdown_p95: P2Quantile::new(0.95),
            messages: 0,
            paid_total: Money::ZERO,
            payoff_total: Money::ZERO,
            per_user: BTreeMap::new(),
            failures: 0,
            jobs_recovered: 0,
            migrations: 0,
            daemon_failures: 0,
            daemon_recoveries: 0,
            jobs_lost: 0,
        }
    }
}

/// Per-job bookkeeping needed at completion time.
#[derive(Debug, Clone)]
struct JobInfo {
    user: UserId,
    cpu_seconds: f64,
    min_pes: u32,
    multiplier: f64,
    retries: u32,
}

/// Transient-failure injection parameters (§3 recovery).
#[derive(Debug, Clone)]
pub struct FailureModel {
    /// Mean time between failures per machine.
    pub mtbf: SimDuration,
    /// Periodic checkpoint interval (progress since the last checkpoint is
    /// lost on failure).
    pub checkpoint_interval: SimDuration,
    /// Seed for the failure process.
    pub seed: u64,
}

/// The complete Faucets grid as a simulated world.
pub struct GridWorld {
    /// The Central Server.
    pub server: FaucetsServer,
    /// Compute Servers by id.
    pub nodes: BTreeMap<ClusterId, Node>,
    /// All QoS contracts.
    pub book: ContractBook,
    /// The Dollar ledger (users, clusters, system).
    pub ledger: Ledger<Money>,
    /// The bartering bank (present in barter scenarios).
    pub bank: Option<CreditBank>,
    /// SU quota bank (present in ServiceUnits scenarios).
    pub quota: Option<SuQuota>,
    /// Job monitoring.
    pub appspector: AppSpector,
    /// Placement mode.
    pub mode: MarketMode,
    /// One-way latency budget for the award leg of the protocol.
    pub market_latency: SimDuration,
    /// FD polling period.
    pub heartbeat_every: SimDuration,
    /// Whether to push telemetry samples on heartbeats.
    pub telemetry: bool,
    /// Per-user allowed clusters (Restricted mode).
    pub accounts: HashMap<UserId, Vec<ClusterId>>,
    /// Counters.
    pub stats: GridStats,
    /// The workload source.
    pub workload: Workload,
    token: SessionToken,
    jobs: HashMap<JobId, JobInfo>,
    armed_wakes: HashMap<ClusterId, (EventId, SimTime)>,
    max_award_retries: u32,
    /// The pre-drawn spec for the scheduled NextArrival event.
    pending_spec: Option<JobSpec>,
    next_job_id: u64,
    /// Failure injection, when enabled.
    pub failure_model: Option<FailureModel>,
    failure_rng: StdRng,
    /// Whether maintenance drains migrate work to other clusters (vs. wait).
    pub migrate_on_maintenance: bool,
    /// Optional §5.5.1 price-band regulator applied to every bid slate.
    pub regulator: Option<Regulator>,
    /// Bids screened out (or clamped) by the regulator.
    pub regulated_bids: u64,
    /// Scheduled maintenance windows: (cluster, start, duration).
    pub maintenance_plan: Vec<(ClusterId, SimTime, SimDuration)>,
    /// Scheduled daemon crashes: (cluster, start, downtime).
    pub daemon_outage_plan: Vec<(ClusterId, SimTime, SimDuration)>,
    /// Whether crashed daemons resume their journaled contracts at restart
    /// (the sim twin of the `faucets-net` FD snapshot).
    pub daemon_recovery: bool,
    /// Machines currently down, until the given instant.
    down_until: HashMap<ClusterId, SimTime>,
    /// Contracts parked by crashed daemons awaiting recovery.
    parked: HashMap<ClusterId, Vec<(JobSpec, ContractId, Money)>>,
    /// Sim-time telemetry (event counters, sim-second latency histograms).
    pub instruments: SimInstruments,
}

impl GridWorld {
    /// Assemble a world. Used by [`crate::scenario::ScenarioBuilder`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        server: FaucetsServer,
        nodes: BTreeMap<ClusterId, Node>,
        ledger: Ledger<Money>,
        bank: Option<CreditBank>,
        mode: MarketMode,
        workload: Workload,
        token: SessionToken,
        accounts: HashMap<UserId, Vec<ClusterId>>,
        market_latency: SimDuration,
        heartbeat_every: SimDuration,
        telemetry: bool,
    ) -> Self {
        GridWorld {
            server,
            nodes,
            book: ContractBook::new(),
            ledger,
            bank,
            quota: None,
            appspector: AppSpector::new(64),
            mode,
            market_latency,
            heartbeat_every,
            telemetry,
            accounts,
            stats: GridStats::default(),
            workload,
            token,
            jobs: HashMap::new(),
            armed_wakes: HashMap::new(),
            max_award_retries: 3,
            pending_spec: None,
            next_job_id: 0,
            failure_model: None,
            failure_rng: StdRng::seed_from_u64(0xFA11),
            migrate_on_maintenance: true,
            regulator: None,
            regulated_bids: 0,
            maintenance_plan: vec![],
            daemon_outage_plan: vec![],
            daemon_recovery: true,
            down_until: HashMap::new(),
            parked: HashMap::new(),
            instruments: SimInstruments::new(),
        }
    }

    /// Is the cluster inside a maintenance window at `now`?
    fn is_down(&self, cluster: ClusterId, now: SimTime) -> bool {
        self.down_until.get(&cluster).is_some_and(|&t| now < t)
    }

    /// Draw the next failure delay for one machine.
    fn next_failure_in(&mut self, mtbf: SimDuration) -> SimDuration {
        use faucets_sim::dist::{Dist, Exp};
        let d = Exp::with_mean(mtbf.as_secs_f64()).sample(&mut self.failure_rng);
        SimDuration::from_secs_f64(d.max(1.0))
    }

    /// Seed the initial events (first arrival, heartbeat loop, failures).
    pub fn prime(&mut self, sched: &mut Scheduler<GridEvent>) {
        if let Some((at, user, qos)) = self.workload.next_job(sched.now()) {
            let spec = self.make_spec(user, qos, at);
            self.pending_spec = Some(spec);
            sched.schedule_at(at, GridEvent::NextArrival);
        }
        sched.schedule_in(self.heartbeat_every, GridEvent::Heartbeat);
        if let Some(fm) = self.failure_model.clone() {
            self.failure_rng = StdRng::seed_from_u64(fm.seed);
            let ids: Vec<ClusterId> = self.nodes.keys().copied().collect();
            for c in ids {
                let delay = self.next_failure_in(fm.mtbf);
                sched.schedule_in(delay, GridEvent::NodeFailure(c));
            }
        }
        for (cluster, at, window) in self.maintenance_plan.clone() {
            sched.schedule_at(at, GridEvent::Maintenance { cluster, window });
        }
        for (cluster, at, downtime) in self.daemon_outage_plan.clone() {
            sched.schedule_at(at, GridEvent::ClusterFailure { cluster, downtime });
        }
    }

    fn make_spec(
        &mut self,
        user: UserId,
        qos: faucets_core::qos::QosContract,
        at: SimTime,
    ) -> JobSpec {
        let id = JobId(self.next_job_id);
        self.next_job_id += 1;
        JobSpec::new(id, user, qos, at).expect("workload QoS validates")
    }

    /// Re-arm a cluster's completion wake-up if its next completion moved.
    fn rearm(&mut self, cluster: ClusterId, sched: &mut Scheduler<GridEvent>) {
        let next = self.nodes[&cluster].cluster.next_completion();
        let armed = self.armed_wakes.get(&cluster).copied();
        match (next, armed) {
            (Some(t), Some((_, at))) if t == at => {}
            (Some(t), prev) => {
                if let Some((id, _)) = prev {
                    sched.cancel(id);
                }
                let id = sched.schedule_at(t.max(sched.now()), GridEvent::ClusterWake(cluster));
                self.armed_wakes.insert(cluster, (id, t.max(sched.now())));
            }
            (None, Some((id, _))) => {
                sched.cancel(id);
                self.armed_wakes.remove(&cluster);
            }
            (None, None) => {}
        }
    }

    /// Record and apply a completed job.
    fn settle(&mut self, cluster: ClusterId, c: &Completion, now: SimTime) {
        let job = c.outcome.job;
        let info = self.jobs.get(&job).cloned();
        self.stats.completed += 1;
        if !c.outcome.met_deadline {
            self.stats.deadline_misses += 1;
        }
        self.stats.response.record(c.outcome.response_secs());
        self.stats.wait.record(c.outcome.wait_secs());
        // Mirror into the telemetry histograms, in *simulated* seconds.
        self.instruments
            .h_response
            .record(c.outcome.response_secs());
        self.instruments.h_wait.record(c.outcome.wait_secs());
        let sd = c.outcome.bounded_slowdown();
        self.stats.slowdown.record(sd);
        self.stats.slowdown_p95.record(sd);
        self.stats.paid_total += c.price;
        self.stats.payoff_total += c.payoff;

        let _ = self.book.complete(c.contract, now, c.price);
        let _ = self.appspector.complete_job(
            job,
            vec![OutputFile {
                name: "output.dat".into(),
                size_bytes: 1 << 20,
            }],
        );

        if let Some(info) = info {
            let e = self.stats.per_user.entry(info.user).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += info.cpu_seconds;
            // Dollar settlement: user pays the contract price.
            if c.price > Money::ZERO {
                let _ = self.ledger.transfer(
                    AccountId::User(info.user),
                    AccountId::Cluster(cluster),
                    c.price,
                    format!("settlement {job}"),
                );
            }
            // Payoff flows between the system and the user.
            if c.payoff >= Money::ZERO {
                let _ = self.ledger.transfer(
                    AccountId::System,
                    AccountId::User(info.user),
                    c.payoff,
                    format!("payoff {job}"),
                );
            } else {
                let _ = self.ledger.transfer(
                    AccountId::User(info.user),
                    AccountId::System,
                    -c.payoff,
                    format!("penalty {job}"),
                );
            }
            // Grid-weather history (§5.2.1).
            self.server.record_settlement(ContractRecord {
                job,
                cluster,
                multiplier: info.multiplier,
                price: c.price,
                cpu_seconds: info.cpu_seconds,
                min_pes: info.min_pes,
                at: now,
            });
            // Barter credits (§5.5.3).
            if let Some(bank) = &mut self.bank {
                let credits = ServiceUnits::from_units_f64(info.cpu_seconds);
                let _ = bank.settle_remote_run(info.user, cluster, credits);
            }
            self.jobs.remove(&job);
        }
    }

    /// Place a job according to the active mode.
    fn place(&mut self, spec: JobSpec, sched: &mut Scheduler<GridEvent>) {
        match self.mode.clone() {
            MarketMode::Bidding(policy) => self.place_bidding(spec, policy, sched),
            MarketMode::Barter => self.place_barter(spec, sched),
            MarketMode::Restricted => self.place_restricted(spec, sched),
            MarketMode::ServiceUnits(policy) => self.place_su(spec, policy, sched),
        }
    }

    fn remember(&mut self, spec: &JobSpec, multiplier: f64) {
        let flops = 1.0; // work is CPU-seconds in all scenarios
        self.jobs.insert(
            spec.id,
            JobInfo {
                user: spec.user,
                cpu_seconds: spec.qos.cpu_seconds(flops),
                min_pes: spec.qos.min_pes,
                multiplier,
                retries: self.jobs.get(&spec.id).map_or(0, |j| j.retries),
            },
        );
    }

    fn place_bidding(
        &mut self,
        spec: JobSpec,
        policy: SelectionPolicy,
        sched: &mut Scheduler<GridEvent>,
    ) {
        let now = sched.now();
        let candidates: Vec<ClusterId> =
            match self.server.match_servers(&self.token, &spec.qos, now) {
                Ok(c) => c.into_iter().filter(|&c| !self.is_down(c, now)).collect(),
                Err(_) => {
                    self.stats.rejected += 1;
                    return;
                }
            };
        let market = self.server.market_info(now);
        let req = BidRequest {
            job: spec.id,
            user: spec.user,
            qos: spec.qos.clone(),
            issued_at: now,
        };
        let mut bids: Vec<Bid> = vec![];
        for c in candidates {
            let node = self
                .nodes
                .get_mut(&c)
                .expect("directory lists only known nodes");
            self.stats.messages += 2; // RFB + response
            if let Some(b) = node
                .daemon
                .handle_bid_request(&req, &mut node.cluster, &market, now)
                .offer()
            {
                bids.push(*b);
            }
        }
        // §5.5.1: regulatory screening against the grid's normal price.
        if let Some(reg) = self.regulator {
            let normal = self.server.history.price_index();
            let (kept, stats) = reg.screen(&bids, normal);
            self.regulated_bids += (stats.rejected + stats.clamped) as u64;
            bids = kept;
        }
        match policy.select(&bids, &spec.qos.payoff) {
            Some(bid) => {
                let bid = *bid;
                match self.book.award(bid, now) {
                    Ok(contract) => {
                        self.remember(&spec, bid.multiplier);
                        self.stats.messages += 1; // award
                        sched.schedule_in(
                            self.market_latency,
                            GridEvent::Award {
                                spec: Box::new(spec),
                                contract,
                                bid,
                            },
                        );
                    }
                    Err(_) => self.stats.rejected += 1,
                }
            }
            None => self.stats.rejected += 1,
        }
    }

    /// Direct (non-market) placement used by barter and restricted modes:
    /// award + confirm + submit in one step.
    fn place_direct(
        &mut self,
        spec: JobSpec,
        cluster: ClusterId,
        sched: &mut Scheduler<GridEvent>,
    ) {
        let now = sched.now();
        let bid = Bid {
            id: faucets_core::ids::BidId(spec.id.raw()),
            cluster,
            job: spec.id,
            multiplier: 0.0,
            price: Money::ZERO,
            promised_completion: SimTime::MAX,
            planned_pes: spec.qos.min_pes,
        };
        let contract = match self.book.award(bid, now) {
            Ok(c) => c,
            Err(_) => {
                self.stats.rejected += 1;
                return;
            }
        };
        let _ = self.book.confirm(contract);
        self.remember(&spec, 0.0);
        let node = self.nodes.get_mut(&cluster).expect("known cluster");
        self.stats.messages += 1;
        self.appspector.register_job(spec.id, spec.user, cluster);
        node.cluster.submit_job(spec, contract, Money::ZERO, now);
        self.rearm(cluster, sched);
    }

    /// §5.5.2 placement: the Faucets market with SU-multiplier bids charged
    /// against user quotas. The charge is prepaid at award time (quota
    /// reserved), so quotas can never go negative.
    fn place_su(
        &mut self,
        spec: JobSpec,
        policy: SelectionPolicy,
        sched: &mut Scheduler<GridEvent>,
    ) {
        let now = sched.now();
        let candidates: Vec<ClusterId> =
            match self.server.match_servers(&self.token, &spec.qos, now) {
                Ok(c) => c.into_iter().filter(|&c| !self.is_down(c, now)).collect(),
                Err(_) => {
                    self.stats.rejected += 1;
                    return;
                }
            };
        let market = self.server.market_info(now);
        let req = BidRequest {
            job: spec.id,
            user: spec.user,
            qos: spec.qos.clone(),
            issued_at: now,
        };
        let mut bids = vec![];
        for c in candidates {
            let node = self
                .nodes
                .get_mut(&c)
                .expect("directory lists only known nodes");
            self.stats.messages += 2;
            if let Some(b) = node
                .daemon
                .handle_bid_request(&req, &mut node.cluster, &market, now)
                .offer()
            {
                bids.push(*b);
            }
        }
        let quota = self.quota.as_mut().expect("SU mode requires a quota bank");
        let cpu = spec.qos.cpu_seconds(1.0);
        // Best affordable bid under the selection policy.
        let ranked: Vec<Bid> = policy
            .rank(&bids, &spec.qos.payoff)
            .into_iter()
            .copied()
            .collect();
        // Checked SU pricing: a NaN/infinite multiplier is unaffordable by
        // definition, not a free job.
        let affordable = ranked.into_iter().find_map(|b| {
            SuQuota::try_su_cost(cpu, b.multiplier)
                .filter(|cost| quota.can_afford(spec.user, *cost))
                .map(|cost| (b, cost))
        });
        match affordable {
            Some((bid, cost)) => {
                if quota.charge(spec.user, bid.cluster, cost).is_err() {
                    self.stats.blocked_quota += 1;
                    return;
                }
                self.stats.su_charged += cost;
                match self.book.award(bid, now) {
                    Ok(contract) => {
                        self.remember(&spec, bid.multiplier);
                        self.stats.messages += 1;
                        sched.schedule_in(
                            self.market_latency,
                            GridEvent::Award {
                                spec: Box::new(spec),
                                contract,
                                bid,
                            },
                        );
                    }
                    Err(_) => self.stats.rejected += 1,
                }
            }
            None => {
                if bids.is_empty() {
                    self.stats.rejected += 1;
                } else {
                    self.stats.blocked_quota += 1;
                }
            }
        }
    }

    /// Find a home for a job displaced by maintenance: another live cluster
    /// whose scheduler accepts it (migration, when enabled), else back to
    /// the source queue to wait out the window.
    #[allow(clippy::too_many_arguments)]
    fn route_displaced(
        &mut self,
        spec: JobSpec,
        contract: ContractId,
        price: Money,
        image_mb: Option<u64>,
        from: ClusterId,
        wan: &CheckpointCostModel,
        sched: &mut Scheduler<GridEvent>,
    ) {
        let now = sched.now();
        if self.migrate_on_maintenance {
            let req = BidRequest {
                job: spec.id,
                user: spec.user,
                qos: spec.qos.clone(),
                issued_at: now,
            };
            let candidates: Vec<ClusterId> = self
                .nodes
                .keys()
                .copied()
                .filter(|&c| c != from && !self.is_down(c, now))
                .collect();
            for c in candidates {
                let ok = {
                    let node = self.nodes.get_mut(&c).unwrap();
                    self.stats.messages += 2;
                    node.cluster.probe(&req, now).is_ok()
                };
                if ok {
                    let transfer = match image_mb {
                        Some(mb) => SimDuration::from_secs_f64(mb as f64 / wan.wan_mb_per_sec),
                        None => SimDuration::ZERO,
                    };
                    sched.schedule_in(
                        transfer,
                        GridEvent::MigrationArrive {
                            spec: Box::new(spec),
                            contract,
                            price,
                            to: c,
                            migrated: true,
                        },
                    );
                    return;
                }
            }
        }
        // No migration target: wait at the source for the window to end.
        let back_at = self.down_until.get(&from).copied().unwrap_or(now).max(now);
        sched.schedule_at(
            back_at,
            GridEvent::MigrationArrive {
                spec: Box::new(spec),
                contract,
                price,
                to: from,
                migrated: false,
            },
        );
    }

    fn place_barter(&mut self, spec: JobSpec, sched: &mut Scheduler<GridEvent>) {
        let now = sched.now();
        let bank = self.bank.as_ref().expect("barter mode requires a bank");
        let Some(home) = bank.home_of(spec.user) else {
            self.stats.rejected += 1;
            return;
        };
        let req = BidRequest {
            job: spec.id,
            user: spec.user,
            qos: spec.qos.clone(),
            issued_at: now,
        };

        // Home first (unless it is down for maintenance).
        let home_ok = !self.is_down(home, now) && {
            let node = self.nodes.get_mut(&home).expect("home cluster exists");
            self.stats.messages += 2;
            node.cluster.probe(&req, now).is_ok()
        };
        // Remote candidates that would accept, in id order.
        let mut remote_ok = vec![];
        if !home_ok {
            let ids: Vec<ClusterId> = self
                .nodes
                .keys()
                .copied()
                .filter(|&c| c != home && !self.is_down(c, now))
                .collect();
            for c in ids {
                let node = self.nodes.get_mut(&c).unwrap();
                self.stats.messages += 2;
                if node.cluster.probe(&req, now).is_ok() {
                    remote_ok.push(c);
                }
            }
        }
        let est_cost = ServiceUnits::from_units_f64(spec.qos.cpu_seconds(1.0));
        let bank = self.bank.as_ref().unwrap();
        match bank.route(spec.user, home_ok, &remote_ok, est_cost) {
            Ok(BarterRoute::Home(c)) | Ok(BarterRoute::Remote(c)) => {
                self.place_direct(spec, c, sched)
            }
            Ok(BarterRoute::Blocked) => {
                // Blocked remotely: the job still queues at home (it just
                // waits), unless home can never run it.
                self.stats.blocked_credits += 1;
                self.place_direct(spec, home, sched);
            }
            Err(_) => self.stats.rejected += 1,
        }
    }

    fn place_restricted(&mut self, spec: JobSpec, sched: &mut Scheduler<GridEvent>) {
        let allowed = self.accounts.get(&spec.user).cloned().unwrap_or_default();
        if allowed.is_empty() {
            self.stats.rejected += 1;
            return;
        }
        // Traditional behaviour: submit to the least-loaded cluster the
        // user has an account on, and wait in its queue.
        let target = allowed
            .iter()
            .copied()
            .min_by_key(|c| {
                let n = &self.nodes[c];
                (
                    n.cluster.queue_len() as u32,
                    u32::MAX - n.cluster.free_pes(),
                )
            })
            .unwrap();
        self.place_direct(spec, target, sched);
    }
}

impl World for GridWorld {
    type Event = GridEvent;

    fn handle(&mut self, sched: &mut Scheduler<GridEvent>, event: GridEvent) {
        // Advance the shared sim clock to this event's timestamp before any
        // instrument can read it, then count the dispatch by kind.
        self.instruments.clock.set_micros(sched.now().as_micros());
        self.instruments.event(event.kind());
        match event {
            GridEvent::NextArrival => {
                if let Some(spec) = self.pending_spec.take() {
                    self.stats.submitted += 1;
                    self.place(spec, sched);
                }
                if let Some((at, user, qos)) = self.workload.next_job(sched.now()) {
                    let spec = self.make_spec(user, qos, at);
                    self.pending_spec = Some(spec);
                    sched.schedule_at(at, GridEvent::NextArrival);
                }
            }
            GridEvent::Award {
                spec,
                contract,
                bid,
            } => {
                let spec = *spec;
                let now = sched.now();
                let cluster_id = bid.cluster;
                let outcome = {
                    let node = self
                        .nodes
                        .get_mut(&cluster_id)
                        .expect("awarded to known cluster");
                    node.daemon
                        .handle_award(spec.clone(), contract, &bid, &mut node.cluster, now)
                };
                self.stats.messages += 1; // confirm / renege reply
                match outcome {
                    Ok(AwardOutcome::Confirmed) => {
                        let _ = self.book.confirm(contract);
                        self.appspector.register_job(spec.id, spec.user, cluster_id);
                        self.rearm(cluster_id, sched);
                    }
                    Ok(AwardOutcome::Reneged(_)) | Err(_) => {
                        let _ = self.book.renege(contract);
                        self.stats.reneges += 1;
                        let retries = self
                            .jobs
                            .get_mut(&spec.id)
                            .map(|j| {
                                j.retries += 1;
                                j.retries
                            })
                            .unwrap_or(u32::MAX);
                        if retries <= self.max_award_retries {
                            // Fall back to the market for a fresh slate.
                            self.place(spec, sched);
                        } else {
                            self.jobs.remove(&spec.id);
                            self.stats.rejected += 1;
                        }
                    }
                }
            }
            GridEvent::ClusterWake(cluster) => {
                let now = sched.now();
                self.armed_wakes.remove(&cluster);
                let completions = {
                    let node = self
                        .nodes
                        .get_mut(&cluster)
                        .expect("wake for known cluster");
                    node.cluster.on_time(now)
                };
                for c in completions {
                    self.settle(cluster, &c, now);
                }
                self.rearm(cluster, sched);
            }
            GridEvent::Heartbeat => {
                let now = sched.now();
                let ids: Vec<ClusterId> = self.nodes.keys().copied().collect();
                let mut any_work = self.pending_spec.is_some();
                for c in ids {
                    let (status, running): (_, Vec<(JobId, u32)>) = {
                        let node = &self.nodes[&c];
                        (
                            node.cluster.status(now),
                            node.cluster.running_jobs().collect(),
                        )
                    };
                    any_work |= status.queue_len > 0 || !running.is_empty();
                    self.server.heartbeat(c, status, now);
                    self.stats.messages += 2; // poll + response
                    if self.telemetry {
                        let total = self.nodes[&c].cluster.machine.total_pes;
                        for (job, pes) in running {
                            let _ = self.appspector.push_sample(
                                job,
                                TelemetrySample {
                                    at: now,
                                    pes,
                                    utilization: pes as f64 / total.max(1) as f64,
                                    throughput: pes as f64,
                                    app_data: format!("step@{now}"),
                                },
                            );
                        }
                    }
                }
                // Keep polling while there is anything left to observe; let
                // the simulation drain afterwards.
                if any_work {
                    sched.schedule_in(self.heartbeat_every, GridEvent::Heartbeat);
                }
            }
            GridEvent::Maintenance { cluster, window } => {
                let now = sched.now();
                self.down_until.insert(cluster, now.saturating_add(window));
                // Cancel any armed completion wake; the machine empties now.
                if let Some((id, _)) = self.armed_wakes.remove(&cluster) {
                    sched.cancel(id);
                }
                // Drain: checkpoint running jobs, pull the backlog.
                let (evicted, queued) = {
                    let node = self
                        .nodes
                        .get_mut(&cluster)
                        .expect("maintenance on known cluster");
                    let ids: Vec<JobId> = node.cluster.running_jobs().map(|(id, _)| id).collect();
                    let evicted: Vec<_> = ids
                        .into_iter()
                        .filter_map(|id| node.cluster.checkpoint_and_evict(id, now))
                        .collect();
                    (evicted, node.cluster.drain_queue())
                };
                let wan = CheckpointCostModel::default();
                // Checkpointed jobs carry an image across the WAN; queued
                // jobs move instantly (nothing started yet).
                for cj in evicted {
                    self.route_displaced(
                        cj.spec,
                        cj.contract,
                        cj.price,
                        Some(cj.image_mb),
                        cluster,
                        &wan,
                        sched,
                    );
                }
                for q in queued {
                    self.route_displaced(q.spec, q.contract, q.price, None, cluster, &wan, sched);
                }
            }
            GridEvent::MigrationArrive {
                spec,
                contract,
                price,
                to,
                migrated,
            } => {
                let now = sched.now();
                if migrated {
                    self.stats.migrations += 1;
                }
                let node = self.nodes.get_mut(&to).expect("migration to known cluster");
                node.cluster.submit_job(*spec, contract, price, now);
                self.rearm(to, sched);
            }
            GridEvent::ClusterFailure { cluster, downtime } => {
                let now = sched.now();
                self.stats.daemon_failures += 1;
                self.down_until
                    .insert(cluster, now.saturating_add(downtime));
                if let Some((id, _)) = self.armed_wakes.remove(&cluster) {
                    sched.cancel(id);
                }
                // The daemon process dies: nothing on this Compute Server
                // advances until it restarts. Checkpoint the running jobs
                // and pull the backlog.
                let (evicted, queued) = {
                    let node = self
                        .nodes
                        .get_mut(&cluster)
                        .expect("crash on known cluster");
                    let ids: Vec<JobId> = node.cluster.running_jobs().map(|(id, _)| id).collect();
                    let evicted: Vec<_> = ids
                        .into_iter()
                        .filter_map(|id| node.cluster.checkpoint_and_evict(id, now))
                        .collect();
                    (evicted, node.cluster.drain_queue())
                };
                if self.daemon_recovery {
                    // The journal survives the crash; contracts resume at
                    // restart.
                    let parked = self.parked.entry(cluster).or_default();
                    for cj in evicted {
                        parked.push((cj.spec, cj.contract, cj.price));
                    }
                    for q in queued {
                        parked.push((q.spec, q.contract, q.price));
                    }
                } else {
                    // No journal: every accepted contract on this daemon is
                    // gone with the process.
                    for (spec_id, contract) in evicted
                        .iter()
                        .map(|cj| (cj.spec.id, cj.contract))
                        .chain(queued.iter().map(|q| (q.spec.id, q.contract)))
                    {
                        self.stats.jobs_lost += 1;
                        let _ = self.book.renege(contract);
                        self.jobs.remove(&spec_id);
                    }
                }
                sched.schedule_in(downtime, GridEvent::ClusterRecovery(cluster));
            }
            GridEvent::ClusterRecovery(cluster) => {
                let now = sched.now();
                self.stats.daemon_recoveries += 1;
                self.down_until.remove(&cluster);
                for (spec, contract, price) in self.parked.remove(&cluster).unwrap_or_default() {
                    let node = self
                        .nodes
                        .get_mut(&cluster)
                        .expect("recovery on known cluster");
                    node.cluster.submit_job(spec, contract, price, now);
                }
                self.rearm(cluster, sched);
            }
            GridEvent::NodeFailure(cluster) => {
                let Some(fm) = self.failure_model.clone() else {
                    return;
                };
                let now = sched.now();
                self.stats.failures += 1;
                let recovered = {
                    let node = self
                        .nodes
                        .get_mut(&cluster)
                        .expect("failure on known cluster");
                    node.cluster.crash_and_recover(now, fm.checkpoint_interval)
                };
                self.stats.jobs_recovered += recovered as u64;
                self.rearm(cluster, sched);
                // Next failure for this machine — only while there is still
                // work in the system to disturb (lets the run drain).
                let busy = self.pending_spec.is_some()
                    || self
                        .nodes
                        .values()
                        .any(|n| n.cluster.running_count() > 0 || n.cluster.queue_len() > 0);
                if busy {
                    let delay = self.next_failure_in(fm.mtbf);
                    sched.schedule_in(delay, GridEvent::NodeFailure(cluster));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;
    use crate::workload::{ArrivalProcess, JobMix};
    use faucets_sim::engine::Simulation;

    fn small_sim(mode: MarketMode) -> Simulation<GridWorld> {
        ScenarioBuilder::new(7)
            .cluster(128, "equipartition", "util-interp")
            .cluster(256, "equipartition", "baseline")
            .users(4)
            .mode(mode)
            .arrivals(ArrivalProcess::Poisson {
                mean_interarrival: SimDuration::from_secs(300),
            })
            .mix(JobMix {
                log2_min_pes: (0, 4),
                ..JobMix::default()
            })
            .horizon(SimDuration::from_hours(6))
            .build()
    }

    #[test]
    fn bidding_grid_processes_jobs_end_to_end() {
        let mut sim = small_sim(MarketMode::Bidding(SelectionPolicy::LeastCost));
        sim.run();
        let w = sim.world();
        assert!(w.stats.submitted > 20, "submitted {}", w.stats.submitted);
        assert!(w.stats.completed > 0, "completed {}", w.stats.completed);
        assert_eq!(
            w.stats.completed + w.stats.rejected,
            w.stats.submitted,
            "every job completes or is rejected once the grid drains \
             (completed {}, rejected {}, submitted {})",
            w.stats.completed,
            w.stats.rejected,
            w.stats.submitted
        );
        assert!(w.stats.messages > 0);
        // Money is conserved across all transfers.
        assert!(w.stats.paid_total > Money::ZERO);
    }

    #[test]
    fn bidding_grid_is_deterministic() {
        let run = || {
            let mut sim = small_sim(MarketMode::Bidding(SelectionPolicy::LeastCost));
            sim.run();
            let w = sim.into_world();
            (
                w.stats.submitted,
                w.stats.completed,
                w.stats.rejected,
                w.stats.paid_total,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn restricted_mode_routes_only_to_account_clusters() {
        let mut sim = small_sim(MarketMode::Restricted);
        sim.run();
        let w = sim.world();
        assert!(w.stats.completed > 0);
        // Restricted mode pays list price zero (no market) — no dollars move.
        assert_eq!(w.stats.paid_total, Money::ZERO);
    }

    #[test]
    fn daemon_crash_with_recovery_resumes_contracts() {
        let build = |recovery: bool| {
            ScenarioBuilder::new(7)
                .cluster(128, "equipartition", "util-interp")
                .cluster(256, "equipartition", "baseline")
                .users(4)
                .mode(MarketMode::Bidding(SelectionPolicy::LeastCost))
                .arrivals(ArrivalProcess::Poisson {
                    mean_interarrival: SimDuration::from_secs(300),
                })
                .mix(JobMix {
                    log2_min_pes: (0, 4),
                    ..JobMix::default()
                })
                .horizon(SimDuration::from_hours(6))
                .daemon_outage(0, SimTime::from_hours(1), SimDuration::from_secs(1800))
                .daemon_outage(1, SimTime::from_hours(3), SimDuration::from_secs(1800))
                .daemon_recovery(recovery)
                .build()
        };

        let mut with = build(true);
        with.run();
        let w = with.world();
        assert_eq!(w.stats.daemon_failures, 2);
        assert_eq!(w.stats.daemon_recoveries, 2);
        assert_eq!(w.stats.jobs_lost, 0);
        // Recovery preserves the completes-or-rejected invariant.
        assert_eq!(w.stats.completed + w.stats.rejected, w.stats.submitted);
        assert!(w.stats.completed > 0);

        let mut without = build(false);
        without.run();
        let wo = without.world();
        assert_eq!(wo.stats.daemon_failures, 2);
        // Jobs caught on a crashed daemon are gone for good.
        assert_eq!(
            wo.stats.completed + wo.stats.rejected + wo.stats.jobs_lost,
            wo.stats.submitted
        );
        assert!(
            wo.stats.completed <= w.stats.completed,
            "losing contracts cannot beat recovering them \
             (without {}, with {})",
            wo.stats.completed,
            w.stats.completed
        );
    }

    #[test]
    fn sim_instruments_count_events_in_sim_time() {
        let before = faucets_telemetry::global()
            .snapshot()
            .counter_sum("sim_events_total", &[("kind", "NextArrival")]);
        let mut sim = small_sim(MarketMode::Bidding(SelectionPolicy::LeastCost));
        sim.run();
        let w = sim.world();
        let snap = faucets_telemetry::global().snapshot();
        // Every submission came through a NextArrival dispatch (global
        // counters are monotone, so compare against the pre-run reading —
        // other tests in this process share the registry).
        let arrivals = snap.counter_sum("sim_events_total", &[("kind", "NextArrival")]) - before;
        assert!(
            arrivals >= w.stats.submitted,
            "arrivals {arrivals} < submitted {}",
            w.stats.submitted
        );
        // Latencies were mirrored into the sim-second histograms.
        let resp = snap.histogram_sum("sim_response_seconds", &[]);
        assert!(resp.count >= w.stats.completed);
        // The sim clock ends at the last dispatched event, far beyond any
        // plausible wall-clock runtime for this test — proof the histogram
        // timeline is simulated, not wall.
        assert!(
            w.instruments.clock.now_secs() > 3600.0,
            "sim clock at {}",
            w.instruments.clock.now_secs()
        );
    }

    #[test]
    fn contracts_all_reach_terminal_states() {
        let mut sim = small_sim(MarketMode::Bidding(SelectionPolicy::EarliestCompletion));
        sim.run();
        let w = sim.world();
        use faucets_core::market::ContractState;
        let completed = w.book.in_state(ContractState::Completed).count() as u64;
        assert_eq!(completed, w.stats.completed);
        // Nothing left dangling in Awarded (two-phase always resolves).
        assert_eq!(w.book.in_state(ContractState::Awarded).count(), 0);
    }
}
