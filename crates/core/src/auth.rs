//! Authentication (§2.2).
//!
//! *"The client authenticates itself to the Faucets Server through a
//! userid, password pair. So every user should obtain an account from the
//! Faucets system. … since the FD does not have any accounting information,
//! it contacts the Faucets Central Server again to verify the user's
//! authenticity."*
//!
//! Passwords are stored salted-and-hashed with a from-scratch SHA-256 (the
//! substitution for GSI noted in DESIGN.md — no crypto crates in the
//! dependency budget). Successful authentication mints a session token the
//! daemons verify back against the central server, reproducing the paper's
//! double-verification flow.

use crate::error::{FaucetsError, Result};
use crate::ids::UserId;
use faucets_sim::time::{SimDuration, SimTime};
use rand::Rng;
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// SHA-256 (FIPS 180-4), implemented from the specification.
// ---------------------------------------------------------------------------

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Compute the SHA-256 digest of `data`.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];

    // Padding: message, 0x80, zeros, 64-bit big-endian bit length.
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut msg = data.to_vec();
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());

    let mut w = [0u32; 64];
    for chunk in msg.chunks_exact(64) {
        for (i, word) in chunk.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (i, v) in [a, b, c, d, e, f, g, hh].into_iter().enumerate() {
            h[i] = h[i].wrapping_add(v);
        }
    }

    let mut out = [0u8; 32];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// Hex-encode a digest.
pub fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

// ---------------------------------------------------------------------------
// User database and session tokens.
// ---------------------------------------------------------------------------

/// An opaque session token handed to authenticated clients.
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct SessionToken(pub String);

struct UserRecord {
    id: UserId,
    salt: [u8; 16],
    password_hash: [u8; 32],
}

struct SessionRecord {
    user: UserId,
    expires: SimTime,
}

/// The Faucets Server's user database with salted password storage and
/// expiring session tokens.
pub struct UserDb {
    by_name: HashMap<String, UserRecord>,
    sessions: HashMap<SessionToken, SessionRecord>,
    next_user: u64,
    token_ttl: SimDuration,
}

impl UserDb {
    /// A database issuing tokens valid for `token_ttl`.
    pub fn new(token_ttl: SimDuration) -> Self {
        UserDb {
            by_name: HashMap::new(),
            sessions: HashMap::new(),
            next_user: 0,
            token_ttl,
        }
    }

    fn hash_password(salt: &[u8; 16], password: &str) -> [u8; 32] {
        let mut buf = Vec::with_capacity(16 + password.len());
        buf.extend_from_slice(salt);
        buf.extend_from_slice(password.as_bytes());
        sha256(&buf)
    }

    /// Create a user account. Fails if the name is taken.
    pub fn add_user<R: Rng + ?Sized>(
        &mut self,
        name: &str,
        password: &str,
        rng: &mut R,
    ) -> Result<UserId> {
        if self.by_name.contains_key(name) {
            return Err(FaucetsError::AlreadyExists(format!("user '{name}'")));
        }
        let id = UserId(self.next_user);
        self.next_user += 1;
        let mut salt = [0u8; 16];
        rng.fill(&mut salt);
        let password_hash = Self::hash_password(&salt, password);
        self.by_name.insert(
            name.to_string(),
            UserRecord {
                id,
                salt,
                password_hash,
            },
        );
        Ok(id)
    }

    /// Authenticate with userid/password; mints a session token on success.
    pub fn authenticate<R: Rng + ?Sized>(
        &mut self,
        name: &str,
        password: &str,
        now: SimTime,
        rng: &mut R,
    ) -> Result<(UserId, SessionToken)> {
        let rec = self
            .by_name
            .get(name)
            .ok_or_else(|| FaucetsError::AuthFailed(name.to_string()))?;
        if Self::hash_password(&rec.salt, password) != rec.password_hash {
            return Err(FaucetsError::AuthFailed(name.to_string()));
        }
        let mut raw = [0u8; 24];
        rng.fill(&mut raw);
        let token = SessionToken(hex(&sha256(&raw)));
        self.sessions.insert(
            token.clone(),
            SessionRecord {
                user: rec.id,
                expires: now.saturating_add(self.token_ttl),
            },
        );
        Ok((rec.id, token))
    }

    /// Verify a token (the FD→FS re-verification step of §2.2). Returns the
    /// user it belongs to if it is live at `now`.
    pub fn verify(&self, token: &SessionToken, now: SimTime) -> Result<UserId> {
        match self.sessions.get(token) {
            Some(s) if s.expires >= now => Ok(s.user),
            _ => Err(FaucetsError::InvalidToken),
        }
    }

    /// Drop expired sessions.
    pub fn sweep(&mut self, now: SimTime) {
        self.sessions.retain(|_, s| s.expires >= now);
    }

    /// Number of registered users.
    pub fn user_count(&self) -> usize {
        self.by_name.len()
    }

    /// Number of live sessions (including not-yet-swept expired ones).
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sha256_known_vectors() {
        // FIPS 180-4 / NIST test vectors.
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // A long input crossing several blocks.
        let million_a = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&million_a)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn password_round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut db = UserDb::new(SimDuration::from_hours(1));
        let uid = db.add_user("alice", "hunter2", &mut rng).unwrap();
        let (got, token) = db
            .authenticate("alice", "hunter2", SimTime::ZERO, &mut rng)
            .unwrap();
        assert_eq!(got, uid);
        assert_eq!(db.verify(&token, SimTime::from_secs(10)).unwrap(), uid);
    }

    #[test]
    fn wrong_password_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut db = UserDb::new(SimDuration::from_hours(1));
        db.add_user("alice", "hunter2", &mut rng).unwrap();
        assert!(matches!(
            db.authenticate("alice", "hunter3", SimTime::ZERO, &mut rng),
            Err(FaucetsError::AuthFailed(_))
        ));
        assert!(db
            .authenticate("bob", "x", SimTime::ZERO, &mut rng)
            .is_err());
    }

    #[test]
    fn duplicate_usernames_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut db = UserDb::new(SimDuration::from_hours(1));
        db.add_user("alice", "a", &mut rng).unwrap();
        assert!(db.add_user("alice", "b", &mut rng).is_err());
        assert_eq!(db.user_count(), 1);
    }

    #[test]
    fn tokens_expire() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut db = UserDb::new(SimDuration::from_secs(100));
        db.add_user("alice", "pw", &mut rng).unwrap();
        let (_, token) = db
            .authenticate("alice", "pw", SimTime::ZERO, &mut rng)
            .unwrap();
        assert!(db.verify(&token, SimTime::from_secs(100)).is_ok());
        assert!(matches!(
            db.verify(&token, SimTime::from_secs(101)),
            Err(FaucetsError::InvalidToken)
        ));
        db.sweep(SimTime::from_secs(101));
        assert_eq!(db.session_count(), 0);
    }

    #[test]
    fn forged_tokens_rejected() {
        let db = UserDb::new(SimDuration::from_secs(100));
        assert!(db
            .verify(&SessionToken("deadbeef".into()), SimTime::ZERO)
            .is_err());
    }

    #[test]
    fn same_password_different_users_different_hashes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut db = UserDb::new(SimDuration::from_hours(1));
        db.add_user("alice", "samepw", &mut rng).unwrap();
        db.add_user("bob", "samepw", &mut rng).unwrap();
        let a = db.by_name["alice"].password_hash;
        let b = db.by_name["bob"].password_hash;
        assert_ne!(a, b, "salting must differentiate identical passwords");
    }
}
