//! Fixed-point money and service units.
//!
//! The paper's market runs in two currencies: Dollar amounts for the
//! pay-for-use context (§5.5.1) and Service Units for the academic context
//! (§5.5.2) and bartering (§5.5.3). Both are represented as `i64` counts of
//! micro-units so that accounting identities (conservation under transfer)
//! hold exactly — floating point would violate them after millions of
//! simulated transactions.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Neg, Sub, SubAssign};

/// Micro-units per whole unit (dollar or SU).
pub const MICROS_PER_UNIT: i64 = 1_000_000;

macro_rules! currency {
    ($(#[$doc:meta])* $name:ident, $sym:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub i64);

        impl $name {
            /// Zero.
            pub const ZERO: $name = $name(0);

            /// From whole units.
            pub fn from_units(u: i64) -> Self {
                $name(u * MICROS_PER_UNIT)
            }

            /// From fractional units, rounded to the nearest micro-unit.
            pub fn from_units_f64(u: f64) -> Self {
                $name((u * MICROS_PER_UNIT as f64).round() as i64)
            }

            /// As fractional units.
            pub fn as_units_f64(self) -> f64 {
                self.0 as f64 / MICROS_PER_UNIT as f64
            }

            /// Raw micro-units.
            pub fn micros(self) -> i64 {
                self.0
            }

            /// Scale by `f`, rounding to the nearest micro-unit.
            pub fn mul_f64(self, f: f64) -> Self {
                $name((self.0 as f64 * f).round() as i64)
            }

            /// Checked [`Self::from_units_f64`]: `None` when `u` is NaN,
            /// infinite, or would overflow the `i64` micro-unit range —
            /// the cases where the unchecked version silently produces 0
            /// or a saturated extreme and drifts accounting identities.
            pub fn try_from_units_f64(u: f64) -> Option<Self> {
                let micros = u * MICROS_PER_UNIT as f64;
                if !micros.is_finite() {
                    return None;
                }
                let rounded = micros.round();
                if rounded < i64::MIN as f64 || rounded >= i64::MAX as f64 {
                    return None;
                }
                Some($name(rounded as i64))
            }

            /// Checked [`Self::mul_f64`]: `None` when the scale factor is
            /// NaN/infinite or the product leaves the `i64` micro-unit
            /// range. Accounting paths use this so a bad multiplier
            /// surfaces as a rejected transaction instead of a silent
            /// zero-or-saturated amount that breaks conservation across a
            /// charge/refund round-trip.
            pub fn try_mul_f64(self, f: f64) -> Option<Self> {
                let product = self.0 as f64 * f;
                if !product.is_finite() {
                    return None;
                }
                let rounded = product.round();
                if rounded < i64::MIN as f64 || rounded >= i64::MAX as f64 {
                    return None;
                }
                Some($name(rounded as i64))
            }

            /// True if strictly negative.
            pub fn is_negative(self) -> bool {
                self.0 < 0
            }

            /// The smaller amount.
            pub fn min(self, o: Self) -> Self {
                $name(self.0.min(o.0))
            }

            /// The larger amount.
            pub fn max(self, o: Self) -> Self {
                $name(self.0.max(o.0))
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, o: Self) -> Self {
                $name(self.0 + o.0)
            }
        }
        impl AddAssign for $name {
            fn add_assign(&mut self, o: Self) {
                self.0 += o.0;
            }
        }
        impl Sub for $name {
            type Output = $name;
            fn sub(self, o: Self) -> Self {
                $name(self.0 - o.0)
            }
        }
        impl SubAssign for $name {
            fn sub_assign(&mut self, o: Self) {
                self.0 -= o.0;
            }
        }
        impl Neg for $name {
            type Output = $name;
            fn neg(self) -> Self {
                $name(-self.0)
            }
        }
        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> Self {
                $name(iter.map(|m| m.0).sum())
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{:.2}", $sym, self.as_units_f64())
            }
        }
        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{:.2}", $sym, self.as_units_f64())
            }
        }
    };
}

currency!(
    /// A Dollar amount in micro-dollars (pay-for-use market, §5.5.1).
    Money,
    "$"
);
currency!(
    /// Service Units in micro-SUs (academic allocations, §5.5.2; bartering
    /// credits, §5.5.3).
    ServiceUnits,
    "SU "
);

impl Money {
    /// Price for `cpu_seconds` of compute at `rate` dollars per CPU-second
    /// scaled by a bid `multiplier` — the paper's bid-to-dollar conversion:
    /// *"the bid is converted to Dollar amount by multiplying the
    /// CPU-seconds needed for the job with a normalized cost and the
    /// multiplier returned by the bidding algorithm."*
    pub fn for_cpu_seconds(cpu_seconds: f64, rate: Money, multiplier: f64) -> Money {
        rate.mul_f64(cpu_seconds * multiplier)
    }

    /// Checked [`Money::for_cpu_seconds`]: `None` when the conversion
    /// would go through a NaN/infinite factor or overflow — the billing
    /// path rejects the bid instead of pricing it at $0.00.
    pub fn try_for_cpu_seconds(cpu_seconds: f64, rate: Money, multiplier: f64) -> Option<Money> {
        rate.try_mul_f64(cpu_seconds * multiplier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(Money::from_units(3).micros(), 3_000_000);
        assert_eq!(Money::from_units_f64(1.5), Money(1_500_000));
        assert!((ServiceUnits::from_units(2).as_units_f64() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_and_conservation() {
        let a = Money::from_units(10);
        let b = Money::from_units_f64(0.25);
        assert_eq!(a + b - b, a);
        assert_eq!(-(a - a), Money::ZERO);
        let total: Money = [a, b, -b].into_iter().sum();
        assert_eq!(total, a);
    }

    #[test]
    fn mul_f64_rounds_to_micro() {
        let m = Money(10);
        assert_eq!(m.mul_f64(0.26), Money(3));
    }

    #[test]
    fn bid_to_dollar_conversion() {
        // 3600 CPU-seconds at $0.01/cpu-s with multiplier 1.4 = $50.40.
        let price = Money::for_cpu_seconds(3600.0, Money::from_units_f64(0.01), 1.4);
        assert_eq!(price, Money::from_units_f64(50.40));
    }

    #[test]
    fn display() {
        assert_eq!(Money::from_units_f64(12.5).to_string(), "$12.50");
        assert_eq!(ServiceUnits::from_units(3).to_string(), "SU 3.00");
        assert_eq!(Money::from_units(-2).to_string(), "$-2.00");
    }

    #[test]
    fn try_mul_rejects_non_finite_and_overflow() {
        let m = Money::from_units(10);
        assert_eq!(m.try_mul_f64(2.5), Some(Money::from_units(25)));
        assert_eq!(m.try_mul_f64(f64::NAN), None);
        assert_eq!(m.try_mul_f64(f64::INFINITY), None);
        assert_eq!(m.try_mul_f64(f64::NEG_INFINITY), None);
        assert_eq!(m.try_mul_f64(1e18), None, "overflows i64 micro-units");
        // The unchecked version silently turns NaN into $0.00 — the drift
        // this satellite closes off in accounting paths.
        assert_eq!(m.mul_f64(f64::NAN), Money::ZERO);
    }

    #[test]
    fn try_from_units_rejects_non_finite_and_overflow() {
        assert_eq!(
            ServiceUnits::try_from_units_f64(1.5),
            Some(ServiceUnits(1_500_000))
        );
        assert_eq!(ServiceUnits::try_from_units_f64(f64::NAN), None);
        assert_eq!(ServiceUnits::try_from_units_f64(f64::INFINITY), None);
        assert_eq!(ServiceUnits::try_from_units_f64(1e15), None);
        // Boundary: the largest whole-unit value that still fits.
        assert!(ServiceUnits::try_from_units_f64(9.2e12).is_some());
    }

    #[test]
    fn charge_refund_round_trip_conserves() {
        // A charge computed with a checked conversion refunds to exactly
        // zero drift; the regression this guards is a NaN multiplier
        // minting a $0.00 charge whose "refund" then moves real money.
        let rate = Money::from_units_f64(0.01);
        let charge = Money::try_for_cpu_seconds(3600.0, rate, 1.4).unwrap();
        let mut balance = Money::from_units(100);
        balance -= charge;
        balance += charge; // refund the identical amount
        assert_eq!(balance, Money::from_units(100));
        assert_eq!(Money::try_for_cpu_seconds(3600.0, rate, f64::NAN), None);
    }

    #[test]
    fn negativity_and_minmax() {
        assert!(Money(-1).is_negative());
        assert!(!Money::ZERO.is_negative());
        assert_eq!(Money(3).min(Money(5)), Money(3));
        assert_eq!(Money(3).max(Money(5)), Money(5));
    }
}
