//! Strongly-typed identifiers for the entities of the Faucets system.
//!
//! Each identifier is a `u64` newtype so mixing up a job id and a cluster id
//! is a type error, not a runtime mystery. All ids are `Copy`, hashable, and
//! serializable for the wire protocol.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u64);

        impl $name {
            /// The raw numeric value.
            pub fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// A parallel job submitted to the grid.
    JobId,
    "job-"
);
id_type!(
    /// A Compute Server (cluster) participating in the grid.
    ClusterId,
    "cs-"
);
id_type!(
    /// A registered Faucets user.
    UserId,
    "user-"
);
id_type!(
    /// A QoS contract between a client and a Compute Server.
    ContractId,
    "contract-"
);
id_type!(
    /// A bid submitted by a Compute Server for a job.
    BidId,
    "bid-"
);
id_type!(
    /// An organization participating in the bartering economy (§5.5.3).
    OrgId,
    "org-"
);

/// A monotonically increasing id allocator, one per id space.
#[derive(Debug, Clone, Default)]
pub struct IdGen {
    next: u64,
}

impl IdGen {
    /// An allocator starting at 0.
    pub fn new() -> Self {
        IdGen::default()
    }

    /// Allocate the next raw id.
    pub fn next_raw(&mut self) -> u64 {
        let v = self.next;
        self.next += 1;
        v
    }

    /// Allocate the next id of type `T`.
    #[allow(clippy::should_implement_trait)]
    pub fn next<T: From<u64>>(&mut self) -> T {
        T::from(self.next_raw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(JobId(7).to_string(), "job-7");
        assert_eq!(ClusterId(0).to_string(), "cs-0");
        assert_eq!(format!("{:?}", UserId(3)), "user-3");
        assert_eq!(ContractId(9).to_string(), "contract-9");
        assert_eq!(BidId(1).to_string(), "bid-1");
        assert_eq!(OrgId(2).to_string(), "org-2");
    }

    #[test]
    fn idgen_is_monotone_and_unique() {
        let mut g = IdGen::new();
        let ids: HashSet<u64> = (0..1000).map(|_| g.next_raw()).collect();
        assert_eq!(ids.len(), 1000);
        let j: JobId = g.next();
        assert_eq!(j, JobId(1000));
    }

    #[test]
    fn ids_are_distinct_types() {
        // This is a compile-time property; here we just check raw accessors.
        assert_eq!(JobId(5).raw(), 5);
        assert_eq!(ClusterId::from(6).raw(), 6);
    }
}
