//! # faucets-core — market-based resource allocation for the computational grid
//!
//! A from-scratch reproduction of the core contribution of *Faucets:
//! Efficient Resource Allocation on the Computational Grid* (Kalé, Kumar,
//! Potnuru, DeSouza, Bandhakavi — ICPP 2004): treating compute power as a
//! utility by making Compute Servers *compete* for every parallel job.
//!
//! The crate contains every transport-independent component of the paper's
//! architecture (Figure 1):
//!
//! * [`qos`] — quality-of-service contracts: processor ranges, memory, work,
//!   the completion-time model, and payoff functions with soft/hard
//!   deadlines (§2.1);
//! * [`job`] — job specs and the submission → bidding → contract →
//!   staging → running → completion lifecycle (§2);
//! * [`bid`] and [`market`] — request-for-bids, the published bid-strategy
//!   interface with the paper's baseline and utilization-interpolated
//!   strategies (§5.2), client-side bid evaluation (§5.3), the two-phase
//!   award protocol, contract history / grid weather (§5.2.1), and auction
//!   baselines (§6);
//! * [`directory`] and [`server`] — the Faucets Central Server: Compute
//!   Server directory with static+dynamic filtering (§5.1), user
//!   authentication, known-applications registry;
//! * [`daemon`] — the Faucets Daemon mediation logic and the
//!   [`daemon::ClusterManager`] interface implemented by the schedulers in
//!   `faucets-sched`;
//! * [`appspector`] — job monitoring with buffered display data (§2);
//! * [`accounting`] and [`barter`] — billing, Service-Unit quotas, and the
//!   bartering credit economy with Home Clusters (§5.5);
//! * [`auth`] — userid/password authentication with salted SHA-256 and
//!   expiring session tokens (§2.2).
//!
//! The discrete-event substrate lives in `faucets-sim`, the adaptive-job
//! schedulers in `faucets-sched`, the whole-grid simulation in
//! `faucets-grid`, and the deployable TCP services in `faucets-net`.
//!
//! # Example: one round of the market
//!
//! ```
//! use faucets_core::prelude::*;
//! use faucets_sim::time::SimTime;
//!
//! // A client's QoS contract (§2.1).
//! let qos = QosBuilder::new("namd", 8, 32, 3_600.0)
//!     .efficiency(0.95, 0.8)
//!     .adaptive()
//!     .payoff(PayoffFn::hard_only(
//!         SimTime::from_hours(2),
//!         Money::from_units(100),
//!         Money::from_units(20),
//!     ))
//!     .build()?;
//!
//! // Two Compute Servers answer the request-for-bids (§5.2): here we form
//! // the bids directly from their strategies' multipliers.
//! let req = BidRequest { job: JobId(1), user: UserId(1), qos: qos.clone(), issued_at: SimTime::ZERO };
//! let view = ClusterView {
//!     total_pes: 256, free_pes: 256,
//!     normalized_cost: Money::from_units_f64(0.01),
//!     flops_per_pe_sec: 1.0, predicted_utilization: 0.0, now: SimTime::ZERO,
//! };
//! let market = MarketInfo::default();
//! let bids: Vec<Bid> = [
//!     (ClusterId(1), Baseline.multiplier(&req, &view, &market).unwrap()),
//!     (ClusterId(2), UtilizationInterpolated::default().multiplier(&req, &view, &market).unwrap()),
//! ]
//! .into_iter()
//! .enumerate()
//! .map(|(i, (cluster, m))| Bid::from_multiplier(
//!     BidId(i as u64), cluster, req.job, m, 3_600.0,
//!     Money::from_units_f64(0.01), SimTime::from_secs(450), 32,
//! ))
//! .collect();
//!
//! // The client evaluates (§5.3): the idle interpolated server bids
//! // k(1-α) = 0.5 and wins on least cost.
//! let winner = SelectionPolicy::LeastCost.select(&bids, &qos.payoff).unwrap();
//! assert_eq!(winner.cluster, ClusterId(2));
//! assert_eq!(winner.price, Money::from_units(18)); // 3600 × $0.01 × 0.5
//!
//! // Two-phase award (§5.3).
//! let mut book = ContractBook::new();
//! let contract = book.award(*winner, SimTime::ZERO)?;
//! book.confirm(contract)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod accounting;
pub mod appspector;
pub mod auth;
pub mod barter;
pub mod bid;
pub mod daemon;
pub mod directory;
pub mod error;
pub mod ids;
pub mod job;
pub mod market;
pub mod money;
pub mod qos;
pub mod quota;
pub mod server;

/// Convenient glob import for Faucets users.
pub mod prelude {
    pub use crate::accounting::{AccountId, Amount, Ledger};
    pub use crate::appspector::{AppSpector, MonitorSnapshot, OutputFile, TelemetrySample};
    pub use crate::auth::{SessionToken, UserDb};
    pub use crate::barter::{BarterRoute, CreditBank};
    pub use crate::bid::{Bid, BidRequest, BidResponse, DeclineReason};
    pub use crate::daemon::{AwardOutcome, ClusterManager, FaucetsDaemon, SchedulerQuote};
    pub use crate::directory::{Directory, FilterLevel, ServerInfo, ServerStatus};
    pub use crate::error::{FaucetsError, Result};
    pub use crate::ids::{BidId, ClusterId, ContractId, IdGen, JobId, OrgId, UserId};
    pub use crate::job::{JobOutcome, JobSpec, JobState};
    pub use crate::market::{
        run_reverse_auction, Baseline, BidStrategy, ClusterView, Contract, ContractBook,
        ContractHistory, ContractRecord, ContractState, DeadlineAware, Fixed, MarketInfo,
        Mechanism, SelectionPolicy, UtilizationInterpolated, WeatherAware,
    };
    pub use crate::money::{Money, ServiceUnits};
    pub use crate::qos::{
        Environment, PayoffFn, Phase, PhaseStructure, QosBuilder, QosContract, SpeedupModel,
        WorkSpec,
    };
    pub use crate::quota::SuQuota;
    pub use crate::server::FaucetsServer;
}
