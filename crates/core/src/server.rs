//! The Faucets Central Server (FS) logic (§2).
//!
//! *"The Faucets Central Server is at the heart of the system. It maintains
//! the list of available Compute Servers and refreshes the list by
//! periodically polling the corresponding FDs. The FS also maintains the
//! list of applications clients can run. In addition the FS is also
//! responsible for authenticating the users of the system."*
//!
//! This module is transport-independent; `faucets-net` wraps it in TCP and
//! `faucets-grid` drives it from the discrete-event simulation.

use crate::auth::{SessionToken, UserDb};
use crate::directory::{Directory, FilterLevel, ServerInfo, ServerStatus};
use crate::error::Result;
use crate::ids::{ClusterId, UserId};
use crate::market::history::{ContractHistory, ContractRecord};
use crate::market::strategy::MarketInfo;
use crate::qos::QosContract;
use faucets_sim::time::{SimDuration, SimTime};
use rand::Rng;
use std::collections::BTreeSet;

/// Message-traffic counters for the E9 scalability accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Authentications performed.
    pub logins: u64,
    /// Token verifications on behalf of FDs (§2.2 double check).
    pub verifications: u64,
    /// Candidate-list queries served.
    pub matches: u64,
    /// Total request-for-bid messages implied by the served candidate lists.
    pub rfb_messages: u64,
    /// Heartbeats processed.
    pub heartbeats: u64,
    /// Daemons evicted from the directory as dead.
    pub evictions: u64,
}

/// The central server: directory + users + known applications + history.
pub struct FaucetsServer {
    /// The Compute Server directory (§5.1 filtering lives here).
    pub directory: Directory,
    /// User accounts and sessions.
    pub users: UserDb,
    /// Grid-wide contract history / price index (§5.2.1).
    pub history: ContractHistory,
    /// Filter level applied when matching servers to jobs.
    pub filter_level: FilterLevel,
    /// Traffic counters.
    pub stats: ServerStats,
}

impl FaucetsServer {
    /// A server with the given directory liveness timeout, session TTL, and
    /// history window.
    pub fn new(
        liveness_timeout: SimDuration,
        session_ttl: SimDuration,
        history_window: SimDuration,
    ) -> Self {
        FaucetsServer {
            directory: Directory::new(liveness_timeout),
            users: UserDb::new(session_ttl),
            history: ContractHistory::new(history_window),
            filter_level: FilterLevel::Static,
            stats: ServerStats::default(),
        }
    }

    /// A server with defaults suitable for most experiments: 90 s liveness,
    /// 8 h sessions, 24 h history window, static filtering.
    pub fn with_defaults() -> Self {
        FaucetsServer::new(
            SimDuration::from_secs(90),
            SimDuration::from_hours(8),
            SimDuration::from_hours(24),
        )
    }

    // -- user management ----------------------------------------------------

    /// Create a user account.
    pub fn create_user<R: Rng + ?Sized>(
        &mut self,
        name: &str,
        password: &str,
        rng: &mut R,
    ) -> Result<UserId> {
        self.users.add_user(name, password, rng)
    }

    /// Authenticate a user; mints a session token.
    pub fn login<R: Rng + ?Sized>(
        &mut self,
        name: &str,
        password: &str,
        now: SimTime,
        rng: &mut R,
    ) -> Result<(UserId, SessionToken)> {
        self.stats.logins += 1;
        self.users.authenticate(name, password, now, rng)
    }

    /// Verify a session token (used both by clients and by FDs re-checking
    /// a client's identity, §2.2).
    pub fn verify_token(&mut self, token: &SessionToken, now: SimTime) -> Result<UserId> {
        self.stats.verifications += 1;
        self.users.verify(token, now)
    }

    // -- directory ----------------------------------------------------------

    /// An FD registers itself at startup (§2: "At startup each FD registers
    /// itself with the Faucets Central Server").
    pub fn register_cluster(
        &mut self,
        info: ServerInfo,
        exported_apps: impl IntoIterator<Item = String>,
        now: SimTime,
    ) {
        self.directory.register(info, exported_apps, now);
    }

    /// Process a poll/heartbeat from an FD. Returns `false` when the
    /// cluster is unknown (never registered, or evicted as dead) — the
    /// daemon should re-register on seeing that.
    pub fn heartbeat(&mut self, cluster: ClusterId, status: ServerStatus, now: SimTime) -> bool {
        self.stats.heartbeats += 1;
        self.sweep_dead(now);
        self.directory.heartbeat(cluster, status, now)
    }

    /// Evict daemons that have been silent past the dead timeout; runs on
    /// every heartbeat and match so the directory never accumulates
    /// corpses. Returns the evicted ids.
    pub fn sweep_dead(&mut self, now: SimTime) -> Vec<ClusterId> {
        let evicted = self.directory.evict_dead(now);
        self.stats.evictions += evicted.len() as u64;
        evicted
    }

    /// The union of applications exported anywhere on the grid — "the list
    /// of applications clients can run".
    pub fn known_applications(&self) -> BTreeSet<String> {
        self.directory
            .all()
            .flat_map(|e| e.exported_apps.iter().cloned())
            .collect()
    }

    /// Serve a client's request for matching Compute Servers. The token is
    /// authenticated first; the candidate list is filtered per
    /// [`FaucetsServer::filter_level`]. Each returned cluster will receive
    /// one request-for-bids message, which is what [`ServerStats::rfb_messages`]
    /// accounts.
    pub fn match_servers(
        &mut self,
        token: &SessionToken,
        qos: &QosContract,
        now: SimTime,
    ) -> Result<Vec<ClusterId>> {
        self.verify_token(token, now)?;
        self.stats.matches += 1;
        self.sweep_dead(now);
        let candidates = self.directory.candidates(qos, self.filter_level, now);
        self.stats.rfb_messages += candidates.len() as u64;
        Ok(candidates)
    }

    // -- market support (§5.2.1) ---------------------------------------------

    /// Record a settled contract into the grid-wide history.
    pub fn record_settlement(&mut self, rec: ContractRecord) {
        self.history.record(rec);
    }

    /// Current grid-wide utilization estimate: mean fraction of busy
    /// processors over live servers.
    pub fn grid_utilization(&self, now: SimTime) -> Option<f64> {
        let mut busy = 0u64;
        let mut total = 0u64;
        for e in self.directory.all() {
            if self.directory.is_live(e.info.cluster, now) {
                total += e.info.total_pes as u64;
                busy += (e.info.total_pes - e.status.free_pes.min(e.info.total_pes)) as u64;
            }
        }
        (total > 0).then(|| busy as f64 / total as f64)
    }

    /// The market snapshot handed to bidding algorithms.
    pub fn market_info(&self, now: SimTime) -> MarketInfo {
        self.history.market_info(self.grid_utilization(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qos::QosBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn info(id: u64, pes: u32) -> ServerInfo {
        ServerInfo {
            cluster: ClusterId(id),
            name: format!("cs{id}"),
            total_pes: pes,
            mem_per_pe_mb: 1024,
            cpu_type: "x86-64".into(),
            flops_per_pe_sec: 1e9,
            fd_addr: "127.0.0.1".into(),
            fd_port: 9000,
            replicas: vec![],
        }
    }

    fn server() -> (FaucetsServer, SessionToken) {
        let mut s = FaucetsServer::with_defaults();
        let mut rng = StdRng::seed_from_u64(7);
        s.create_user("alice", "pw", &mut rng).unwrap();
        let (_, token) = s.login("alice", "pw", SimTime::ZERO, &mut rng).unwrap();
        s.register_cluster(info(1, 64), ["namd".to_string()], SimTime::ZERO);
        s.register_cluster(
            info(2, 1024),
            ["namd".to_string(), "cfd".to_string()],
            SimTime::ZERO,
        );
        (s, token)
    }

    #[test]
    fn match_requires_valid_token() {
        let (mut s, token) = server();
        let qos = QosBuilder::new("namd", 8, 32, 100.0).build().unwrap();
        assert!(s.match_servers(&token, &qos, SimTime::from_secs(1)).is_ok());
        let bad = SessionToken("bogus".into());
        assert!(s.match_servers(&bad, &qos, SimTime::from_secs(1)).is_err());
    }

    #[test]
    fn matching_respects_filter_level() {
        let (mut s, token) = server();
        let qos = QosBuilder::new("cfd", 8, 32, 100.0).build().unwrap();
        // Static filtering: only cs2 exports cfd.
        let c = s
            .match_servers(&token, &qos, SimTime::from_secs(1))
            .unwrap();
        assert_eq!(c, vec![ClusterId(2)]);
        // Broadcast mode returns both.
        s.filter_level = FilterLevel::None;
        let c = s
            .match_servers(&token, &qos, SimTime::from_secs(1))
            .unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn rfb_message_accounting() {
        let (mut s, token) = server();
        let qos = QosBuilder::new("namd", 8, 32, 100.0).build().unwrap();
        s.match_servers(&token, &qos, SimTime::from_secs(1))
            .unwrap();
        assert_eq!(s.stats.matches, 1);
        assert_eq!(s.stats.rfb_messages, 2);
        // Token verification happened for login + match.
        assert_eq!(s.stats.verifications, 1);
    }

    #[test]
    fn known_applications_union() {
        let (s, _) = server();
        let apps = s.known_applications();
        assert!(apps.contains("namd") && apps.contains("cfd"));
        assert_eq!(apps.len(), 2);
    }

    #[test]
    fn grid_utilization_from_heartbeats() {
        let (mut s, _) = server();
        // cs1: 32/64 busy; cs2: 512/1024 busy → 50% overall.
        s.heartbeat(
            ClusterId(1),
            ServerStatus {
                free_pes: 32,
                queue_len: 0,
                accepting: true,
                ..Default::default()
            },
            SimTime::from_secs(10),
        );
        s.heartbeat(
            ClusterId(2),
            ServerStatus {
                free_pes: 512,
                queue_len: 0,
                accepting: true,
                ..Default::default()
            },
            SimTime::from_secs(10),
        );
        let u = s.grid_utilization(SimTime::from_secs(11)).unwrap();
        assert!((u - 0.5).abs() < 1e-9);
        assert_eq!(s.stats.heartbeats, 2);
    }

    #[test]
    fn dead_servers_drop_out_of_utilization() {
        let (mut s, _) = server();
        s.heartbeat(
            ClusterId(1),
            ServerStatus {
                free_pes: 0,
                queue_len: 0,
                accepting: true,
                ..Default::default()
            },
            SimTime::from_secs(60),
        );
        // cs2 never heartbeats; past its 90 s liveness window only cs1 counts.
        let u = s.grid_utilization(SimTime::from_secs(120)).unwrap();
        assert!((u - 1.0).abs() < 1e-9);
    }

    #[test]
    fn silent_daemons_are_evicted_and_reregister() {
        use crate::directory::Liveness;
        let (mut s, token) = server(); // 90 s liveness → 270 s dead.
                                       // cs1 keeps heartbeating; cs2 goes silent after registration.
        s.heartbeat(
            ClusterId(1),
            ServerStatus {
                free_pes: 64,
                queue_len: 0,
                accepting: true,
                ..Default::default()
            },
            SimTime::from_secs(200),
        );
        assert_eq!(
            s.directory.liveness(ClusterId(2), SimTime::from_secs(200)),
            Some(Liveness::Suspect)
        );
        // Past the dead timeout, any match sweeps cs2 out.
        let qos = QosBuilder::new("namd", 8, 32, 100.0).build().unwrap();
        s.heartbeat(
            ClusterId(1),
            ServerStatus {
                free_pes: 64,
                queue_len: 0,
                accepting: true,
                ..Default::default()
            },
            SimTime::from_secs(280),
        );
        s.match_servers(&token, &qos, SimTime::from_secs(281))
            .unwrap();
        assert_eq!(s.stats.evictions, 1);
        assert!(s.directory.get(ClusterId(2)).is_none());
        // The restarted daemon re-registers and is matchable again.
        s.register_cluster(
            info(2, 1024),
            ["namd".to_string(), "cfd".to_string()],
            SimTime::from_secs(290),
        );
        let c = s
            .match_servers(&token, &qos, SimTime::from_secs(291))
            .unwrap();
        assert!(c.contains(&ClusterId(2)));
    }

    #[test]
    fn market_info_includes_history() {
        use crate::ids::JobId;
        use crate::money::Money;
        let (mut s, _) = server();
        s.record_settlement(ContractRecord {
            job: JobId(1),
            cluster: ClusterId(1),
            multiplier: 1.8,
            price: Money::from_units(10),
            cpu_seconds: 100.0,
            min_pes: 8,
            at: SimTime::from_secs(5),
        });
        let info = s.market_info(SimTime::from_secs(6));
        assert_eq!(info.recent_avg_multiplier, Some(1.8));
    }
}
