//! Bids and bid requests.
//!
//! §5.2: a request-for-bids carries the job's QoS requirements; each Compute
//! Server's bidding algorithm answers with a *multiplier*, which is converted
//! to a Dollar amount by multiplying the CPU-seconds needed for the job by a
//! normalized cost and the multiplier. A daemon may instead decline.

use crate::ids::{BidId, ClusterId, JobId, UserId};
use crate::money::Money;
use crate::qos::QosContract;
use faucets_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// A request for bids broadcast to (filtered) Compute Servers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BidRequest {
    /// The job seeking a home.
    pub job: JobId,
    /// Submitting user (for authentication checks at the daemon).
    pub user: UserId,
    /// The full QoS contract.
    pub qos: QosContract,
    /// When the request was issued.
    pub issued_at: SimTime,
}

/// A bid returned by a Compute Server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bid {
    /// Bid identity.
    pub id: BidId,
    /// The bidding cluster.
    pub cluster: ClusterId,
    /// The job bid on.
    pub job: JobId,
    /// The raw multiplier produced by the bidding algorithm.
    pub multiplier: f64,
    /// The resulting price (multiplier × normalized cost × CPU-seconds).
    pub price: Money,
    /// The completion time the cluster promises.
    pub promised_completion: SimTime,
    /// Processors the cluster plans to devote (within the QoS range).
    pub planned_pes: u32,
}

impl Bid {
    /// Construct a bid from a multiplier, applying the paper's
    /// bid-to-dollar conversion.
    #[allow(clippy::too_many_arguments)]
    pub fn from_multiplier(
        id: BidId,
        cluster: ClusterId,
        job: JobId,
        multiplier: f64,
        cpu_seconds: f64,
        normalized_cost: Money,
        promised_completion: SimTime,
        planned_pes: u32,
    ) -> Self {
        Bid {
            id,
            cluster,
            job,
            multiplier,
            price: Money::for_cpu_seconds(cpu_seconds, normalized_cost, multiplier),
            promised_completion,
            planned_pes,
        }
    }
}

/// Why a Compute Server declined to bid.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeclineReason {
    /// The job cannot be scheduled before its deadline.
    CannotMeetDeadline,
    /// The machine is too small or lacks memory.
    InsufficientResources,
    /// The application is not in the server's exported list (§2.2).
    UnknownApplication,
    /// Accepting would lose money (displaced payoff exceeds gain, §4.1).
    Unprofitable,
    /// Administrative policy (user class, maintenance window, …).
    Policy(String),
}

/// A Compute Server's answer to a bid request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BidResponse {
    /// Here is our bid.
    Offer(Bid),
    /// We decline, and why.
    Decline(DeclineReason),
}

impl BidResponse {
    /// The bid, if this is an offer.
    pub fn offer(&self) -> Option<&Bid> {
        match self {
            BidResponse::Offer(b) => Some(b),
            BidResponse::Decline(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_multiplier_applies_conversion() {
        let b = Bid::from_multiplier(
            BidId(1),
            ClusterId(2),
            JobId(3),
            1.5,
            1000.0,
            Money::from_units_f64(0.02),
            SimTime::from_secs(500),
            32,
        );
        // 1000 cpu-s * $0.02 * 1.5 = $30.
        assert_eq!(b.price, Money::from_units(30));
        assert_eq!(b.planned_pes, 32);
    }

    #[test]
    fn baseline_multiplier_of_one_is_list_price() {
        let b = Bid::from_multiplier(
            BidId(0),
            ClusterId(0),
            JobId(0),
            1.0,
            3600.0,
            Money::from_units_f64(0.01),
            SimTime::ZERO,
            1,
        );
        assert_eq!(b.price, Money::from_units(36));
    }

    #[test]
    fn response_offer_accessor() {
        let b = Bid::from_multiplier(
            BidId(0),
            ClusterId(0),
            JobId(0),
            1.0,
            1.0,
            Money::from_units(1),
            SimTime::ZERO,
            1,
        );
        assert!(BidResponse::Offer(b).offer().is_some());
        assert!(BidResponse::Decline(DeclineReason::Unprofitable)
            .offer()
            .is_none());
    }

    #[test]
    fn serde_round_trip() {
        let r = BidResponse::Decline(DeclineReason::Policy("maintenance".into()));
        let json = serde_json::to_string(&r).unwrap();
        assert_eq!(serde_json::from_str::<BidResponse>(&json).unwrap(), r);
    }
}
