//! QoS contract lifecycle and the two-phase award protocol (§5.3).
//!
//! *"since many bid-requests may be in progress at the same time, a two
//! phase protocol will be needed to get a firm commitment from the selected
//! Compute Server (which may have received a more lucrative job in
//! between)."* A contract therefore moves Awarded → Confirmed (or the
//! server reneges and the client falls back to the next-ranked bid).

use crate::bid::Bid;
use crate::error::{FaucetsError, Result};
use crate::ids::{ClusterId, ContractId, IdGen, JobId};
use crate::money::Money;
use faucets_sim::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The state of one contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContractState {
    /// The client selected this bid and notified the cluster (phase 1).
    Awarded,
    /// The cluster confirmed the commitment (phase 2); job may be staged.
    Confirmed,
    /// The cluster reneged — it took better work in between.
    Reneged,
    /// The job ran and completed; settlement recorded.
    Completed,
    /// The client withdrew before confirmation.
    Cancelled,
}

impl ContractState {
    fn name(self) -> &'static str {
        match self {
            ContractState::Awarded => "awarded",
            ContractState::Confirmed => "confirmed",
            ContractState::Reneged => "reneged",
            ContractState::Completed => "completed",
            ContractState::Cancelled => "cancelled",
        }
    }
}

/// One contract between a client and a Compute Server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Contract {
    /// Contract identity.
    pub id: ContractId,
    /// The job covered.
    pub job: JobId,
    /// The committed cluster.
    pub cluster: ClusterId,
    /// The accepted bid.
    pub bid: Bid,
    /// Current state.
    pub state: ContractState,
    /// When the award was issued.
    pub awarded_at: SimTime,
    /// Settlement: what the client actually paid (completed contracts).
    pub settled_amount: Option<Money>,
    /// When the job completed (completed contracts).
    pub completed_at: Option<SimTime>,
}

/// The book of all contracts, with the two-phase transitions enforced.
#[derive(Debug, Default)]
pub struct ContractBook {
    contracts: HashMap<ContractId, Contract>,
    by_job: HashMap<JobId, ContractId>,
    ids: IdGen,
}

impl ContractBook {
    /// An empty book.
    pub fn new() -> Self {
        ContractBook::default()
    }

    /// Phase 1: the client awards the job to the bid's cluster.
    ///
    /// A job may be re-awarded only if its previous contract is in a dead
    /// state (reneged/cancelled) — the fallback-to-runner-up path.
    pub fn award(&mut self, bid: Bid, now: SimTime) -> Result<ContractId> {
        if let Some(prev_id) = self.by_job.get(&bid.job) {
            let prev = &self.contracts[prev_id];
            if !matches!(
                prev.state,
                ContractState::Reneged | ContractState::Cancelled
            ) {
                return Err(FaucetsError::AlreadyExists(format!(
                    "job {} already has live contract {}",
                    bid.job, prev.id
                )));
            }
        }
        let id: ContractId = self.ids.next();
        self.contracts.insert(
            id,
            Contract {
                id,
                job: bid.job,
                cluster: bid.cluster,
                bid,
                state: ContractState::Awarded,
                awarded_at: now,
                settled_amount: None,
                completed_at: None,
            },
        );
        self.by_job.insert(bid.job, id);
        Ok(id)
    }

    fn transition(
        &mut self,
        id: ContractId,
        from: ContractState,
        to: ContractState,
        attempted: &'static str,
    ) -> Result<&mut Contract> {
        let c = self
            .contracts
            .get_mut(&id)
            .ok_or(FaucetsError::UnknownContract(id))?;
        if c.state != from {
            return Err(FaucetsError::BadContractState {
                contract: id,
                attempted,
                actual: c.state.name(),
            });
        }
        c.state = to;
        Ok(c)
    }

    /// Phase 2: the cluster confirms the award.
    pub fn confirm(&mut self, id: ContractId) -> Result<()> {
        self.transition(
            id,
            ContractState::Awarded,
            ContractState::Confirmed,
            "confirm",
        )?;
        Ok(())
    }

    /// Phase 2 alternative: the cluster reneges (took better work).
    pub fn renege(&mut self, id: ContractId) -> Result<()> {
        self.transition(id, ContractState::Awarded, ContractState::Reneged, "renege")?;
        Ok(())
    }

    /// The client cancels an award before confirmation.
    pub fn cancel(&mut self, id: ContractId) -> Result<()> {
        self.transition(
            id,
            ContractState::Awarded,
            ContractState::Cancelled,
            "cancel",
        )?;
        Ok(())
    }

    /// Settle a confirmed contract after the job completes. The amount paid
    /// is the bid price (first-price market); deadline penalties are the
    /// payoff function's business, handled by billing.
    pub fn complete(&mut self, id: ContractId, completed_at: SimTime, paid: Money) -> Result<()> {
        let c = self.transition(
            id,
            ContractState::Confirmed,
            ContractState::Completed,
            "complete",
        )?;
        c.settled_amount = Some(paid);
        c.completed_at = Some(completed_at);
        Ok(())
    }

    /// Look up a contract.
    pub fn get(&self, id: ContractId) -> Option<&Contract> {
        self.contracts.get(&id)
    }

    /// The live (most recent) contract for a job.
    pub fn for_job(&self, job: JobId) -> Option<&Contract> {
        self.by_job.get(&job).and_then(|id| self.contracts.get(id))
    }

    /// All contracts in a given state.
    pub fn in_state(&self, state: ContractState) -> impl Iterator<Item = &Contract> {
        self.contracts.values().filter(move |c| c.state == state)
    }

    /// Total number of contracts ever created.
    pub fn len(&self) -> usize {
        self.contracts.len()
    }

    /// True when no contracts exist.
    pub fn is_empty(&self) -> bool {
        self.contracts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::BidId;

    fn bid(job: u64, cluster: u64) -> Bid {
        Bid {
            id: BidId(0),
            cluster: ClusterId(cluster),
            job: JobId(job),
            multiplier: 1.0,
            price: Money::from_units(10),
            promised_completion: SimTime::from_secs(100),
            planned_pes: 4,
        }
    }

    #[test]
    fn happy_path_award_confirm_complete() {
        let mut book = ContractBook::new();
        let id = book.award(bid(1, 2), SimTime::ZERO).unwrap();
        book.confirm(id).unwrap();
        book.complete(id, SimTime::from_secs(90), Money::from_units(10))
            .unwrap();
        let c = book.get(id).unwrap();
        assert_eq!(c.state, ContractState::Completed);
        assert_eq!(c.settled_amount, Some(Money::from_units(10)));
        assert_eq!(c.completed_at, Some(SimTime::from_secs(90)));
    }

    #[test]
    fn renege_allows_reaward_to_runner_up() {
        let mut book = ContractBook::new();
        let first = book.award(bid(1, 2), SimTime::ZERO).unwrap();
        // A second award while the first is live is an error.
        assert!(matches!(
            book.award(bid(1, 3), SimTime::ZERO),
            Err(FaucetsError::AlreadyExists(_))
        ));
        book.renege(first).unwrap();
        // Now the runner-up can be awarded.
        let second = book.award(bid(1, 3), SimTime::from_secs(1)).unwrap();
        book.confirm(second).unwrap();
        assert_eq!(book.for_job(JobId(1)).unwrap().cluster, ClusterId(3));
        assert_eq!(book.len(), 2);
    }

    #[test]
    fn cannot_complete_unconfirmed() {
        let mut book = ContractBook::new();
        let id = book.award(bid(1, 2), SimTime::ZERO).unwrap();
        let err = book.complete(id, SimTime::ZERO, Money::ZERO).unwrap_err();
        assert!(matches!(err, FaucetsError::BadContractState { .. }));
    }

    #[test]
    fn cannot_confirm_twice_or_renege_confirmed() {
        let mut book = ContractBook::new();
        let id = book.award(bid(1, 2), SimTime::ZERO).unwrap();
        book.confirm(id).unwrap();
        assert!(book.confirm(id).is_err());
        assert!(book.renege(id).is_err());
    }

    #[test]
    fn cancel_before_confirmation() {
        let mut book = ContractBook::new();
        let id = book.award(bid(1, 2), SimTime::ZERO).unwrap();
        book.cancel(id).unwrap();
        assert_eq!(book.get(id).unwrap().state, ContractState::Cancelled);
        // Job can be re-awarded after cancellation.
        assert!(book.award(bid(1, 4), SimTime::ZERO).is_ok());
    }

    #[test]
    fn unknown_contract_errors() {
        let mut book = ContractBook::new();
        assert!(matches!(
            book.confirm(ContractId(99)),
            Err(FaucetsError::UnknownContract(_))
        ));
    }

    #[test]
    fn in_state_filters() {
        let mut book = ContractBook::new();
        let a = book.award(bid(1, 2), SimTime::ZERO).unwrap();
        let _b = book.award(bid(2, 2), SimTime::ZERO).unwrap();
        book.confirm(a).unwrap();
        assert_eq!(book.in_state(ContractState::Awarded).count(), 1);
        assert_eq!(book.in_state(ContractState::Confirmed).count(), 1);
        assert!(!book.is_empty());
    }
}
