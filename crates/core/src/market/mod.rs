//! The market machinery of Faucets (§5): bid generation, bid evaluation,
//! the two-phase contract protocol, contract history / grid weather, and
//! auction-mechanism baselines.

pub mod agents;
pub mod auction;
pub mod contract;
pub mod history;
pub mod regulation;
pub mod selection;
pub mod strategy;

pub use agents::{DistributedEvaluation, EvalOutcome};
pub use auction::{equilibrium_ask, run_reverse_auction, AuctionResult, Mechanism};
pub use contract::{Contract, ContractBook, ContractState};
pub use history::{size_class, size_class_label, ContractHistory, ContractRecord};
pub use regulation::{BandAction, Regulator, ScreenStats};
pub use selection::SelectionPolicy;
pub use strategy::{
    Baseline, BidStrategy, ClusterView, DeadlineAware, Fixed, MarketInfo, UtilizationInterpolated,
    WeatherAware,
};
