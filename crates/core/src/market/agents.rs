//! Scalable bid evaluation through agent trees (§5.3, the paper's future
//! work).
//!
//! *"in a larger grid of the future, a scalable mechanism is needed …
//! Firstly, the large number of Compute Servers will make it impractical
//! for each client to deal with a flood of bids. Secondly, since many
//! bid-requests may be in progress at the same time, a two phase protocol
//! will be needed … We envisage a system in which each Compute Server as
//! well as client is represented by several agent processes running on the
//! distributed faucets framework. … The client agents simply specify
//! user-specific selection criteria to evaluation."*
//!
//! The realization: server bids flow to *leaf evaluation agents* (one per
//! `fanout` servers), each of which applies the client's selection
//! criterion locally and forwards only its best `top_k` bids upward; the
//! client-side root agent picks the winner from the forwarded union.
//! Because any global optimum is also its own leaf's optimum, the tree is
//! **exact** for every per-bid criterion — the client's inbox shrinks from
//! `N` to `⌈N/fanout⌉ × k` with zero selection-quality loss. The forwarded
//! runners-up double as the fallback slate for the two-phase protocol when
//! the winner reneges.

use crate::bid::Bid;
use crate::market::selection::SelectionPolicy;
use crate::qos::PayoffFn;

/// Configuration of the evaluation tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistributedEvaluation {
    /// Servers (bids) handled per leaf agent.
    pub fanout: usize,
    /// Bids each leaf forwards to the root.
    pub top_k: usize,
}

impl Default for DistributedEvaluation {
    fn default() -> Self {
        DistributedEvaluation {
            fanout: 32,
            top_k: 2,
        }
    }
}

/// What an evaluation run produced, with its message accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalOutcome {
    /// The selected bid (None on an empty slate).
    pub winner: Option<Bid>,
    /// The root slate, best-first — the two-phase fallback candidates.
    pub root_slate: Vec<Bid>,
    /// Bids that crossed the leaf→root links (the client-side inbox size).
    pub client_inbox: usize,
    /// Leaf agents used.
    pub leaves: usize,
    /// Total bid-carrying messages (server→leaf plus leaf→root).
    pub messages: u64,
}

impl DistributedEvaluation {
    /// Evaluate `bids` under `policy` through the agent tree.
    pub fn evaluate(
        &self,
        bids: &[Bid],
        policy: SelectionPolicy,
        payoff: &PayoffFn,
    ) -> EvalOutcome {
        let fanout = self.fanout.max(1);
        let k = self.top_k.max(1);
        let mut forwarded: Vec<Bid> = vec![];
        let mut leaves = 0;
        for chunk in bids.chunks(fanout) {
            leaves += 1;
            let ranked = policy.rank(chunk, payoff);
            forwarded.extend(ranked.into_iter().take(k).copied());
        }
        let root_slate: Vec<Bid> = policy
            .rank(&forwarded, payoff)
            .into_iter()
            .copied()
            .collect();
        let winner = policy.select(&forwarded, payoff).copied();
        EvalOutcome {
            winner,
            client_inbox: forwarded.len(),
            leaves,
            messages: bids.len() as u64 + forwarded.len() as u64,
            root_slate,
        }
    }

    /// The full two-phase flow: evaluate, then walk the root slate while
    /// `reneges(bid)` says the awarded server took better work in between.
    /// Returns the confirmed bid (if any) and how many award attempts it
    /// took. When the root slate is exhausted, a real system re-solicits —
    /// reported as `None`.
    pub fn evaluate_two_phase(
        &self,
        bids: &[Bid],
        policy: SelectionPolicy,
        payoff: &PayoffFn,
        mut reneges: impl FnMut(&Bid) -> bool,
    ) -> (Option<Bid>, u32, EvalOutcome) {
        let outcome = self.evaluate(bids, policy, payoff);
        let mut attempts = 0;
        for bid in &outcome.root_slate {
            attempts += 1;
            if !reneges(bid) {
                return (Some(*bid), attempts, outcome);
            }
        }
        (None, attempts, outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{BidId, ClusterId, JobId};
    use crate::money::Money;
    use faucets_sim::time::SimTime;

    fn bid(cluster: u64, price: f64, completion: u64) -> Bid {
        Bid {
            id: BidId(cluster),
            cluster: ClusterId(cluster),
            job: JobId(0),
            multiplier: 1.0,
            price: Money::from_units_f64(price),
            promised_completion: SimTime::from_secs(completion),
            planned_pes: 1,
        }
    }

    fn slate(n: u64) -> Vec<Bid> {
        // Deterministic scattered prices; minimum at cluster 37.
        (0..n)
            .map(|i| {
                let price = 100.0 + ((i * 7919 + 13) % 1000) as f64;
                bid(i, if i == 37 { 5.0 } else { price }, 1000 + i)
            })
            .collect()
    }

    #[test]
    fn tree_is_exact_for_least_cost() {
        let bids = slate(500);
        let flat = PayoffFn::flat(Money::from_units(10_000));
        let central = SelectionPolicy::LeastCost.select(&bids, &flat).unwrap();
        for (fanout, k) in [(8, 1), (32, 1), (32, 4), (100, 2)] {
            let tree = DistributedEvaluation { fanout, top_k: k };
            let out = tree.evaluate(&bids, SelectionPolicy::LeastCost, &flat);
            assert_eq!(
                out.winner.unwrap().cluster,
                central.cluster,
                "fanout={fanout},k={k}"
            );
        }
    }

    #[test]
    fn tree_is_exact_for_all_policies() {
        let bids = slate(300);
        let payoff = PayoffFn {
            soft_deadline: SimTime::from_secs(1100),
            hard_deadline: SimTime::from_secs(1400),
            payoff_soft: Money::from_units(5_000),
            payoff_hard: Money::from_units(1_000),
            penalty_late: Money::ZERO,
        };
        for policy in [
            SelectionPolicy::LeastCost,
            SelectionPolicy::EarliestCompletion,
            SelectionPolicy::Weighted {
                time_value_per_hour: Money::from_units(10),
            },
            SelectionPolicy::BestValue,
        ] {
            let central = policy.select(&bids, &payoff).map(|b| b.cluster);
            let tree = DistributedEvaluation::default();
            let dist = tree
                .evaluate(&bids, policy, &payoff)
                .winner
                .map(|b| b.cluster);
            assert_eq!(central, dist, "{policy:?}");
        }
    }

    #[test]
    fn inbox_shrinks_by_fanout_over_k() {
        let bids = slate(1000);
        let flat = PayoffFn::flat(Money::from_units(10_000));
        let tree = DistributedEvaluation {
            fanout: 50,
            top_k: 2,
        };
        let out = tree.evaluate(&bids, SelectionPolicy::LeastCost, &flat);
        assert_eq!(out.leaves, 20);
        assert_eq!(out.client_inbox, 40, "20 leaves × top-2");
        assert_eq!(out.messages, 1000 + 40);
    }

    #[test]
    fn two_phase_falls_back_to_runner_up() {
        let bids = slate(200);
        let flat = PayoffFn::flat(Money::from_units(10_000));
        let tree = DistributedEvaluation {
            fanout: 20,
            top_k: 2,
        };
        // The best bid (cluster 37) reneges; everything else confirms.
        let (confirmed, attempts, _) =
            tree.evaluate_two_phase(&bids, SelectionPolicy::LeastCost, &flat, |b| {
                b.cluster == ClusterId(37)
            });
        let c = confirmed.expect("runner-up confirms");
        assert_ne!(c.cluster, ClusterId(37));
        assert_eq!(attempts, 2);
        // The confirmed bid is the true global runner-up.
        let mut sorted = bids.clone();
        sorted.sort_by_key(|b| (b.price, b.cluster));
        assert_eq!(c.cluster, sorted[1].cluster);
    }

    #[test]
    fn two_phase_exhaustion_reports_none() {
        let bids = slate(10);
        let flat = PayoffFn::flat(Money::from_units(10_000));
        let tree = DistributedEvaluation {
            fanout: 5,
            top_k: 1,
        };
        let (confirmed, attempts, out) =
            tree.evaluate_two_phase(&bids, SelectionPolicy::LeastCost, &flat, |_| true);
        assert!(confirmed.is_none());
        assert_eq!(attempts as usize, out.root_slate.len());
    }

    #[test]
    fn empty_slate() {
        let tree = DistributedEvaluation::default();
        let flat = PayoffFn::flat(Money::ZERO);
        let out = tree.evaluate(&[], SelectionPolicy::LeastCost, &flat);
        assert!(out.winner.is_none());
        assert_eq!(out.client_inbox, 0);
        assert_eq!(out.leaves, 0);
    }
}
