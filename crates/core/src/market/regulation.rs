//! Market regulation (§5.5.1).
//!
//! *"It may be necessary to have regulatory mechanisms in place to avoid
//! misuse of markets: limits on how far the bids can be from some notion of
//! 'normal' price can be one such mechanism. It may also be necessary to
//! have additional priority to jobs of national importance to prevent
//! denial-of-service attacks on such systems."*
//!
//! The [`Regulator`] screens bid slates before client-side evaluation: bids
//! whose multiplier strays more than a band factor from the grid's price
//! index (the "normal price", from [`crate::market::history`]) are either
//! rejected or clamped to the band edge. National-importance jobs bypass
//! price screening entirely and are flagged for head-of-queue treatment.

use crate::bid::Bid;
use serde::{Deserialize, Serialize};

/// What to do with a bid that violates the price band.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BandAction {
    /// Drop the bid from the slate.
    Reject,
    /// Pull the bid's multiplier (and price, proportionally) to the nearest
    /// band edge.
    Clamp,
}

/// The §5.5.1 price-band regulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Regulator {
    /// Allowed multiplier range is `normal / band_factor ..= normal ×
    /// band_factor`; must be ≥ 1.
    pub band_factor: f64,
    /// Policy for violators.
    pub action: BandAction,
}

impl Default for Regulator {
    fn default() -> Self {
        Regulator {
            band_factor: 3.0,
            action: BandAction::Reject,
        }
    }
}

/// Outcome counters for one screening pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScreenStats {
    /// Bids that passed unmodified.
    pub passed: usize,
    /// Bids rejected for leaving the band.
    pub rejected: usize,
    /// Bids clamped to the band edge.
    pub clamped: usize,
}

impl Regulator {
    /// Screen a bid slate against the normal price. With no price history
    /// yet (`normal_price` None) the market is too young to regulate and
    /// everything passes.
    pub fn screen(&self, bids: &[Bid], normal_price: Option<f64>) -> (Vec<Bid>, ScreenStats) {
        let mut stats = ScreenStats::default();
        let Some(normal) = normal_price.filter(|n| *n > 0.0) else {
            stats.passed = bids.len();
            return (bids.to_vec(), stats);
        };
        let factor = self.band_factor.max(1.0);
        let (lo, hi) = (normal / factor, normal * factor);
        let mut out = vec![];
        for b in bids {
            if b.multiplier >= lo && b.multiplier <= hi {
                stats.passed += 1;
                out.push(*b);
                continue;
            }
            match self.action {
                BandAction::Reject => stats.rejected += 1,
                BandAction::Clamp => {
                    stats.clamped += 1;
                    let clamped_mult = b.multiplier.clamp(lo, hi);
                    let mut nb = *b;
                    // Price scales with the multiplier (the §5.2 conversion
                    // is linear in it).
                    if b.multiplier > 0.0 {
                        nb.price = b.price.mul_f64(clamped_mult / b.multiplier);
                    }
                    nb.multiplier = clamped_mult;
                    out.push(nb);
                }
            }
        }
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{BidId, ClusterId, JobId};
    use crate::money::Money;
    use faucets_sim::time::SimTime;

    fn bid(cluster: u64, multiplier: f64) -> Bid {
        Bid {
            id: BidId(cluster),
            cluster: ClusterId(cluster),
            job: JobId(0),
            multiplier,
            price: Money::from_units_f64(100.0 * multiplier),
            promised_completion: SimTime::ZERO,
            planned_pes: 1,
        }
    }

    #[test]
    fn gouging_rejected_lowballing_rejected() {
        let r = Regulator {
            band_factor: 2.0,
            action: BandAction::Reject,
        };
        let bids = [bid(1, 1.0), bid(2, 5.0), bid(3, 0.2), bid(4, 1.9)];
        let (kept, stats) = r.screen(&bids, Some(1.0));
        let clusters: Vec<u64> = kept.iter().map(|b| b.cluster.raw()).collect();
        assert_eq!(clusters, vec![1, 4]);
        assert_eq!(
            stats,
            ScreenStats {
                passed: 2,
                rejected: 2,
                clamped: 0
            }
        );
    }

    #[test]
    fn clamping_pulls_to_band_edge_and_reprices() {
        let r = Regulator {
            band_factor: 2.0,
            action: BandAction::Clamp,
        };
        let bids = [bid(1, 5.0), bid(2, 0.2)];
        let (kept, stats) = r.screen(&bids, Some(1.0));
        assert_eq!(stats.clamped, 2);
        assert!((kept[0].multiplier - 2.0).abs() < 1e-12);
        assert_eq!(kept[0].price, Money::from_units(200));
        assert!((kept[1].multiplier - 0.5).abs() < 1e-12);
        assert_eq!(kept[1].price, Money::from_units(50));
    }

    #[test]
    fn young_market_passes_everything() {
        let r = Regulator::default();
        let bids = [bid(1, 100.0)];
        let (kept, stats) = r.screen(&bids, None);
        assert_eq!(kept.len(), 1);
        assert_eq!(stats.passed, 1);
    }

    #[test]
    fn band_edges_are_inclusive() {
        let r = Regulator {
            band_factor: 2.0,
            action: BandAction::Reject,
        };
        let bids = [bid(1, 2.0), bid(2, 0.5)];
        let (kept, _) = r.screen(&bids, Some(1.0));
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn band_factor_below_one_is_sanitized() {
        let r = Regulator {
            band_factor: 0.1,
            action: BandAction::Reject,
        };
        let (kept, _) = r.screen(&[bid(1, 1.0)], Some(1.0));
        assert_eq!(
            kept.len(),
            1,
            "factor clamps to 1: only exactly-normal passes"
        );
    }
}
